//! Reproduction of Figure 1 of the paper: a single improvement round — the
//! maximum-degree node `p` cuts its subtrees into fragments, the BFS wave
//! finds an outgoing edge between two fragments, and the exchange ("Delete"
//! the tree edge at `p`, "Add" the outgoing edge) lowers the maximum degree.
//!
//! ```text
//! cargo run --example figure1_exchange
//! ```

use mdst::prelude::*;

fn main() {
    // A small network in the spirit of the figure: p is a hub of degree 4; two
    // of its fragments are joined by a spare edge between two low-degree
    // nodes. Nodes: p = 0; fragment roots x = 1, C = 3, D = 4; E = 5 hangs
    // below x; the outgoing edge is (C, E) = (3, 5).
    let mut builder = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (3, 5)] {
        builder.add_edge(NodeId(u), NodeId(v)).unwrap();
    }
    let graph = Arc::new(builder.build());

    // Initial spanning tree: the star around p plus node 5 under node 1.
    let parents = vec![
        None,            // p
        Some(NodeId(0)), // x
        Some(NodeId(0)), // x'
        Some(NodeId(0)), // C
        Some(NodeId(0)), // D
        Some(NodeId(1)), // E, below x
    ];
    let initial = RootedTree::from_parents(NodeId(0), parents).unwrap();
    println!("initial tree (degree {}):", initial.max_degree());
    println!("{}", dot::overlay_to_dot(&graph, &initial, &[]));

    // Stream the improvement through an observer: every round and every
    // Delete/Add exchange of the figure arrives as a typed event.
    struct Narrator;
    impl Observer for Narrator {
        fn on_round(&mut self, event: &RoundEvent) {
            println!(
                "round {}: {}",
                event.round,
                if event.improved == Some(true) {
                    "found an outgoing edge, exchanging"
                } else {
                    "locally optimal, stopping"
                }
            );
        }
        fn on_exchange(&mut self, event: &ExchangeEvent) {
            println!(
                "exchange #{}: Delete at p, Add the cousin edge",
                event.index
            );
        }
    }
    let mut narrator = Narrator;
    let report = Pipeline::on(&graph)
        .initial_tree(initial.clone())
        .observer(&mut narrator)
        .run()
        .unwrap();
    assert_eq!(report.outcome, Outcome::Optimal);
    let final_tree = report.tree();
    println!("final tree (degree {}):", final_tree.max_degree());
    println!(
        "{}",
        dot::overlay_to_dot(&graph, final_tree, &[(NodeId(3), NodeId(5))])
    );

    println!(
        "rounds: {}, exchanges: {}",
        report.rounds, report.improvements
    );
    println!("messages by kind:");
    for (kind, count) in &report.improvement_metrics.messages_by_kind {
        println!("  {kind:<14} {count}");
    }

    // The figure's claim: the maximum degree drops through delete/add pairs,
    // and the spare leaf-to-leaf edge enters the tree.
    assert_eq!(initial.max_degree(), 4);
    assert!(final_tree.max_degree() < initial.max_degree());
    assert!(
        final_tree.has_edge(NodeId(3), NodeId(5)),
        "the Add edge of the figure enters the tree"
    );
    println!(
        "\nFigure 1 reproduced: degree {} -> {}",
        initial.max_degree(),
        final_tree.max_degree()
    );
}
