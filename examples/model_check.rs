//! Model-checks the MDegST protocol on a 4-node cycle with a chord —
//! exhaustively, over *every* message interleaving — first fault-free, then
//! with an adversary allowed one crash-stop and one message loss, printing
//! the explored/pruned state counts each run.
//!
//! ```text
//! cargo run --example model_check
//! ```
//!
//! Where a simulator seed samples one schedule, the checker proves a
//! property over all of them: the fault-free run reaching exactly one
//! quiescent outcome *is* the schedule-independence claim for this
//! topology, and the faulty runs show safety holding while outcomes fan
//! out with the adversary's choices.

use mdst::prelude::*;

fn report_line(label: &str, report: &CheckReport) {
    println!(
        "{label:<24} states={:<6} pruned={:<7} quiescent-outcomes={:<3} depth={:<3} {}",
        report.stats.states_explored,
        report.stats.revisits_pruned,
        report.outcomes.len(),
        report.stats.max_depth_seen,
        if report.passed() { "ok" } else { "VIOLATION" },
    );
}

fn main() {
    // The 4-cycle 0-1-2-3 plus the chord 0-2: the smallest topology where
    // the improvement protocol has a real choice of tree shape.
    let graph = Arc::new(
        mdst::graph::graph::graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap(),
    );
    // Seed with the degree-concentrating greedy tree so the protocol has
    // actual improvements to make.
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    println!(
        "cycle C4 + chord (0,2), initial tree degree {}, paper bound {}",
        initial.max_degree(),
        paper_degree_upper_bound(&graph)
    );

    // Fault-free: every delivery interleaving.
    let fault_free = model_check(&graph, &initial, &CheckConfig::default());
    report_line("fault-free", &fault_free);
    assert!(fault_free.passed() && fault_free.complete);
    assert_eq!(
        fault_free.outcomes.len(),
        1,
        "one outcome across all schedules = schedule independence"
    );
    let outcome = &fault_free.outcomes[0];
    println!(
        "  sole outcome: parents {:?}, max degree {}",
        outcome.parents, outcome.max_degree
    );

    // Adversarial branching: one crash-stop anywhere in any schedule.
    let one_crash = model_check(
        &graph,
        &initial,
        &CheckConfig {
            max_crashes: 1,
            ..CheckConfig::default()
        },
    );
    report_line("one crash", &one_crash);
    assert!(one_crash.passed() && one_crash.complete);

    // One message loss anywhere in any schedule.
    let one_loss = model_check(
        &graph,
        &initial,
        &CheckConfig {
            max_losses: 1,
            ..CheckConfig::default()
        },
    );
    report_line("one loss", &one_loss);
    assert!(one_loss.passed() && one_loss.complete);

    // Both budgets at once: the full fault tree.
    let both = model_check(
        &graph,
        &initial,
        &CheckConfig {
            max_crashes: 1,
            max_losses: 1,
            ..CheckConfig::default()
        },
    );
    report_line("crash + loss", &both);
    assert!(both.passed() && both.complete);
    println!(
        "safety invariants hold on every schedule; outcomes fan out from {} to {} under faults",
        fault_free.outcomes.len(),
        both.outcomes.len()
    );
}
