//! Runs the full pipeline across topology families and prints a comparison
//! table: initial degree, final degree, optimum lower bound, rounds, messages
//! and the paper's message budget.
//!
//! ```text
//! cargo run --example topology_sweep
//! ```

use mdst::prelude::*;
use std::sync::Arc;

fn main() {
    let workloads: Vec<(&str, Arc<Graph>)> = vec![
        ("complete K16", Arc::new(generators::complete(16).unwrap())),
        (
            "star+path 16",
            Arc::new(generators::star_with_leaf_edges(16).unwrap()),
        ),
        ("wheel 16", Arc::new(generators::wheel(16).unwrap())),
        ("grid 4x4", Arc::new(generators::grid(4, 4).unwrap())),
        ("hypercube Q4", Arc::new(generators::hypercube(4).unwrap())),
        ("petersen", Arc::new(generators::petersen().unwrap())),
        (
            "K(4,12)",
            Arc::new(generators::complete_bipartite(4, 12).unwrap()),
        ),
        (
            "lollipop 8+8",
            Arc::new(generators::lollipop(8, 8).unwrap()),
        ),
        (
            "barbell 6|4|6",
            Arc::new(generators::barbell(6, 4).unwrap()),
        ),
        (
            "gnp(32,0.15)",
            Arc::new(generators::gnp_connected(32, 0.15, 11).unwrap()),
        ),
        (
            "geometric 32",
            Arc::new(generators::random_geometric_connected(32, 0.25, 3).unwrap()),
        ),
        (
            "broom 5x3",
            Arc::new(generators::high_optimum(5, 3).unwrap()),
        ),
    ];

    println!(
        "{:<14} {:>4} {:>5} {:>5} {:>6} {:>4} {:>7} {:>9} {:>9}",
        "topology", "n", "m", "k", "final", "LB", "rounds", "messages", "budget"
    );
    for (name, graph) in workloads {
        let report = Pipeline::on(&graph)
            .initial(InitialTreeKind::GreedyHub)
            .root(NodeId(0))
            .run()
            .expect("pipeline runs");
        let lb = degree_lower_bound(&graph);
        println!(
            "{:<14} {:>4} {:>5} {:>5} {:>6} {:>4} {:>7} {:>9} {:>9}",
            name,
            report.n,
            report.m,
            report.initial_degree,
            report.final_degree,
            lb,
            report.rounds,
            report.improvement_metrics.messages_total,
            report.paper_message_budget()
        );
        assert!(report.final_degree >= lb);
        assert!(verify_termination_certificate(&graph, report.tree()));
    }
}
