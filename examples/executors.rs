//! Runs the same MDegST improvement on all three executor backends through
//! the uniform `Executor` surface and compares their verdicts and wall
//! times: the discrete-event simulator, the thread-per-node runtime, and the
//! work-stealing pool that scales past one OS thread per node.
//!
//! ```text
//! cargo run --release --example executors
//! ```

use mdst::prelude::*;

fn main() {
    let graph = Arc::new(generators::star_with_leaf_edges(200).expect("valid parameters"));
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("connected");
    println!(
        "n = {}, m = {}, initial tree degree = {}",
        graph.node_count(),
        graph.edge_count(),
        initial.max_degree()
    );
    println!(
        "{:<9} {:>7} {:>9} {:>7} {:>8} {:>11}",
        "executor", "degree", "messages", "rounds", "workers", "wall"
    );

    let mut degrees = Vec::new();
    for kind in ExecutorKind::all() {
        let config = ExecConfig {
            workers: 8, // pool only; the other backends ignore it
            ..Default::default()
        };
        let run = run_distributed_mdst_on(kind, &graph, &initial, &config).unwrap();
        let workers = match kind {
            ExecutorKind::Sim => 1,
            ExecutorKind::Threaded => graph.node_count(),
            ExecutorKind::Pool => {
                PoolRuntime::effective_workers(config.workers, graph.node_count())
            }
        };
        println!(
            "{:<9} {:>7} {:>9} {:>7} {:>8} {:>9.2}ms",
            kind.label(),
            run.final_tree.max_degree(),
            run.metrics.messages_total,
            run.rounds,
            workers,
            run.wall_ms
        );
        assert!(run.final_tree.is_spanning_tree_of(&graph));
        assert!(verify_termination_certificate(&graph, &run.final_tree));
        degrees.push(run.final_tree.max_degree());
    }

    assert!(
        degrees.windows(2).all(|w| w[0] == w[1]),
        "the protocol's decisions are schedule independent"
    );
    println!("all three executors agree on the locally optimal tree");
}
