//! Runs the same MDegST improvement on all three executor backends through
//! the uniform `Executor` surface and compares their verdicts and wall
//! times: the discrete-event simulator, the thread-per-node runtime, and the
//! work-stealing pool that scales past one OS thread per node.
//!
//! ```text
//! cargo run --release --example executors
//! ```

use mdst::prelude::*;

fn main() {
    let graph = Arc::new(generators::star_with_leaf_edges(200).expect("valid parameters"));
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("connected");
    println!(
        "n = {}, m = {}, initial tree degree = {}",
        graph.node_count(),
        graph.edge_count(),
        initial.max_degree()
    );
    println!(
        "{:<9} {:>7} {:>9} {:>7} {:>8} {:>11}",
        "executor", "degree", "messages", "rounds", "workers", "wall"
    );

    let mut degrees = Vec::new();
    for kind in ExecutorKind::all() {
        let report = Pipeline::on(&graph)
            .initial_tree(initial.clone())
            .executor(kind)
            .workers(8) // pool only; the other backends ignore it
            .run()
            .unwrap();
        assert_eq!(report.outcome, Outcome::Optimal);
        println!(
            "{:<9} {:>7} {:>9} {:>7} {:>8} {:>9.2}ms",
            kind.label(),
            report.final_degree,
            report.improvement_metrics.messages_total,
            report.rounds,
            report.workers,
            report.wall_ms
        );
        assert!(report.tree().is_spanning_tree_of(&graph));
        assert!(verify_termination_certificate(&graph, report.tree()));
        degrees.push(report.final_degree);
    }

    assert!(
        degrees.windows(2).all(|w| w[0] == w[1]),
        "the protocol's decisions are schedule independent"
    );
    println!("all three executors agree on the locally optimal tree");
}
