//! Reproduction of Figure 2 of the paper: the BFS wave. After the Cut, each
//! fragment floods a wave; when two waves meet across a non-tree edge the
//! "cousin" message reveals an outgoing edge. This example records the full
//! message trace of one round and prints the wave front and the discovered
//! cousin edges.
//!
//! ```text
//! cargo run --example figure2_bfs_wave
//! ```

use mdst::prelude::*;

fn main() {
    // Hub of degree 3 whose three branches are paths, with two spare edges
    // joining different branches deep down — the situation Figure 2 sketches.
    let mut builder = GraphBuilder::new(10);
    let tree_edges = [
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 4),
        (4, 7),
        (2, 5),
        (5, 8),
        (3, 6),
        (6, 9),
    ];
    for (u, v) in tree_edges {
        builder.add_edge(NodeId(u), NodeId(v)).unwrap();
    }
    // Outgoing (cousin) edges between branches.
    builder.add_edge(NodeId(7), NodeId(8)).unwrap();
    builder.add_edge(NodeId(8), NodeId(9)).unwrap();
    let graph = Arc::new(builder.build());

    let initial = RootedTree::from_edges(
        10,
        NodeId(0),
        &tree_edges.map(|(u, v)| (NodeId(u), NodeId(v))),
    )
    .unwrap();
    println!("initial tree (degree {}):", initial.max_degree());
    println!("{}", dot::overlay_to_dot(&graph, &initial, &[]));

    // One full pipeline session with tracing enabled: the recorded trace
    // comes back on the unified report.
    let report = Pipeline::on(&graph)
        .initial_tree(initial.clone())
        .sim(SimConfig {
            record_trace: true,
            ..Default::default()
        })
        .run()
        .expect("protocol quiesces");
    assert_eq!(report.outcome, Outcome::Optimal);

    println!("BFS wave (sends), in causal order:");
    for event in report.trace.events_of_kind("BFS") {
        if matches!(event.kind, mdst::netsim::TraceEventKind::Send) {
            println!("  t={:<3} {} -> {}", event.time, event.from, event.to);
        }
    }
    println!("\ncousin replies (outgoing-edge discoveries):");
    for event in report.trace.events_of_kind("BFSReply") {
        if matches!(event.kind, mdst::netsim::TraceEventKind::Send) {
            println!(
                "  t={:<3} {} -> {}  (edge {} -- {})",
                event.time, event.from, event.to, event.to, event.from
            );
        }
    }

    let final_tree = report.tree();
    println!("\nfinal tree (degree {}):", final_tree.max_degree());
    println!("{}", dot::overlay_to_dot(&graph, final_tree, &[]));

    assert!(final_tree.is_spanning_tree_of(&graph));
    assert!(final_tree.max_degree() <= initial.max_degree());
    assert!(
        report.trace.events_of_kind("BFSReply").count() > 0,
        "the wave must discover at least one cousin edge"
    );
}
