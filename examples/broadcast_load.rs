//! The motivation from the paper's introduction: broadcasting over a spanning
//! tree loads each node proportionally to its tree degree, so a minimum-degree
//! spanning tree spreads the forwarding work. This example broadcasts one
//! token over (a) the initial high-degree tree and (b) the improved tree, and
//! compares the per-node forwarding load.
//!
//! ```text
//! cargo run --example broadcast_load
//! ```

use mdst::prelude::*;
use std::collections::BTreeSet;

/// A minimal broadcast protocol over a fixed tree: the root sends a token to
/// its children, every node forwards it to its own children.
#[derive(Debug, Clone)]
struct Token {
    n: usize,
}

impl NetMessage for Token {
    fn kind(&self) -> &'static str {
        "Broadcast"
    }
    fn encoded_bits(&self) -> usize {
        mdst::netsim::message::bits::message_bits(self.n, 1)
    }
}

struct TreeBroadcast {
    children: BTreeSet<NodeId>,
    is_root: bool,
    received: bool,
}

impl Protocol for TreeBroadcast {
    type Message = Token;
    fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
        if self.is_root {
            self.received = true;
            let n = ctx.network_size();
            for &c in self.children.clone().iter() {
                ctx.send(c, Token { n });
            }
        }
    }
    fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
        if !self.received {
            self.received = true;
            for &c in self.children.clone().iter() {
                ctx.send(c, msg.clone());
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.received
    }
}

fn broadcast_load(graph: &Arc<Graph>, tree: &RootedTree) -> (u64, u64) {
    let mut sim = Simulator::new(graph, SimConfig::default(), |id, _| TreeBroadcast {
        children: tree.children(id).iter().copied().collect(),
        is_root: tree.root() == id,
        received: false,
    })
    .expect("valid config");
    sim.run().expect("broadcast quiesces");
    let metrics = sim.metrics();
    let max_sent = *metrics.sent_per_node.iter().max().unwrap_or(&0);
    (metrics.messages_total, max_sent)
}

fn main() {
    let graph = Arc::new(generators::gnp_connected(80, 0.06, 7).expect("valid parameters"));
    let report = Pipeline::on(&graph)
        .initial(InitialTreeKind::GreedyHub)
        .root(NodeId(0))
        .run()
        .expect("pipeline runs");

    let (total_before, max_before) = broadcast_load(&graph, &report.initial_tree);
    let (total_after, max_after) = broadcast_load(&graph, report.tree());

    println!(
        "broadcast over the initial tree (degree {}):",
        report.initial_degree
    );
    println!("  total messages      = {total_before}");
    println!("  busiest node sends  = {max_before}");
    println!(
        "broadcast over the MDegST (degree {}):",
        report.final_degree
    );
    println!("  total messages      = {total_after}");
    println!("  busiest node sends  = {max_after}");
    println!(
        "\nthe busiest node forwards {:.1}x less traffic on the improved tree",
        max_before as f64 / max_after.max(1) as f64
    );

    assert_eq!(
        total_before, total_after,
        "both trees span the same n nodes"
    );
    assert!(max_after <= max_before);
}
