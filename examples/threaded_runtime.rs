//! Runs the same MDegST protocol on real OS threads (crossbeam channels)
//! instead of the discrete-event simulator, and checks that the outcome —
//! which depends only on the tree structure, not on timing — is identical.
//!
//! ```text
//! cargo run --example threaded_runtime
//! ```

use mdst::core::distributed::MdstNode;
use mdst::prelude::*;

fn main() {
    let graph = Arc::new(generators::gnp_connected(48, 0.1, 21).expect("valid parameters"));
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("connected");
    println!(
        "n = {}, m = {}, initial tree degree = {}",
        graph.node_count(),
        graph.edge_count(),
        initial.max_degree()
    );

    // Simulator run (the complexity-measurement reference).
    let sim_run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
    println!(
        "simulator : degree {} in {} rounds, {} messages, causal time {}",
        sim_run.final_tree.max_degree(),
        sim_run.rounds,
        sim_run.metrics.messages_total,
        sim_run.metrics.causal_time
    );

    // Threaded run: one OS thread per node, crossbeam channels as links.
    let nodes = MdstNode::from_tree(&initial);
    let threaded = ThreadedRuntime::run(&graph, |id, _| nodes[id.index()].clone());
    let threaded_tree = collect_tree(&threaded.nodes).expect("consistent final tree");
    println!(
        "threads   : degree {} , {} messages, wall time {:?}",
        threaded_tree.max_degree(),
        threaded.metrics.messages_total,
        threaded.wall_time
    );

    assert_eq!(
        threaded_tree.max_degree(),
        sim_run.final_tree.max_degree(),
        "the protocol's decisions are schedule independent"
    );
    assert!(threaded_tree.is_spanning_tree_of(&graph));
    assert!(verify_termination_certificate(&graph, &threaded_tree));
    println!("threaded and simulated runs agree");
}
