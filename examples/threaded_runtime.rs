//! Runs the same MDegST protocol on real OS threads (crossbeam channels)
//! instead of the discrete-event simulator, and checks that the outcome —
//! which depends only on the tree structure, not on timing — is identical.
//!
//! ```text
//! cargo run --example threaded_runtime
//! ```

use mdst::prelude::*;

fn main() {
    let graph = Arc::new(generators::gnp_connected(48, 0.1, 21).expect("valid parameters"));
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("connected");
    println!(
        "n = {}, m = {}, initial tree degree = {}",
        graph.node_count(),
        graph.edge_count(),
        initial.max_degree()
    );

    // Simulator run (the complexity-measurement reference).
    let sim_run = Pipeline::on(&graph)
        .initial_tree(initial.clone())
        .executor(ExecutorKind::Sim)
        .run()
        .unwrap();
    println!(
        "simulator : degree {} in {} rounds, {} messages, causal time {}",
        sim_run.final_degree,
        sim_run.rounds,
        sim_run.improvement_metrics.messages_total,
        sim_run.improvement_metrics.causal_time
    );

    // Threaded run: one OS thread per node, crossbeam channels as links —
    // the same session chain, one builder call apart.
    let threaded = Pipeline::on(&graph)
        .initial_tree(initial)
        .executor(ExecutorKind::Threaded)
        .run()
        .unwrap();
    println!(
        "threads   : degree {} , {} messages, wall time {:.2}ms on {} threads",
        threaded.final_degree,
        threaded.improvement_metrics.messages_total,
        threaded.wall_ms,
        threaded.workers
    );

    assert_eq!(threaded.outcome, Outcome::Optimal);
    assert_eq!(
        threaded.final_degree, sim_run.final_degree,
        "the protocol's decisions are schedule independent"
    );
    assert!(threaded.tree().is_spanning_tree_of(&graph));
    assert!(verify_termination_certificate(&graph, threaded.tree()));
    println!("threaded and simulated runs agree");
}
