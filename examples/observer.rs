//! Streaming observers: watch a pipeline session progress — construction
//! boundary, every improvement round, every edge exchange, every injected
//! fault — without parsing a message trace after the fact. The same
//! `Observer` works unchanged on every executor backend.
//!
//! ```text
//! cargo run --release --example observer
//! ```

use mdst::prelude::*;

/// A narrating observer: prints each event as it arrives and keeps the
/// counts for the closing summary.
#[derive(Default)]
struct Narrator {
    rounds: u32,
    exchanges: u32,
    faults: u32,
}

impl Observer for Narrator {
    fn on_construction_done(&mut self, event: &ConstructionEvent) {
        println!(
            "construction done: n = {}, m = {}, initial degree k = {} ({} messages)",
            event.n, event.m, event.initial_degree, event.construction_messages
        );
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.rounds += 1;
        match event.improved {
            Some(false) => println!("round {:>3}: locally optimal — stopping", event.round),
            // Degraded runs cannot attribute exchanges to rounds.
            None => println!("round {:>3}: ran (attribution unknown)", event.round),
            Some(true) => {}
        }
    }

    fn on_exchange(&mut self, event: &ExchangeEvent) {
        self.exchanges += 1;
        // `index` equals the performing round only on optimal runs; on
        // degraded runs it is just the ordinal, so label it as such.
        println!("exchange #{}", event.index);
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        self.faults += 1;
        match event {
            FaultEvent::NodeCrashed { node, time } => match time {
                Some(t) => println!("fault: node {node} crashed at t={t}"),
                None => println!("fault: node {node} crashed"),
            },
            FaultEvent::MessageDropped {
                from,
                to,
                time,
                message_kind,
            } => println!("fault: {message_kind} {from} -> {to} lost at t={time}"),
            FaultEvent::MessagesDropped { count } => {
                println!("fault: {count} messages lost in total")
            }
        }
    }

    fn on_finish(&mut self, report: &RunReport) {
        println!(
            "finished: {} — degree {} -> {} in {} rounds / {} exchanges / {} messages",
            report.outcome,
            report.initial_degree,
            report.final_degree,
            report.rounds,
            report.improvements,
            report.improvement_metrics.messages_total
        );
    }
}

fn main() {
    let graph = Arc::new(generators::star_with_leaf_edges(24).expect("valid parameters"));

    // The same observer streams from every backend.
    for kind in ExecutorKind::all() {
        println!("== executor: {kind} ==");
        let mut narrator = Narrator::default();
        let report = Pipeline::on(&graph)
            .executor(kind)
            .observer(&mut narrator)
            .run()
            .expect("fault-free runs complete");
        assert_eq!(report.outcome, Outcome::Optimal);
        assert_eq!(narrator.rounds, report.rounds);
        assert_eq!(narrator.exchanges, report.improvements);
        assert_eq!(narrator.faults, 0);
        println!();
    }

    // Under fault injection the observer sees the wreckage as it is graded.
    println!("== executor: sim, 30% message loss, one crash ==");
    let mut narrator = Narrator::default();
    let report = Pipeline::on(&graph)
        .faults(FaultPlan {
            loss: 0.3,
            seed: 11,
            crashes: vec![CrashAt {
                node: NodeId(5),
                at: 8,
            }],
            ..Default::default()
        })
        .observer(&mut narrator)
        .run()
        .expect("faulty runs are outcomes, not errors");
    assert!(narrator.faults > 0, "injected faults must be observed");
    println!(
        "survivor component: {} of {} nodes, spans = {}",
        report.survivor.component_size(),
        report.n,
        report.survivor.spans_component
    );
}
