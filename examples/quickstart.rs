//! Quickstart: build a network, run the full pipeline, print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mdst::prelude::*;

fn main() {
    // A random connected network of 64 processors.
    let graph = Arc::new(generators::gnp_connected(64, 0.08, 42).expect("valid parameters"));
    println!(
        "network: n = {}, m = {}, max graph degree = {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // The paper assumes some distributed spanning-tree construction ran first;
    // here we use the flooding (PIF) construction and then improve its tree.
    let report = Pipeline::on(&graph)
        .initial(InitialTreeKind::DistributedFlooding)
        .root(NodeId(0))
        .run()
        .expect("pipeline runs to completion");
    assert_eq!(report.outcome, Outcome::Optimal);

    println!(
        "initial spanning tree degree k  = {}",
        report.initial_degree
    );
    println!("improved spanning tree degree   = {}", report.final_degree);
    println!(
        "lower bound on the optimum      = {}",
        degree_lower_bound(&graph)
    );
    println!("rounds (k - k* + 1 in the paper) = {}", report.rounds);
    println!("edge exchanges                   = {}", report.improvements);

    if let Some(construction) = &report.construction_metrics {
        println!(
            "construction messages            = {}",
            construction.messages_total
        );
    }
    let metrics = &report.improvement_metrics;
    println!(
        "improvement messages             = {}",
        metrics.messages_total
    );
    println!(
        "paper budget (k-k*+1)*m          = {}",
        report.paper_message_budget()
    );
    println!("causal time (unit delays)        = {}", metrics.causal_time);
    println!(
        "paper budget (k-k*+1)*n          = {}",
        report.paper_time_budget()
    );
    println!("max message size (bits)          = {}", metrics.bits_max);

    println!("\nmessages by kind:");
    for (kind, count) in &metrics.messages_by_kind {
        println!("  {kind:<14} {count}");
    }

    // The result is a certified Locally Optimal Tree.
    assert!(verify_spanning_tree(&graph, report.tree()).is_ok());
    assert!(verify_termination_certificate(&graph, report.tree()));
    println!("\nfinal tree verified: spanning + locally optimal");
}
