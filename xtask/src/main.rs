//! Workspace automation tasks.
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! `lint` is a token-level source gate (no rustc, no new dependencies) that
//! enforces three workspace rules:
//!
//! 1. **No `unwrap()` / `expect()` / `panic!` in non-test library code.**
//!    Test modules (`#[cfg(test)]`) are exempt; deliberate uses in library
//!    code (mutex-poisoning propagation, proven-unreachable states) must be
//!    listed in `xtask/lint-allow.txt` — the allowlist is the audit trail.
//! 2. **No `allow(deprecated)` outside `tests/api_equivalence.rs`.** The
//!    deprecated pre-pipeline entry points survive only for the equivalence
//!    suite; new call sites must use the unified `Pipeline` API. The
//!    defining module and its re-export shims are allowlisted.
//! 3. **No imports of non-vendored crates.** Every `Cargo.toml` dependency
//!    must be a workspace crate or one of the offline stand-ins under
//!    `vendor/`; anything else would need registry access the build
//!    environment does not have.
//!
//! Stale allowlist entries are themselves lint errors, so the file can only
//! shrink as violations are fixed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The offline stand-in crates under `vendor/`.
const VENDORED: &[&str] = &[
    "serde",
    "serde_derive",
    "rand",
    "crossbeam-channel",
    "proptest",
    "criterion",
    "flate2",
];

/// Tokens rule 1 forbids in non-test library code.
const FORBIDDEN: &[&str] = &["unwrap", "expect", "panic"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// One `path token` allowlist entry from `xtask/lint-allow.txt`.
struct Allow {
    path: String,
    token: String,
    used: bool,
}

fn load_allowlist(root: &Path, problems: &mut Vec<String>) -> Vec<Allow> {
    let path = root.join("xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(t), None) if FORBIDDEN.contains(&t) || t == "allow-deprecated" => {
                entries.push(Allow {
                    path: p.to_string(),
                    token: t.to_string(),
                    used: false,
                })
            }
            _ => problems.push(format!(
                "xtask/lint-allow.txt:{}: malformed entry `{line}` \
                 (want `<path> <unwrap|expect|panic|allow-deprecated>`)",
                lineno + 1
            )),
        }
    }
    entries
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut problems = Vec::new();
    let mut allows = load_allowlist(&root, &mut problems);

    let mut library_files = Vec::new();
    for krate in list_dir(&root.join("crates")) {
        collect_rs(&krate.join("src"), &mut library_files);
    }
    let mut test_files = Vec::new();
    collect_rs(&root.join("tests"), &mut test_files);
    collect_rs(&root.join("examples"), &mut test_files);

    for file in &library_files {
        lint_source(&root, file, true, &mut allows, &mut problems);
    }
    for file in &test_files {
        lint_source(&root, file, false, &mut allows, &mut problems);
    }
    lint_manifests(&root, &mut problems);

    for allow in &allows {
        if !allow.used {
            problems.push(format!(
                "xtask/lint-allow.txt: stale entry `{} {}` matches nothing — remove it",
                allow.path, allow.token
            ));
        }
    }

    if problems.is_empty() {
        println!(
            "lint: {} library files, {} test/example files, all manifests clean",
            library_files.len(),
            test_files.len()
        );
        ExitCode::SUCCESS
    } else {
        problems.sort();
        for p in &problems {
            eprintln!("lint: {p}");
        }
        eprintln!("lint: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            out.push(entry.path());
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for path in list_dir(dir) {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints one source file. `library` enables rule 1 (the forbidden-token
/// scan); rule 2 (`allow(deprecated)`) applies everywhere except the
/// equivalence suite.
fn lint_source(
    root: &Path,
    path: &Path,
    library: bool,
    allows: &mut [Allow],
    problems: &mut Vec<String>,
) {
    let rel_path = rel(root, path);
    let Ok(source) = std::fs::read_to_string(path) else {
        problems.push(format!("{rel_path}: unreadable"));
        return;
    };
    let mut masked = mask_comments_and_strings(&source);
    mask_test_modules(&mut masked);
    let masked: String = masked.into_iter().collect();

    let mut allowed = |token: &str| -> bool {
        let mut hit = false;
        for allow in allows.iter_mut() {
            if allow.path == rel_path && allow.token == token {
                allow.used = true;
                hit = true;
            }
        }
        hit
    };

    if library {
        for &token in FORBIDDEN {
            let lines = forbidden_token_lines(&masked, token);
            if lines.is_empty() || allowed(token) {
                continue;
            }
            for line in lines {
                let spelled = match token {
                    "panic" => "panic!".to_string(),
                    other => format!(".{other}()"),
                };
                problems.push(format!(
                    "{rel_path}:{line}: `{spelled}` in non-test library code \
                     (handle the error, or add `{rel_path} {token}` to xtask/lint-allow.txt)"
                ));
            }
        }
    }

    if rel_path != "tests/api_equivalence.rs" {
        let lines = substring_lines(&masked, "allow(deprecated)");
        if !lines.is_empty() && !allowed("allow-deprecated") {
            for line in lines {
                problems.push(format!(
                    "{rel_path}:{line}: `allow(deprecated)` outside tests/api_equivalence.rs — \
                     deprecated entry points are frozen for the equivalence suite only"
                ));
            }
        }
    }
}

/// Rule 3: every dependency of every workspace manifest must be a workspace
/// crate or a vendored stand-in.
fn lint_manifests(root: &Path, problems: &mut Vec<String>) {
    let mut known: Vec<String> = VENDORED.iter().map(|s| s.to_string()).collect();
    let mut manifests = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    for krate in list_dir(&root.join("crates")) {
        manifests.push(krate.join("Cargo.toml"));
    }
    // First pass: learn the workspace package names.
    for manifest in &manifests {
        let Ok(text) = std::fs::read_to_string(manifest) else {
            continue;
        };
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
            } else if in_package && line.starts_with("name") {
                if let Some(name) = line.split('"').nth(1) {
                    known.push(name.to_string());
                }
            }
        }
    }
    // Second pass: check every dependency section against the known set.
    for manifest in &manifests {
        let rel_path = rel(root, manifest);
        let Ok(text) = std::fs::read_to_string(manifest) else {
            problems.push(format!("{rel_path}: unreadable"));
            continue;
        };
        let mut in_deps = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = matches!(
                    line,
                    "[dependencies]"
                        | "[dev-dependencies]"
                        | "[build-dependencies]"
                        | "[workspace.dependencies]"
                );
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(name) = line.split(['=', '.']).next().map(str::trim) else {
                continue;
            };
            if name.is_empty() {
                continue;
            }
            if !known.iter().any(|k| k == name) {
                problems.push(format!(
                    "{rel_path}:{}: dependency `{name}` is neither a workspace crate \
                     nor vendored under vendor/ — the offline build cannot resolve it",
                    lineno + 1
                ));
            }
        }
    }
}

/// Replaces the contents of comments, string literals and char literals with
/// spaces (newlines preserved), so token scans never match prose or text.
fn mask_comments_and_strings(source: &str) -> Vec<char> {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<char> = chars.clone();
    let n = chars.len();
    let mut i = 0;
    let blank = |out: &mut Vec<char>, from: usize, to: usize| {
        for c in out.iter_mut().take(to.min(n)).skip(from) {
            if *c != '\n' {
                *c = ' ';
            }
        }
    };
    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            let mut j = i;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            blank(&mut out, i, j);
            i = j;
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, i, j);
            i = j;
        } else if c == 'r' && (next == Some('"') || next == Some('#')) {
            // Raw string: r"..." or r#"..."# with any number of hashes.
            let mut hashes = 0;
            let mut j = i + 1;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                j += 1;
                'raw: while j < n {
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                blank(&mut out, i, j);
                i = j;
            } else {
                i += 1;
            }
        } else if c == '"' {
            let mut j = i + 1;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, i, j);
            i = j;
        } else if c == '\'' {
            // Char literal vs lifetime: a literal closes with a quote within
            // a couple of characters; a lifetime never closes.
            if next == Some('\\') {
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                blank(&mut out, i, j + 1);
                i = j + 1;
            } else if chars.get(i + 2) == Some(&'\'') {
                blank(&mut out, i, i + 3);
                i += 3;
            } else {
                i += 1; // lifetime
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Blanks every `#[cfg(test)]`-gated item: the attribute plus either the
/// following brace-matched block (`mod tests { … }`) or, for out-of-line
/// declarations (`mod testutil;`), up to the terminating semicolon.
fn mask_test_modules(masked: &mut [char]) {
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let n = masked.len();
    let mut i = 0;
    while i + needle.len() <= n {
        if masked[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Scan to the item body: the first `{` outside parens/brackets, or a
        // `;` that ends an out-of-line declaration first.
        let mut end = n;
        while j < n {
            match masked[j] {
                ';' => {
                    end = j + 1;
                    break;
                }
                '{' => {
                    let mut depth = 0;
                    while j < n {
                        match masked[j] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = j;
                    break;
                }
                _ => j += 1,
            }
        }
        for c in masked.iter_mut().take(end).skip(start) {
            if *c != '\n' {
                *c = ' ';
            }
        }
        i = end;
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// 1-indexed lines where `token` occurs as a forbidden call: `.unwrap()` /
/// `.expect(...)` (method position) or `panic!` (macro position).
fn forbidden_token_lines(masked: &str, token: &str) -> Vec<usize> {
    let chars: Vec<char> = masked.chars().collect();
    let tok: Vec<char> = token.chars().collect();
    let mut lines = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if i + tok.len() <= chars.len()
            && chars[i..i + tok.len()] == tok[..]
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars
                .get(i + tok.len())
                .map(|&c| !is_ident(c))
                .unwrap_or(true)
        {
            let hit = if token == "panic" {
                // Macro position: `panic` followed by `!`.
                next_non_ws(&chars, i + tok.len()) == Some('!')
            } else {
                // Method position: preceded by `.`.
                prev_non_ws(&chars, i) == Some('.')
            };
            if hit {
                lines.push(line);
            }
            i += tok.len();
        } else {
            i += 1;
        }
    }
    lines
}

fn next_non_ws(chars: &[char], mut i: usize) -> Option<char> {
    while i < chars.len() {
        if !chars[i].is_whitespace() {
            return Some(chars[i]);
        }
        i += 1;
    }
    None
}

fn prev_non_ws(chars: &[char], i: usize) -> Option<char> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !chars[j].is_whitespace() {
            return Some(chars[j]);
        }
    }
    None
}

/// 1-indexed lines containing `needle` verbatim (post-masking).
fn substring_lines(masked: &str, needle: &str) -> Vec<usize> {
    masked
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(src: &str) -> String {
        let mut m = mask_comments_and_strings(src);
        mask_test_modules(&mut m);
        m.into_iter().collect()
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let m = mask("let x = \"unwrap()\"; // .unwrap()\n/* panic! */ let y = 1;");
        assert!(forbidden_token_lines(&m, "unwrap").is_empty());
        assert!(forbidden_token_lines(&m, "panic").is_empty());
    }

    #[test]
    fn method_calls_are_flagged_but_totals_are_not() {
        let m = mask("a.unwrap();\nb.unwrap_or(0);\nc.expect(\"x\");\npanic!(\"y\");\nstd::panic::catch_unwind(f);");
        assert_eq!(forbidden_token_lines(&m, "unwrap"), vec![1]);
        assert_eq!(forbidden_token_lines(&m, "expect"), vec![3]);
        assert_eq!(forbidden_token_lines(&m, "panic"), vec![4]);
    }

    #[test]
    fn cfg_test_blocks_and_declarations_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n#[cfg(test)]\nmod testutil;\n";
        let m = mask(src);
        assert!(forbidden_token_lines(&m, "unwrap").is_empty());
        assert!(!m.contains("testutil"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_masked() {
        let m =
            mask("let s = r#\"a.unwrap()\"#; let c = '\"'; let l: &'static str = x; y.unwrap();");
        assert_eq!(forbidden_token_lines(&m, "unwrap").len(), 1);
    }
}
