//! Deterministic checks of the paper's analytical claims (§4.2) on concrete
//! instances — the test-suite counterpart of harness experiments E1–E4, E6.

use mdst::prelude::*;
use std::sync::Arc;

/// Builds the worst-case family of the complexity analysis: the initial tree
/// is the star (degree n − 1) and the graph allows improvement down to a
/// degree-2 or 3 tree, so the number of rounds is Θ(n).
fn worst_case(n: usize) -> (Arc<Graph>, RootedTree) {
    let graph = Arc::new(generators::star_with_leaf_edges(n).unwrap());
    let tree = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    (graph, tree)
}

#[test]
fn per_round_message_cost_is_linear_in_m() {
    // §4.2: SearchDegree ≤ n − 1, MoveRoot ≤ n − 1, Cut+BFS ≤ 2m, Choose ≤ n − 1.
    // Measured: the average cost of a round never exceeds a small multiple of m + n.
    for n in [10, 20, 40, 80] {
        let (graph, initial) = worst_case(n);
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let m = graph.edge_count() as f64;
        let per_round = run.metrics.messages_total as f64 / run.rounds as f64;
        assert!(
            per_round <= 4.0 * (m + n as f64),
            "n={n}: {per_round} messages per round vs m={m}"
        );
    }
}

#[test]
fn total_messages_scale_with_degree_drop_times_m() {
    // O((k − k*)·m) total messages: the measured-to-budget ratio stays bounded
    // as n grows (it does not drift upward).
    let mut ratios = Vec::new();
    for n in [12, 24, 48, 96] {
        let (graph, initial) = worst_case(n);
        let k = initial.max_degree();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k_star = run.final_tree.max_degree();
        let budget = ((k - k_star + 1) * graph.edge_count()) as f64;
        ratios.push(run.metrics.messages_total as f64 / budget);
    }
    for ratio in &ratios {
        assert!(*ratio <= 5.0, "ratios {ratios:?}");
    }
    let first = ratios.first().unwrap();
    let last = ratios.last().unwrap();
    assert!(
        last <= &(first * 2.0 + 1.0),
        "the ratio must not grow with n: {ratios:?}"
    );
}

#[test]
fn total_time_scales_with_degree_drop_times_n() {
    for n in [12, 24, 48, 96] {
        let (graph, initial) = worst_case(n);
        let k = initial.max_degree();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k_star = run.final_tree.max_degree();
        let budget = ((k - k_star + 1) * n) as u64;
        assert!(
            run.metrics.quiescence_time <= 8 * budget,
            "n={n}: time {} vs budget {budget}",
            run.metrics.quiescence_time
        );
    }
}

#[test]
fn message_size_grows_logarithmically() {
    let mut sizes = Vec::new();
    for n in [8, 16, 32, 64, 128] {
        let (graph, initial) = worst_case(n);
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        sizes.push(run.metrics.bits_max);
        let id_bits = (usize::BITS - (n - 1).leading_zeros()) as u64;
        assert!(run.metrics.bits_max <= 4 + 5 * id_bits, "n={n}");
    }
    // Doubling n adds a constant number of bits, it does not double the size.
    for pair in sizes.windows(2) {
        assert!(pair[1] <= pair[0] + 6, "sizes {sizes:?}");
    }
}

#[test]
fn complete_graph_cost_stays_close_to_the_kmz_lower_bound() {
    // §5: any algorithm needs Ω(n²/k) messages on complete networks; the
    // protocol's measured cost stays within a moderate factor of that bound
    // on complete graphs (it is O(n·m) = O(n³) in the worst case, but with the
    // greedy-hub seed the drop k − k* ≈ n so the comparison is n²-to-n²·…).
    for n in [8, 16, 32] {
        let graph = Arc::new(generators::complete(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k_star = run.final_tree.max_degree();
        let ratio = kmz_ratio(run.metrics.messages_total, n, k_star);
        assert!(ratio.is_finite());
        assert!(
            ratio <= 4.0 * n as f64,
            "n={n}: measured/KMZ ratio {ratio} should stay within the paper's O(n) factor"
        );
    }
}

#[test]
fn rounds_track_the_degree_drop() {
    // The paper counts k − k* + 1 rounds; the serialised implementation uses
    // one round per improvement, so rounds = improvements + 1 and
    // improvements ≥ k − k*.
    for n in [10, 20, 40] {
        let (graph, initial) = worst_case(n);
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let drop = initial.max_degree() - run.final_tree.max_degree();
        assert!(run.improvements as usize >= drop);
        assert_eq!(run.rounds, run.improvements + 1);
    }
}
