//! Cross-validation of the distributed protocol against the sequential
//! baselines and the exact optimum.

use mdst::prelude::*;
use std::sync::Arc;

#[test]
fn distributed_run_matches_the_sequential_mirror_exactly() {
    // The protocol's decisions are a deterministic function of the tree, so
    // the distributed execution and the centralized mirror of the paper rule
    // must produce the same tree, the same number of exchanges and the same
    // number of rounds.
    for seed in 0..10u64 {
        let graph = Arc::new(generators::gnp_connected(24, 0.18, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let distributed = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let mirror = paper_local_search(&graph, &initial).unwrap();
        assert_eq!(
            distributed.final_tree.max_degree(),
            mirror.tree.max_degree(),
            "seed {seed}"
        );
        assert_eq!(
            distributed.improvements as usize, mirror.improvements,
            "seed {seed}"
        );
        assert_eq!(distributed.rounds as usize, mirror.rounds, "seed {seed}");
        // Not just the degree: the edge sets coincide.
        let dist_edges: std::collections::BTreeSet<(NodeId, NodeId)> = distributed
            .final_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let mirror_edges: std::collections::BTreeSet<(NodeId, NodeId)> = mirror
            .tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        assert_eq!(dist_edges, mirror_edges, "seed {seed}");
    }
}

#[test]
fn furer_raghavachari_never_does_worse_than_the_paper_rule() {
    for seed in 0..10u64 {
        let graph = Arc::new(generators::gnp_connected(22, 0.15, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let paper = paper_local_search(&graph, &initial).unwrap();
        let fr = furer_raghavachari(&graph, &initial, true).unwrap();
        assert!(
            fr.tree.max_degree() <= paper.tree.max_degree(),
            "seed {seed}: FR {} vs paper {}",
            fr.tree.max_degree(),
            paper.tree.max_degree()
        );
    }
}

#[test]
fn distributed_result_is_sandwiched_between_optimum_and_initial_degree() {
    for seed in 0..8u64 {
        let graph = Arc::new(generators::gnp_connected(12, 0.3, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        let result = run.final_tree.max_degree();
        assert!(result >= optimum, "seed {seed}");
        assert!(result <= initial.max_degree(), "seed {seed}");
    }
}

#[test]
fn exact_solver_confirms_structured_optima_reached_by_the_protocol() {
    // On complete graphs and on the star-plus-path worst case, the protocol
    // reaches a tree within one of the optimum degree 2.
    for graph in [
        Arc::new(generators::complete(10).unwrap()),
        Arc::new(generators::star_with_leaf_edges(12).unwrap()),
        Arc::new(generators::wheel(10).unwrap()),
    ] {
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        assert_eq!(optimum, 2);
        assert!(run.final_tree.max_degree() <= optimum + 1);
    }
}

#[test]
fn forced_hub_instances_are_recognised_as_unimprovable() {
    // Every spanning tree of the broom keeps the centre at degree `branches`,
    // so the protocol must stop immediately with zero exchanges.
    let graph = Arc::new(generators::high_optimum(5, 2).unwrap());
    let initial = algorithms::bfs_tree(&graph, NodeId(0)).unwrap();
    let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
    assert_eq!(run.improvements, 0);
    assert_eq!(run.final_tree.max_degree(), 5);
    assert_eq!(exact_min_degree(&graph).unwrap(), 5);
}
