//! The discrete-event simulator, the threaded crossbeam runtime and the
//! work-stealing pool must agree: the protocol's outcome depends only on the
//! tree structure, never on message timing, so running it under real OS
//! scheduling (thread-per-node or multiplexed) is an end-to-end check that
//! no hidden synchrony assumption crept in.

use mdst::core::distributed::MdstNode;
use mdst::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn run_both(
    graph: &Arc<Graph>,
    initial: &RootedTree,
) -> (RootedTree, RootedTree, Metrics, Metrics) {
    let sim_run = run_distributed_mdst(graph, initial, SimConfig::default()).unwrap();
    let nodes = MdstNode::from_tree(initial);
    let threaded = ThreadedRuntime::run(graph, |id, _| nodes[id.index()].clone());
    let threaded_tree = collect_tree(&threaded.nodes).unwrap();
    (
        sim_run.final_tree,
        threaded_tree,
        sim_run.metrics,
        threaded.metrics,
    )
}

#[test]
fn threaded_and_simulated_runs_produce_the_same_tree() {
    for seed in 0..5u64 {
        let graph = Arc::new(generators::gnp_connected(20, 0.2, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let (sim_tree, thr_tree, _, _) = run_both(&graph, &initial);
        let a: std::collections::BTreeSet<_> = sim_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let b: std::collections::BTreeSet<_> = thr_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        assert_eq!(a, b, "seed {seed}");
        assert!(thr_tree.is_spanning_tree_of(&graph), "seed {seed}");
    }
}

#[test]
fn threaded_and_simulated_runs_exchange_the_same_messages() {
    // The protocol is message-deterministic: the same messages flow in both
    // runtimes, only their interleaving differs.
    let graph = Arc::new(generators::star_with_leaf_edges(14).unwrap());
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let (_, _, sim_metrics, thr_metrics) = run_both(&graph, &initial);
    assert_eq!(sim_metrics.messages_total, thr_metrics.messages_total);
    assert_eq!(sim_metrics.messages_by_kind, thr_metrics.messages_by_kind);
    assert_eq!(sim_metrics.bits_total, thr_metrics.bits_total);
}

#[test]
fn pool_and_simulated_runs_produce_the_same_tree() {
    for seed in 0..5u64 {
        let graph = Arc::new(generators::gnp_connected(24, 0.2, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let sim_run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let pool_run = run_distributed_mdst_on(
            ExecutorKind::Pool,
            &graph,
            &initial,
            &ExecConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pool_run.executor, ExecutorKind::Pool);
        let a: std::collections::BTreeSet<_> = sim_run
            .final_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let b: std::collections::BTreeSet<_> = pool_run
            .final_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(
            sim_run.metrics.messages_by_kind, pool_run.metrics.messages_by_kind,
            "seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The batched fabric must agree with the simulator for *every* graph
    /// seed and every drain-batch size, not just the default: the batch knob
    /// only reshapes scheduling quanta, never the message flow. Small batch
    /// sizes are the adversarial end — a batch of 1 maximises flush count
    /// and continuation churn.
    #[test]
    fn batched_pool_matches_the_simulator_for_any_seed_and_batch(
        seed in any::<u64>(),
        batch in 1usize..96,
        workers in 1usize..6,
    ) {
        let graph = Arc::new(generators::gnp_connected(18, 0.25, seed).expect("valid"));
        let initial =
            algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("connected");
        let sim_run =
            run_distributed_mdst(&graph, &initial, SimConfig::default()).expect("sim");
        let pool_run = run_distributed_mdst_on(
            ExecutorKind::Pool,
            &graph,
            &initial,
            &ExecConfig {
                workers,
                batch,
                ..Default::default()
            },
        )
        .expect("pool");
        let a: std::collections::BTreeSet<_> = sim_run
            .final_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let b: std::collections::BTreeSet<_> = pool_run
            .final_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(
            &sim_run.metrics.messages_by_kind,
            &pool_run.metrics.messages_by_kind
        );
        prop_assert_eq!(sim_run.metrics.bits_total, pool_run.metrics.bits_total);
        prop_assert_eq!(
            sim_run.metrics.messages_total,
            pool_run.metrics.messages_total
        );
    }
}

#[test]
fn spanning_tree_constructions_also_run_on_the_pool() {
    use mdst::spanning::flooding::FloodingSt;
    let graph = Arc::new(generators::grid(8, 8).unwrap());
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig::default(),
    )
    .unwrap();
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
    let m = graph.edge_count() as u64;
    let n = graph.node_count() as u64;
    assert_eq!(run.metrics.messages_total, 2 * m + (n - 1));
}

#[test]
fn spanning_tree_constructions_also_run_on_threads() {
    use mdst::spanning::flooding::FloodingSt;
    let graph = Arc::new(generators::grid(5, 5).unwrap());
    let run = ThreadedRuntime::run(&graph, |id, _| FloodingSt::new(id, NodeId(0)));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
    let m = graph.edge_count() as u64;
    let n = graph.node_count() as u64;
    assert_eq!(run.metrics.messages_total, 2 * m + (n - 1));
}
