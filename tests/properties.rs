//! Property-based tests (proptest) over random connected graphs and random
//! initial trees: the invariants that must hold for *every* input, not just
//! the structured families.

use mdst::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random connected graph described by (n, extra edges, seed).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..28, 0usize..40, any::<u64>()).prop_map(|(n, extra, seed)| {
        generators::random_connected(n, extra, seed).expect("valid parameters")
    })
}

/// Strategy: a graph plus a random spanning tree of it.
fn graph_with_tree() -> impl Strategy<Value = (Arc<Graph>, RootedTree)> {
    (connected_graph(), any::<u64>()).prop_map(|(graph, seed)| {
        let root = NodeId::new((seed % graph.node_count() as u64) as usize);
        let tree = algorithms::random_spanning_tree(&graph, root, seed).expect("connected");
        (Arc::new(graph), tree)
    })
}

/// One numbered token of the FIFO probe below.
#[derive(Debug, Clone)]
struct Numbered(u64);

impl NetMessage for Numbered {
    fn kind(&self) -> &'static str {
        "Numbered"
    }
    fn encoded_bits(&self) -> usize {
        64
    }
}

/// Node 0 sends a burst of numbered tokens to node 1 on a two-node path;
/// node 1 records the arrival order.
struct FifoProbe {
    id: NodeId,
    burst: u64,
    got: Vec<u64>,
}

impl Protocol for FifoProbe {
    type Message = Numbered;
    fn on_start(&mut self, ctx: &mut dyn Context<Numbered>) {
        if self.id == NodeId(0) {
            for i in 0..self.burst {
                ctx.send(NodeId(1), Numbered(i));
            }
        }
    }
    fn on_message(&mut self, _: NodeId, msg: Numbered, _: &mut dyn Context<Numbered>) {
        self.got.push(msg.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fifo_ordering_survives_random_delays_and_message_loss(
        (per_link, min, span, seed, loss_tenths)
            in (any::<bool>(), 1u64..4, 0u64..25, any::<u64>(), 0u32..10)
    ) {
        // Per-link FIFO is a stated property of the network model (§2); it
        // must hold under non-monotone random delays *and* under message
        // loss, where dropped sends must not consume FIFO slots that would
        // reorder or stall the surviving traffic.
        let delay = if per_link {
            DelayModel::PerLinkFixed { min, max: min + span, seed }
        } else {
            DelayModel::UniformRandom { min, max: min + span, seed }
        };
        let cfg = SimConfig {
            delay,
            faults: FaultPlan {
                loss: f64::from(loss_tenths) / 10.0,
                seed: seed ^ 0x5EED_F1F0,
                ..Default::default()
            },
            ..Default::default()
        };
        let burst = 60u64;
        let graph = Arc::new(generators::path(2).unwrap());
        let mut sim = Simulator::new(&graph, cfg, |id, _| FifoProbe {
            id,
            burst,
            got: Vec::new(),
        })
        .unwrap();
        sim.run().unwrap();
        let got = &sim.node(NodeId(1)).got;
        prop_assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "per-link FIFO violated: {got:?}"
        );
        // Loss accounting: every token is either delivered or counted dropped.
        prop_assert_eq!(got.len() as u64 + sim.metrics().dropped_messages, burst);
        if loss_tenths == 0 {
            prop_assert_eq!(got.len() as u64, burst);
        }
    }

    #[test]
    fn generators_produce_connected_graphs((graph, _) in graph_with_tree()) {
        prop_assert!(algorithms::is_connected(&graph));
        prop_assert!(graph.edge_count() >= graph.node_count() - 1);
        prop_assert_eq!(graph.degree_sum(), 2 * graph.edge_count());
    }

    #[test]
    fn distributed_improvement_preserves_spanning_and_never_worsens(
        (graph, initial) in graph_with_tree()
    ) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        prop_assert!(run.final_tree.is_spanning_tree_of(&graph));
        prop_assert!(run.final_tree.max_degree() <= initial.max_degree());
        prop_assert!(run.final_tree.max_degree() >= degree_lower_bound(&graph));
        // Termination certificate: the targeted max-degree node is blocked.
        prop_assert!(verify_termination_certificate(&graph, &run.final_tree));
        // Rounds bookkeeping: one exchange per round except the last.
        prop_assert_eq!(run.improvements + 1, run.rounds);
    }

    #[test]
    fn message_and_time_complexity_match_the_papers_bounds(
        (graph, initial) in graph_with_tree()
    ) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let n = graph.node_count() as u64;
        let m = graph.edge_count() as u64;
        let rounds = run.rounds as u64;
        // Per §4.2 a round costs at most 2m + O(n) messages and O(n) time; the
        // constants below are generous but finite, which is what the
        // asymptotic claim needs.
        prop_assert!(run.metrics.messages_total <= rounds * (4 * m + 6 * n) + n);
        prop_assert!(run.metrics.causal_time <= rounds * 8 * n + 8);
        // O(log n) bits per message: tag + at most five identity-sized fields.
        let id_bits = (usize::BITS - (graph.node_count() - 1).max(1).leading_zeros()) as u64;
        prop_assert!(run.metrics.bits_max <= 4 + 5 * id_bits.max(1));
    }

    #[test]
    fn distributed_and_sequential_mirror_agree((graph, initial) in graph_with_tree()) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let mirror = paper_local_search(&graph, &initial).unwrap();
        prop_assert_eq!(run.final_tree.max_degree(), mirror.tree.max_degree());
        prop_assert_eq!(run.improvements as usize, mirror.improvements);
    }

    #[test]
    fn sequential_algorithms_respect_the_exact_optimum(
        (n, extra, seed) in (4usize..11, 0usize..12, any::<u64>())
    ) {
        let graph = Arc::new(generators::random_connected(n, extra, seed).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        let paper = paper_local_search(&graph, &initial).unwrap();
        let fr = furer_raghavachari(&graph, &initial, true).unwrap();
        prop_assert!(paper.tree.max_degree() >= optimum);
        prop_assert!(fr.tree.max_degree() >= optimum);
        prop_assert!(paper.tree.max_degree() <= initial.max_degree());
        prop_assert!(fr.tree.max_degree() <= initial.max_degree());
        prop_assert!(optimum >= degree_lower_bound(&graph));
    }

    #[test]
    fn exchange_preserves_tree_invariants((graph, mut tree) in graph_with_tree()) {
        // Exercise RootedTree::exchange directly with an arbitrary admissible
        // move: pick any non-tree edge and any vertex on its tree path.
        let non_tree: Vec<(NodeId, NodeId)> = graph
            .edges()
            .filter(|&(u, v)| !tree.has_edge(u, v))
            .collect();
        if let Some(&(u, v)) = non_tree.first() {
            let path = tree.path_between(u, v);
            if path.len() >= 3 {
                let w = path[1];
                let other = path[0];
                let (cut_parent, cut_child) = if tree.parent(other) == Some(w) {
                    (w, other)
                } else {
                    (other, w)
                };
                tree.exchange(cut_parent, cut_child, u, v).unwrap();
                prop_assert!(tree.is_spanning_tree_of(&graph));
                prop_assert!(tree.has_edge(u, v));
            }
        }
    }

    #[test]
    fn spanning_constructions_are_valid_on_random_graphs(
        (graph, _) in graph_with_tree(), which in 0usize..6
    ) {
        let kind = InitialTreeKind::all(11)[which];
        let (tree, _) = build_initial_tree(&graph, NodeId(0), kind).unwrap();
        prop_assert!(tree.is_spanning_tree_of(&graph));
        prop_assert_eq!(tree.root(), NodeId(0));
    }
}
