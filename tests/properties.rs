//! Property-based tests (proptest) over random connected graphs and random
//! initial trees: the invariants that must hold for *every* input, not just
//! the structured families.

use mdst::prelude::*;
use proptest::prelude::*;

/// Strategy: a random connected graph described by (n, extra edges, seed).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..28, 0usize..40, any::<u64>()).prop_map(|(n, extra, seed)| {
        generators::random_connected(n, extra, seed).expect("valid parameters")
    })
}

/// Strategy: a graph plus a random spanning tree of it.
fn graph_with_tree() -> impl Strategy<Value = (Graph, RootedTree)> {
    (connected_graph(), any::<u64>()).prop_map(|(graph, seed)| {
        let root = NodeId((seed % graph.node_count() as u64) as usize);
        let tree = algorithms::random_spanning_tree(&graph, root, seed).expect("connected");
        (graph, tree)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_produce_connected_graphs((graph, _) in graph_with_tree()) {
        prop_assert!(algorithms::is_connected(&graph));
        prop_assert!(graph.edge_count() >= graph.node_count() - 1);
        prop_assert_eq!(graph.degree_sum(), 2 * graph.edge_count());
    }

    #[test]
    fn distributed_improvement_preserves_spanning_and_never_worsens(
        (graph, initial) in graph_with_tree()
    ) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        prop_assert!(run.final_tree.is_spanning_tree_of(&graph));
        prop_assert!(run.final_tree.max_degree() <= initial.max_degree());
        prop_assert!(run.final_tree.max_degree() >= degree_lower_bound(&graph));
        // Termination certificate: the targeted max-degree node is blocked.
        prop_assert!(verify_termination_certificate(&graph, &run.final_tree));
        // Rounds bookkeeping: one exchange per round except the last.
        prop_assert_eq!(run.improvements + 1, run.rounds);
    }

    #[test]
    fn message_and_time_complexity_match_the_papers_bounds(
        (graph, initial) in graph_with_tree()
    ) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let n = graph.node_count() as u64;
        let m = graph.edge_count() as u64;
        let rounds = run.rounds as u64;
        // Per §4.2 a round costs at most 2m + O(n) messages and O(n) time; the
        // constants below are generous but finite, which is what the
        // asymptotic claim needs.
        prop_assert!(run.metrics.messages_total <= rounds * (4 * m + 6 * n) + n);
        prop_assert!(run.metrics.causal_time <= rounds * 8 * n + 8);
        // O(log n) bits per message: tag + at most five identity-sized fields.
        let id_bits = (usize::BITS - (graph.node_count() - 1).max(1).leading_zeros()) as u64;
        prop_assert!(run.metrics.bits_max <= 4 + 5 * id_bits.max(1));
    }

    #[test]
    fn distributed_and_sequential_mirror_agree((graph, initial) in graph_with_tree()) {
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let mirror = paper_local_search(&graph, &initial).unwrap();
        prop_assert_eq!(run.final_tree.max_degree(), mirror.tree.max_degree());
        prop_assert_eq!(run.improvements as usize, mirror.improvements);
    }

    #[test]
    fn sequential_algorithms_respect_the_exact_optimum(
        (n, extra, seed) in (4usize..11, 0usize..12, any::<u64>())
    ) {
        let graph = generators::random_connected(n, extra, seed).unwrap();
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        let paper = paper_local_search(&graph, &initial).unwrap();
        let fr = furer_raghavachari(&graph, &initial, true).unwrap();
        prop_assert!(paper.tree.max_degree() >= optimum);
        prop_assert!(fr.tree.max_degree() >= optimum);
        prop_assert!(paper.tree.max_degree() <= initial.max_degree());
        prop_assert!(fr.tree.max_degree() <= initial.max_degree());
        prop_assert!(optimum >= degree_lower_bound(&graph));
    }

    #[test]
    fn exchange_preserves_tree_invariants((graph, mut tree) in graph_with_tree()) {
        // Exercise RootedTree::exchange directly with an arbitrary admissible
        // move: pick any non-tree edge and any vertex on its tree path.
        let non_tree: Vec<(NodeId, NodeId)> = graph
            .edges()
            .filter(|&(u, v)| !tree.has_edge(u, v))
            .collect();
        if let Some(&(u, v)) = non_tree.first() {
            let path = tree.path_between(u, v);
            if path.len() >= 3 {
                let w = path[1];
                let other = path[0];
                let (cut_parent, cut_child) = if tree.parent(other) == Some(w) {
                    (w, other)
                } else {
                    (other, w)
                };
                tree.exchange(cut_parent, cut_child, u, v).unwrap();
                prop_assert!(tree.is_spanning_tree_of(&graph));
                prop_assert!(tree.has_edge(u, v));
            }
        }
    }

    #[test]
    fn spanning_constructions_are_valid_on_random_graphs(
        (graph, _) in graph_with_tree(), which in 0usize..6
    ) {
        let kind = InitialTreeKind::all(11)[which];
        let (tree, _) = build_initial_tree(&graph, NodeId(0), kind).unwrap();
        prop_assert!(tree.is_spanning_tree_of(&graph));
        prop_assert_eq!(tree.root(), NodeId(0));
    }
}
