//! Workspace-level model-checking guarantees.
//!
//! * The `mdst-check` sweep exhaustively verifies every connected topology
//!   up to 5 nodes — all interleavings, all isomorphism classes — within
//!   the default budgets.
//! * Cross-validation: every quiescent outcome the seeded simulator samples
//!   on small graphs is a member of the checker's exhaustively enumerated
//!   outcome set (the sampled world is contained in the proved one).
//! * A deliberately broken invariant produces a minimized counterexample
//!   that serializes, parses and replays to the same violation.

use mdst::prelude::*;

/// Parent vector of a rooted tree, in the checker's outcome encoding.
fn parent_vec(tree: &RootedTree) -> Vec<Option<usize>> {
    (0..tree.node_count())
        .map(|u| tree.parent(NodeId::new(u)).map(|p| p.index()))
        .collect()
}

#[test]
fn the_exhaustive_n4_sweep_verifies_every_topology() {
    let report = sweep_connected(1, 4, &CheckConfig::default());
    // 1 + 1 + 2 + 6 isomorphism classes of connected graphs on 1..=4 nodes.
    assert_eq!(report.entries.len(), 10);
    assert!(
        report.all_passed,
        "violation: {:?}",
        report.first_violation().map(|e| &e.label)
    );
    assert!(
        report.all_complete,
        "default budget must cover n <= 4 fully"
    );
    for entry in &report.entries {
        // Fault-free, the protocol's outcome is schedule-independent: the
        // checker must enumerate exactly one quiescent outcome per topology.
        assert_eq!(
            entry.report.outcomes.len(),
            1,
            "{}: outcome not schedule-independent",
            entry.label
        );
        assert!(entry.report.outcomes[0].all_live_done);
    }
}

#[test]
fn the_exhaustive_n5_sweep_verifies_every_topology() {
    // All 21 isomorphism classes on 5 nodes, up to and including K5, within
    // the default state budget — the crate's headline acceptance claim.
    let report = sweep_connected(5, 5, &CheckConfig::default());
    assert_eq!(report.entries.len(), 21);
    assert!(
        report.all_passed,
        "violation: {:?}",
        report.first_violation().map(|e| &e.label)
    );
    assert!(report.all_complete);
    assert!(
        report.entries.iter().all(|e| e.report.outcomes.len() == 1),
        "fault-free outcomes must be schedule-independent"
    );
}

#[test]
fn simulator_outcomes_are_contained_in_the_checked_outcome_set() {
    // For every connected graph on <= 4 nodes: whatever final tree the
    // seeded simulator samples under randomized delays, the checker's
    // exhaustive quiescent-outcome set already contains it.
    for (gi, graph) in mdst::check::connected_graphs(4).into_iter().enumerate() {
        let graph = Arc::new(graph);
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let checked = model_check(&graph, &initial, &CheckConfig::default());
        assert!(checked.passed() && checked.complete);
        let proved: Vec<Vec<Option<usize>>> =
            checked.outcomes.iter().map(|o| o.parents.clone()).collect();

        for seed in [1u64, 7, 42, 1303] {
            let report = Pipeline::on(&graph)
                .initial_tree(initial.clone())
                .sim(SimConfig {
                    delay: DelayModel::UniformRandom {
                        min: 1,
                        max: 5,
                        seed,
                    },
                    ..SimConfig::default()
                })
                .run()
                .unwrap();
            assert_eq!(report.outcome, Outcome::Optimal);
            let sampled = parent_vec(report.tree());
            assert!(
                proved.contains(&sampled),
                "graph #{gi} seed {seed}: sampled outcome {sampled:?} \
                 not in the exhaustively enumerated set {proved:?}"
            );
        }
    }
}

/// A deliberately wrong property: "the tree never changes" — the
/// improvement protocol exists to falsify this.
struct FrozenTree {
    initial: Vec<Option<usize>>,
}

impl InvariantSuite for FrozenTree {
    fn check_state(&self, _g: &Graph, net: &ControlledNet<MdstNode>) -> Option<Violation> {
        let now: Vec<Option<usize>> = net
            .nodes()
            .iter()
            .map(|p| p.parent().map(|v| v.index()))
            .collect();
        (now != self.initial).then(|| {
            Violation::new(
                "bogus-frozen-tree",
                format!("parents moved from {:?} to {now:?}", self.initial),
            )
        })
    }

    fn check_quiescent(
        &self,
        _g: &Graph,
        _net: &ControlledNet<MdstNode>,
        _faulty: bool,
    ) -> Option<Violation> {
        None
    }
}

#[test]
fn a_broken_invariant_yields_a_minimized_replayable_counterexample() {
    // C4 plus a chord, seeded with the degree-3 greedy star: the protocol
    // must improve the tree, falsifying the frozen-tree property.
    let graph = Arc::new(
        mdst::graph::graph::graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap(),
    );
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let suite = FrozenTree {
        initial: (0..4)
            .map(|u| initial.parent(NodeId(u)).map(|p| p.index()))
            .collect(),
    };
    let report = check_with_suite(&graph, &initial, &CheckConfig::default(), &suite);
    assert!(!report.passed(), "the bogus property must be violated");
    let cex = report.violation.as_ref().unwrap();
    assert_eq!(cex.violation.rule, "bogus-frozen-tree");

    // The minimized schedule replays deterministically to the same rule...
    let replayed = cex.replay(&suite).unwrap();
    assert_eq!(replayed.rule, "bogus-frozen-tree");

    // ...survives a JSON round trip losslessly...
    let json = cex.to_json();
    let parsed = Counterexample::from_json(&json).unwrap();
    assert_eq!(&parsed, cex);

    // ...and the parsed copy still reproduces the violation.
    assert_eq!(parsed.replay(&suite).unwrap().rule, "bogus-frozen-tree");

    // Minimization is a fixpoint: no single deletion can shrink it further.
    let re_minimized = parsed.minimize(&suite);
    assert_eq!(re_minimized.schedule.len(), cex.schedule.len());

    // The first parent move needs one full exchange (SearchDegree flood,
    // degree reports, Choose, MoveRoot — about 19 messages here), not the
    // whole DFS path the checker walked to find it.
    assert!(
        !cex.schedule.is_empty() && cex.schedule.len() <= 25,
        "expected one exchange worth of events, got {}",
        cex.schedule.len()
    );
}

#[test]
fn fault_branching_preserves_safety_on_the_chorded_cycle() {
    let graph = Arc::new(
        mdst::graph::graph::graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap(),
    );
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let report = model_check(
        &graph,
        &initial,
        &CheckConfig {
            max_crashes: 1,
            max_losses: 1,
            ..CheckConfig::default()
        },
    );
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(report.complete);
    // The adversary's choices genuinely fan the outcomes out.
    assert!(report.outcomes.len() > 1);
    // Some outcome still includes a crash with the survivors spanning.
    assert!(report.outcomes.iter().any(|o| o.crashed.iter().any(|&c| c)));
}
