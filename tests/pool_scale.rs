//! Scale test of the work-stealing pool: the acceptance bar for the executor
//! refactor is a 5,000-node run completing on at most 64 worker threads —
//! the regime the thread-per-node runtime structurally cannot reach (it
//! would need 5,000 OS threads).

use mdst::prelude::*;
use mdst::spanning::flooding::FloodingSt;
use std::sync::Arc;

#[test]
fn pool_completes_a_5000_node_run_with_at_most_64_workers() {
    let n = 5_000;
    let graph = Arc::new(generators::random_connected(n, n / 2, 7).unwrap());
    let m = graph.edge_count() as u64;
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig {
            workers: 64,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        run.workers <= 64,
        "the pool must multiplex {n} nodes over at most 64 workers, used {}",
        run.workers
    );
    assert_eq!(run.status, ExecStatus::Quiesced);
    // Flooding-based spanning-tree construction is message-deterministic:
    // exactly 2m + (n - 1) messages under any schedule, and the collected
    // parent pointers form a spanning tree rooted at the initiator.
    assert_eq!(run.metrics.messages_total, 2 * m + (n as u64 - 1));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
}

/// Release-only scale gate for the batched message fabric: a 100,000-node
/// run, twenty times past the original acceptance bar. Ignored in debug
/// builds (an unoptimised build takes the fun out of a scale test); run it
/// with `cargo test --release -p mdst --test pool_scale`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: 100k nodes want an optimised build"
)]
fn pool_completes_a_100_000_node_run_with_a_degree_bound_verdict() {
    use mdst::core::bounds::ceil_log2;
    let n = 100_000;
    let graph = Arc::new(generators::random_connected(n, n / 2, 7).unwrap());
    let m = graph.edge_count() as u64;
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig::default(),
    )
    .unwrap();
    assert_eq!(run.status, ExecStatus::Quiesced);
    // Message determinism survives the scale jump: exactly 2m + (n − 1)
    // messages under any worker interleaving and any batch size.
    assert_eq!(run.metrics.messages_total, 2 * m + (n as u64 - 1));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
    // Degree-bound verdict. The exact combinatorial `Δ*` lower bound is
    // quadratic in `n` — hopeless here — but every spanning tree on n ≥ 3
    // nodes has a vertex of degree ≥ 2, so `Δ* ≥ 2` and the paper's
    // conservative `2Δ* + ⌈log₂ n⌉` verdict is checkable at full scale.
    // The verdict is schedule-independent because a flooding tree's degrees
    // never exceed the (fixed, seeded) graph's degrees.
    let bound = 2 * 2 + ceil_log2(n);
    assert!(
        graph.max_degree() <= bound,
        "seed drifted: graph degree {} exceeds the verdict bound {bound}, \
         making the check schedule-dependent",
        graph.max_degree()
    );
    assert!(
        tree.max_degree() <= bound,
        "flooding tree degree {} violates the 2Δ*+⌈log n⌉ verdict ({bound})",
        tree.max_degree()
    );
}

#[test]
fn pool_borrows_the_shared_topology_instead_of_rebuilding_adjacency() {
    // The CSR substrate removed the per-run `Vec<Vec<NodeId>>` adjacency
    // re-materialisation: every backend borrows neighbour slices straight
    // out of one shared `Arc<Graph>`. Pointer equality proves it — the
    // topology each run reports *is* the caller's Arc, across repeated runs
    // and across backends, with no hidden copy in between.
    let graph = Arc::new(generators::random_connected(400, 200, 3).unwrap());
    let baseline = Arc::strong_count(&graph);
    let config = ExecConfig {
        workers: 8,
        ..Default::default()
    };
    let first = ExecutorKind::Pool
        .run(&graph, |id, _| FloodingSt::new(id, NodeId(0)), &config)
        .unwrap();
    let second = ExecutorKind::Pool
        .run(&graph, |id, _| FloodingSt::new(id, NodeId(0)), &config)
        .unwrap();
    assert!(
        Arc::ptr_eq(&first.topology, &graph) && Arc::ptr_eq(&second.topology, &graph),
        "every pool run must borrow the caller's Arc, not rebuild the topology"
    );
    assert!(Arc::ptr_eq(&first.topology, &second.topology));
    // Each finished run holds exactly one extra reference (its `topology`
    // field) — nothing else retained a clone, so no worker kept adjacency.
    assert_eq!(Arc::strong_count(&graph), baseline + 2);
    drop((first, second));
    assert_eq!(Arc::strong_count(&graph), baseline);
    // The other two backends satisfy the same contract.
    for kind in [ExecutorKind::Sim, ExecutorKind::Threaded] {
        let run = kind
            .run(
                &graph,
                |id, _| FloodingSt::new(id, NodeId(0)),
                &ExecConfig::default(),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&run.topology, &graph), "{kind}");
    }
}

#[test]
fn pool_runs_the_full_mdst_pipeline_beyond_the_threaded_scale() {
    // The full pipeline (construction + improvement) at a node count where
    // thread-per-node would already be painful: the pool executor drives the
    // improvement protocol to the same verdicts the simulator would reach.
    let graph = Arc::new(generators::star_with_leaf_edges(600).unwrap());
    let report = Pipeline::on(&graph)
        .executor(ExecutorKind::Pool)
        .workers(16)
        .run()
        .unwrap();
    assert_eq!(report.outcome, Outcome::Optimal);
    assert_eq!(report.initial_degree, 599);
    assert!(
        report.final_degree <= 3,
        "the improvement must dismantle the star, got {}",
        report.final_degree
    );
    assert!(report.tree().is_spanning_tree_of(&graph));
    assert!(within_paper_degree_bound(&graph, report.final_degree));
}

/// SplitMix64: a tiny deterministic generator so the million-node stream
/// needs no RNG dependency and both builder passes can regenerate the exact
/// same edges.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The million-node edge stream: a path through a label-scrambled node
/// permutation (so the spanning backbone contributes degree ≤ 2 everywhere —
/// a random-attachment tree's `Θ(log n)` hubs would bust the degree-bound
/// verdict at this scale) plus `extra` random chords. Self-loops are skipped;
/// the occasional duplicate chord is merged by `StreamingBuilder::finish`.
/// Regenerated from the seed for each pass, exactly like the two-pass file
/// ingestion the streaming builder exists for.
fn million_node_stream(n: usize, extra: usize, seed: u64, mut f: impl FnMut(usize, usize)) {
    // A fixed affine permutation scrambles the path labels: `stride` is odd,
    // hence coprime to any power-of-two-free n... gcd(stride, n) == 1 is all
    // that matters, and 1_000_003 is prime and no divisor of 10⁶.
    let stride: usize = 1_000_003;
    let label = |i: usize| (i.wrapping_mul(stride)) % n;
    for i in 1..n {
        f(label(i - 1), label(i));
    }
    let mut state = seed;
    let mut emitted = 0usize;
    while emitted < extra {
        let u = (splitmix64(&mut state) % n as u64) as usize;
        let v = (splitmix64(&mut state) % n as u64) as usize;
        if u != v {
            f(u, v);
            emitted += 1;
        }
    }
}

/// Memory-regression smoke for the compact CSR, CI-pinned at n = 10⁵ with
/// the million-node test's shape (m ≈ 3n): the footprint
/// `8·|V| + 16·|E| + 8` works out to ~56 bytes per node at average degree 6,
/// and this gate fails if a layout change pushes it past 60.
#[test]
fn compact_csr_stays_under_sixty_bytes_per_node_at_100k() {
    const N: usize = 100_000;
    const EXTRA: usize = 200_000;
    let mut b = StreamingBuilder::new(N).unwrap();
    million_node_stream(N, EXTRA, 0xfeed_f00d, |u, v| {
        b.count_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    });
    b.start_placement().unwrap();
    million_node_stream(N, EXTRA, 0xfeed_f00d, |u, v| {
        b.place_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    });
    let graph = b.finish().unwrap();
    let per_node = graph.memory_bytes() / graph.node_count();
    assert!(
        per_node <= 60,
        "compact CSR regressed to {per_node} bytes/node at n = 10⁵ \
         (m = {}); the diet holds the line at 60",
        graph.edge_count()
    );
}

/// Release-only gate for the million-node substrate: 10⁶ nodes and ~3×10⁶
/// edges ingested through the streaming two-pass builder, flooded to
/// quiescence on the pool, with the paper's degree-bound verdict checked on
/// the resulting spanning tree and the compact CSR held to half the seed
/// layout's footprint. Run it with
/// `cargo test --release -p mdst --test pool_scale`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: a million nodes want an optimised build"
)]
fn pool_completes_a_million_node_run_on_one_box() {
    use mdst::core::bounds::ceil_log2;
    const N: usize = 1_000_000;
    const EXTRA: usize = 2_000_000;
    const SEED: u64 = 0x5ca1_ab1e;
    // Two passes over the regenerated stream — the builder never sees the
    // edge set materialised in memory, only one edge at a time.
    let mut b = StreamingBuilder::new(N).unwrap();
    million_node_stream(N, EXTRA, SEED, |u, v| {
        b.count_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    });
    b.start_placement().unwrap();
    million_node_stream(N, EXTRA, SEED, |u, v| {
        b.place_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    });
    let graph = Arc::new(b.finish().unwrap());
    let m = graph.edge_count() as u64;
    assert!(
        (2_990_000..=3_000_000).contains(&m),
        "~3×10⁶ edges expected after duplicate merging, got {m}"
    );
    // Memory diet: the compact CSR must cost at most half of the seed layout
    // (usize-width offsets plus three 16-byte-per-edge arrays:
    // 8(n+1) + 48m bytes) at exactly the scale the diet was built for.
    let seed_layout_bytes = 8 * (N + 1) + 48 * m as usize;
    assert!(
        2 * graph.memory_bytes() <= seed_layout_bytes,
        "compact CSR ({} bytes) must undercut half the seed layout ({} bytes)",
        graph.memory_bytes(),
        seed_layout_bytes
    );
    // A bounded worker count keeps the per-worker metrics columns (two
    // `u64` columns of n entries each) from dominating the run's footprint.
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig {
            workers: 8,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(run.status, ExecStatus::Quiesced);
    // Message determinism holds at 10⁶: exactly 2m + (n − 1) messages under
    // any worker interleaving.
    assert_eq!(run.metrics.messages_total, 2 * m + (N as u64 - 1));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
    // Degree-bound verdict (see the 100k test): Δ* ≥ 2 on any n ≥ 3 graph,
    // so the paper's conservative `2Δ* + ⌈log₂ n⌉` bound is checkable. The
    // path backbone keeps the seeded graph's degrees Poisson-ish (≈ 2 + 4),
    // far under the bound, so the verdict is schedule-independent.
    let bound = 2 * 2 + ceil_log2(N);
    assert!(
        graph.max_degree() <= bound,
        "seed drifted: graph degree {} exceeds the verdict bound {bound}",
        graph.max_degree()
    );
    assert!(
        tree.max_degree() <= bound,
        "flooding tree degree {} violates the 2Δ*+⌈log n⌉ verdict ({bound})",
        tree.max_degree()
    );
}
