//! Scale test of the work-stealing pool: the acceptance bar for the executor
//! refactor is a 5,000-node run completing on at most 64 worker threads —
//! the regime the thread-per-node runtime structurally cannot reach (it
//! would need 5,000 OS threads).

use mdst::prelude::*;
use mdst::spanning::flooding::FloodingSt;
use std::sync::Arc;

#[test]
fn pool_completes_a_5000_node_run_with_at_most_64_workers() {
    let n = 5_000;
    let graph = Arc::new(generators::random_connected(n, n / 2, 7).unwrap());
    let m = graph.edge_count() as u64;
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig {
            workers: 64,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        run.workers <= 64,
        "the pool must multiplex {n} nodes over at most 64 workers, used {}",
        run.workers
    );
    assert_eq!(run.status, ExecStatus::Quiesced);
    // Flooding-based spanning-tree construction is message-deterministic:
    // exactly 2m + (n - 1) messages under any schedule, and the collected
    // parent pointers form a spanning tree rooted at the initiator.
    assert_eq!(run.metrics.messages_total, 2 * m + (n as u64 - 1));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
}

/// Release-only scale gate for the batched message fabric: a 100,000-node
/// run, twenty times past the original acceptance bar. Ignored in debug
/// builds (an unoptimised build takes the fun out of a scale test); run it
/// with `cargo test --release -p mdst --test pool_scale`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: 100k nodes want an optimised build"
)]
fn pool_completes_a_100_000_node_run_with_a_degree_bound_verdict() {
    use mdst::core::bounds::ceil_log2;
    let n = 100_000;
    let graph = Arc::new(generators::random_connected(n, n / 2, 7).unwrap());
    let m = graph.edge_count() as u64;
    let run = PoolRuntime::run(
        &graph,
        |id, _| FloodingSt::new(id, NodeId(0)),
        &PoolConfig::default(),
    )
    .unwrap();
    assert_eq!(run.status, ExecStatus::Quiesced);
    // Message determinism survives the scale jump: exactly 2m + (n − 1)
    // messages under any worker interleaving and any batch size.
    assert_eq!(run.metrics.messages_total, 2 * m + (n as u64 - 1));
    let tree = collect_tree(&run.nodes).unwrap();
    assert!(tree.is_spanning_tree_of(&graph));
    assert_eq!(tree.root(), NodeId(0));
    // Degree-bound verdict. The exact combinatorial `Δ*` lower bound is
    // quadratic in `n` — hopeless here — but every spanning tree on n ≥ 3
    // nodes has a vertex of degree ≥ 2, so `Δ* ≥ 2` and the paper's
    // conservative `2Δ* + ⌈log₂ n⌉` verdict is checkable at full scale.
    // The verdict is schedule-independent because a flooding tree's degrees
    // never exceed the (fixed, seeded) graph's degrees.
    let bound = 2 * 2 + ceil_log2(n);
    assert!(
        graph.max_degree() <= bound,
        "seed drifted: graph degree {} exceeds the verdict bound {bound}, \
         making the check schedule-dependent",
        graph.max_degree()
    );
    assert!(
        tree.max_degree() <= bound,
        "flooding tree degree {} violates the 2Δ*+⌈log n⌉ verdict ({bound})",
        tree.max_degree()
    );
}

#[test]
fn pool_borrows_the_shared_topology_instead_of_rebuilding_adjacency() {
    // The CSR substrate removed the per-run `Vec<Vec<NodeId>>` adjacency
    // re-materialisation: every backend borrows neighbour slices straight
    // out of one shared `Arc<Graph>`. Pointer equality proves it — the
    // topology each run reports *is* the caller's Arc, across repeated runs
    // and across backends, with no hidden copy in between.
    let graph = Arc::new(generators::random_connected(400, 200, 3).unwrap());
    let baseline = Arc::strong_count(&graph);
    let config = ExecConfig {
        workers: 8,
        ..Default::default()
    };
    let first = ExecutorKind::Pool
        .run(&graph, |id, _| FloodingSt::new(id, NodeId(0)), &config)
        .unwrap();
    let second = ExecutorKind::Pool
        .run(&graph, |id, _| FloodingSt::new(id, NodeId(0)), &config)
        .unwrap();
    assert!(
        Arc::ptr_eq(&first.topology, &graph) && Arc::ptr_eq(&second.topology, &graph),
        "every pool run must borrow the caller's Arc, not rebuild the topology"
    );
    assert!(Arc::ptr_eq(&first.topology, &second.topology));
    // Each finished run holds exactly one extra reference (its `topology`
    // field) — nothing else retained a clone, so no worker kept adjacency.
    assert_eq!(Arc::strong_count(&graph), baseline + 2);
    drop((first, second));
    assert_eq!(Arc::strong_count(&graph), baseline);
    // The other two backends satisfy the same contract.
    for kind in [ExecutorKind::Sim, ExecutorKind::Threaded] {
        let run = kind
            .run(
                &graph,
                |id, _| FloodingSt::new(id, NodeId(0)),
                &ExecConfig::default(),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&run.topology, &graph), "{kind}");
    }
}

#[test]
fn pool_runs_the_full_mdst_pipeline_beyond_the_threaded_scale() {
    // The full pipeline (construction + improvement) at a node count where
    // thread-per-node would already be painful: the pool executor drives the
    // improvement protocol to the same verdicts the simulator would reach.
    let graph = Arc::new(generators::star_with_leaf_edges(600).unwrap());
    let report = Pipeline::on(&graph)
        .executor(ExecutorKind::Pool)
        .workers(16)
        .run()
        .unwrap();
    assert_eq!(report.outcome, Outcome::Optimal);
    assert_eq!(report.initial_degree, 599);
    assert!(
        report.final_degree <= 3,
        "the improvement must dismantle the star, got {}",
        report.final_degree
    );
    assert!(report.tree().is_spanning_tree_of(&graph));
    assert!(within_paper_degree_bound(&graph, report.final_degree));
}
