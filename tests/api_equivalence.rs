//! API-equivalence property tests: the unified `Pipeline` session API and
//! the deprecated `run_pipeline` / `run_pipeline_with_faults` wrappers must
//! produce identical reports — degrees, trees, metrics, outcomes — across
//! every executor backend, seed, initial construction and benign fault
//! plan. This is the proof that lets the wrappers claim "bit-identical".
//!
//! A second family of cases pins the sim backend under *non-benign* plans:
//! the unified outcome classification must match the historical
//! fault-report grading exactly.

#![allow(deprecated)]

use mdst::prelude::*;
use proptest::prelude::*;

/// Strategy: a random connected graph plus the run knobs under test.
fn case() -> impl Strategy<Value = (Arc<Graph>, PipelineConfig)> {
    (
        4usize..24,
        0usize..30,
        any::<u64>(),
        0usize..3,     // executor
        0usize..3,     // initial construction
        any::<bool>(), // benign plan spelled explicitly vs omitted
    )
        .prop_map(|(n, extra, seed, exec, init, spelled_benign)| {
            let graph =
                Arc::new(generators::random_connected(n, extra, seed).expect("valid parameters"));
            let executor = ExecutorKind::all()[exec];
            let initial = match init {
                0 => InitialTreeKind::GreedyHub,
                1 => InitialTreeKind::Bfs,
                _ => InitialTreeKind::Random(seed ^ 0xABCD),
            };
            let faults = if spelled_benign {
                // A benign plan with a seed set is still benign: the loss
                // coin stream is never consulted.
                FaultPlan {
                    loss: 0.0,
                    seed: seed ^ 0x5EED,
                    ..Default::default()
                }
            } else {
                FaultPlan::none()
            };
            let config = PipelineConfig {
                initial,
                root: NodeId(0),
                sim: SimConfig {
                    faults,
                    ..Default::default()
                },
                executor,
                workers: 2,
                batch: 0,
            };
            (graph, config)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn builder_and_deprecated_wrappers_report_identically(
        (graph, config) in case()
    ) {
        let unified = Pipeline::on(&graph).config(config.clone()).run().unwrap();
        let strict = run_pipeline(&graph, &config).unwrap();
        let faulty = run_pipeline_with_faults(&graph, &config).unwrap();

        // Benign plans on a reliable network always end optimal.
        prop_assert_eq!(unified.outcome, Outcome::Optimal);

        // Strict wrapper: every field the old report carried.
        prop_assert_eq!(strict.n, unified.n);
        prop_assert_eq!(strict.m, unified.m);
        prop_assert_eq!(&strict.initial_tree, &unified.initial_tree);
        prop_assert_eq!(strict.initial_degree, unified.initial_degree);
        prop_assert_eq!(&strict.final_tree, unified.tree());
        prop_assert_eq!(strict.final_degree, unified.final_degree);
        prop_assert_eq!(&strict.construction_metrics, &unified.construction_metrics);
        // Message counts, per-node load and bit totals are deterministic on
        // every backend (the protocol is message-deterministic). The causal
        // and quiescence clocks additionally depend on thread scheduling on
        // the concurrent backends, so — like wall times everywhere else in
        // this suite — they only pin the simulator across separate runs.
        let mut strict_metrics = strict.improvement_metrics.clone();
        if config.executor != ExecutorKind::Sim {
            strict_metrics.causal_time = unified.improvement_metrics.causal_time;
            strict_metrics.quiescence_time = unified.improvement_metrics.quiescence_time;
        }
        prop_assert_eq!(&strict_metrics, &unified.improvement_metrics);
        prop_assert_eq!(strict.rounds, unified.rounds);
        prop_assert_eq!(strict.improvements, unified.improvements);
        prop_assert_eq!(strict.executor, unified.executor);
        prop_assert_eq!(strict.degree_drop(), unified.degree_drop());
        prop_assert_eq!(strict.paper_message_budget(), unified.paper_message_budget());
        prop_assert_eq!(strict.paper_time_budget(), unified.paper_time_budget());

        // Fault wrapper: grading and status line up with the unified outcome.
        prop_assert_eq!(faulty.status, RunStatus::Quiesced);
        prop_assert!(faulty.correct_tree);
        prop_assert_eq!(faulty.all_live_terminated, unified.all_live_terminated);
        prop_assert_eq!(&faulty.survivor, &unified.survivor);
        prop_assert_eq!(faulty.initial_degree, unified.initial_degree);
        let mut faulty_metrics = faulty.improvement_metrics.clone();
        if config.executor != ExecutorKind::Sim {
            faulty_metrics.causal_time = unified.improvement_metrics.causal_time;
            faulty_metrics.quiescence_time = unified.improvement_metrics.quiescence_time;
        }
        prop_assert_eq!(&faulty_metrics, &unified.improvement_metrics);
        prop_assert_eq!(faulty.rounds, unified.rounds);
        prop_assert_eq!(faulty.improvements, unified.improvements);
    }

    #[test]
    fn faulty_sim_runs_classify_identically_in_old_and_new_api(
        (n, extra, seed, loss_tenths, crash) in
            (5usize..20, 0usize..24, any::<u64>(), 1u32..8, any::<bool>())
    ) {
        let graph =
            Arc::new(generators::random_connected(n, extra, seed).expect("valid parameters"));
        let mut faults = FaultPlan {
            loss: f64::from(loss_tenths) / 10.0,
            seed: seed ^ 0xF00D,
            ..Default::default()
        };
        if crash {
            faults.crashes.push(CrashAt {
                node: NodeId::new((seed % n as u64) as usize),
                at: 3,
            });
        }
        let config = PipelineConfig {
            sim: SimConfig {
                faults,
                ..Default::default()
            },
            ..Default::default()
        };
        let unified = Pipeline::on(&graph).config(config.clone()).run().unwrap();
        let faulty = run_pipeline_with_faults(&graph, &config).unwrap();
        let expected_status = match unified.outcome {
            Outcome::EventLimitAborted => RunStatus::EventLimitExceeded,
            _ => RunStatus::Quiesced,
        };
        prop_assert_eq!(faulty.status, expected_status);
        prop_assert_eq!(faulty.correct_tree, unified.outcome.is_optimal());
        prop_assert_eq!(faulty.all_live_terminated, unified.all_live_terminated);
        prop_assert_eq!(&faulty.survivor, &unified.survivor);
        prop_assert_eq!(&faulty.improvement_metrics, &unified.improvement_metrics);
        prop_assert_eq!(faulty.rounds, unified.rounds);
        prop_assert_eq!(faulty.improvements, unified.improvements);
        prop_assert_eq!(faulty.survivor.max_degree, unified.final_degree);
    }
}

/// The historical `run_pipeline` implementation, transcribed verbatim as an
/// oracle: build, validate, run, strict quiesced/terminated checks, collect,
/// validate. The deprecated wrapper must agree with it run for run — crash
/// plans included, where a node that crashed *after* receiving `Stop` still
/// lets the historical path collect and return a tree.
fn historical_run_pipeline(
    graph: &Arc<Graph>,
    config: &PipelineConfig,
) -> Result<(RootedTree, Metrics, u32, u32), GraphError> {
    let (initial_tree, _construction) = build_initial_tree(graph, config.root, config.initial)?;
    initial_tree.validate_against(graph)?;
    let nodes = MdstNode::from_tree(&initial_tree);
    let run = config
        .executor
        .run(
            graph,
            |id, _| nodes[id.index()].clone(),
            &config.exec_config(),
        )
        .map_err(|e| GraphError::InvalidParameter(e.to_string()))?;
    if run.status != ExecStatus::Quiesced {
        return Err(GraphError::NotASpanningTree(format!(
            "protocol did not quiesce: event limit of {} exceeded",
            config.sim.max_events
        )));
    }
    if !run.all_terminated() {
        return Err(GraphError::NotASpanningTree(
            "a node never received Stop".to_string(),
        ));
    }
    let final_tree = collect_tree(&run.nodes)?;
    final_tree.validate_against(graph)?;
    let rounds = run.nodes.iter().map(|p| p.round()).max().unwrap_or(0);
    let improvements = run.nodes.iter().map(|p| p.improvements_made()).sum();
    Ok((final_tree, run.metrics, rounds, improvements))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn strict_wrapper_matches_the_historical_implementation_under_crash_plans(
        (n, extra, seed, crash_node, crash_at) in
            (5usize..18, 0usize..20, any::<u64>(), 0u64..18, 0u64..80)
    ) {
        let graph =
            Arc::new(generators::random_connected(n, extra, seed).expect("valid parameters"));
        let config = PipelineConfig {
            sim: SimConfig {
                faults: FaultPlan {
                    crashes: vec![CrashAt {
                        node: NodeId::new((crash_node % n as u64) as usize),
                        at: crash_at,
                    }],
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let oracle = historical_run_pipeline(&graph, &config);
        let wrapper = run_pipeline(&graph, &config);
        match (oracle, wrapper) {
            (Ok((tree, metrics, rounds, improvements)), Ok(report)) => {
                prop_assert_eq!(&tree, &report.final_tree);
                prop_assert_eq!(&metrics, &report.improvement_metrics);
                prop_assert_eq!(rounds, report.rounds);
                prop_assert_eq!(improvements, report.improvements);
            }
            (Err(old), Err(new)) => {
                // The one tolerated divergence: when faults leave a snapshot
                // the historical collect rejected, the wrapper reports the
                // same NotASpanningTree class with a generic message.
                let same_class = matches!(
                    (&old, &new),
                    (GraphError::NotASpanningTree(_), GraphError::NotASpanningTree(_))
                );
                prop_assert!(
                    same_class || old == new,
                    "error mismatch: old {old:?}, new {new:?}"
                );
            }
            (oracle, wrapper) => prop_assert!(
                false,
                "ok/err divergence: oracle {oracle:?}, wrapper {wrapper:?}"
            ),
        }
    }
}

/// Acceptance criterion of the redesign: an `Observer` registered through
/// the builder receives at least one on-round and exactly one on-finish
/// event on **every** executor backend.
#[test]
fn observers_fire_on_every_executor_backend() {
    let graph = Arc::new(generators::star_with_leaf_edges(16).unwrap());
    for kind in ExecutorKind::all() {
        let mut counts = CountingObserver::default();
        let report = Pipeline::on(&graph)
            .executor(kind)
            .observer(&mut counts)
            .run()
            .unwrap();
        assert_eq!(report.outcome, Outcome::Optimal, "{kind}");
        assert_eq!(counts.constructions, 1, "{kind}");
        assert!(counts.rounds >= 1, "{kind}: no on-round event");
        assert_eq!(counts.rounds as u32, report.rounds, "{kind}");
        assert_eq!(counts.exchanges as u32, report.improvements, "{kind}");
        assert_eq!(counts.finishes, 1, "{kind}: on-finish must fire once");
    }
}

/// A crash that fires *after* the node received `Stop` historically still
/// let `run_pipeline` collect and return the tree; the unified session and
/// the wrapper must preserve that (regression pin for the case the generic
/// proptest may or may not sample).
#[test]
fn post_termination_crashes_still_yield_the_collected_tree() {
    let graph = Arc::new(generators::random_connected(8, 4, 0).unwrap());
    let config = PipelineConfig {
        sim: SimConfig {
            faults: FaultPlan {
                crashes: vec![CrashAt {
                    node: NodeId(0),
                    at: 29,
                }],
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let unified = Pipeline::on(&graph).config(config.clone()).run().unwrap();
    assert_eq!(unified.improvement_metrics.crashed_nodes, 1);
    assert!(unified.all_terminated, "crash must land after Stop here");
    let tree = unified
        .final_tree
        .as_ref()
        .expect("a fully terminated snapshot collects even after a late crash");
    assert!(tree.is_spanning_tree_of(&graph));
    let (oracle_tree, ..) = historical_run_pipeline(&graph, &config).unwrap();
    assert_eq!(&oracle_tree, tree);
    let wrapper = run_pipeline(&graph, &config).unwrap();
    assert_eq!(&wrapper.final_tree, tree);
}

/// The strict wrappers keep their historical error strings, so callers that
/// matched on messages keep working.
#[test]
fn deprecated_wrappers_keep_historical_error_behaviour() {
    let graph = Arc::new(generators::complete(10).unwrap());
    let config = PipelineConfig {
        sim: SimConfig {
            max_events: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = run_pipeline(&graph, &config).unwrap_err();
    assert_eq!(
        err.to_string(),
        "not a spanning tree: protocol did not quiesce: event limit of 2 exceeded"
    );
    // The fault wrapper reports the same run as an outcome, not an error.
    let report = run_pipeline_with_faults(&graph, &config).unwrap();
    assert_eq!(report.status, RunStatus::EventLimitExceeded);
}
