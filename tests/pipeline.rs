//! End-to-end pipeline tests across topology families and configurations.

use mdst::prelude::*;
use std::sync::Arc;

fn families(seed: u64) -> Vec<(&'static str, Arc<Graph>)> {
    vec![
        ("complete", Arc::new(generators::complete(12).unwrap())),
        (
            "star_with_leaf_edges",
            Arc::new(generators::star_with_leaf_edges(14).unwrap()),
        ),
        ("wheel", Arc::new(generators::wheel(12).unwrap())),
        ("grid", Arc::new(generators::grid(4, 5).unwrap())),
        ("hypercube", Arc::new(generators::hypercube(4).unwrap())),
        ("petersen", Arc::new(generators::petersen().unwrap())),
        (
            "complete_bipartite",
            Arc::new(generators::complete_bipartite(3, 9).unwrap()),
        ),
        ("lollipop", Arc::new(generators::lollipop(6, 6).unwrap())),
        ("barbell", Arc::new(generators::barbell(5, 3).unwrap())),
        (
            "caterpillar",
            Arc::new(generators::caterpillar(5, 2).unwrap()),
        ),
        ("broom", Arc::new(generators::high_optimum(4, 3).unwrap())),
        (
            "gnp",
            Arc::new(generators::gnp_connected(30, 0.15, seed).unwrap()),
        ),
        (
            "geometric",
            Arc::new(generators::random_geometric_connected(25, 0.3, seed).unwrap()),
        ),
    ]
}

#[test]
fn every_family_yields_a_certified_locally_optimal_tree() {
    for (name, graph) in families(3) {
        let report = Pipeline::on(&graph)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.outcome, Outcome::Optimal, "{name}");
        assert!(report.tree().is_spanning_tree_of(&graph), "{name}");
        assert!(report.final_degree <= report.initial_degree, "{name}");
        assert!(report.final_degree >= degree_lower_bound(&graph), "{name}");
        assert!(
            verify_termination_certificate(&graph, report.tree()),
            "{name}: final tree must be blocked at its max-degree node"
        );
    }
}

#[test]
fn all_initial_constructions_agree_on_reachability_of_low_degree() {
    // Regardless of how bad the initial tree is, the improvement must land at
    // a degree no worse than what the paper-rule sequential mirror reaches
    // from the same start.
    let graph = Arc::new(generators::gnp_connected(28, 0.2, 9).unwrap());
    for kind in InitialTreeKind::all(5) {
        let report = Pipeline::on(&graph)
            .initial(kind)
            .root(NodeId(0))
            .run()
            .unwrap();
        let mirror = paper_local_search(&graph, &report.initial_tree).unwrap();
        assert_eq!(
            report.final_degree,
            mirror.tree.max_degree(),
            "{}: distributed and sequential mirror disagree",
            kind.label()
        );
    }
}

#[test]
fn pipeline_works_under_every_delay_and_start_model() {
    let graph = Arc::new(generators::gnp_connected(24, 0.18, 4).unwrap());
    let delays = [
        DelayModel::Unit,
        DelayModel::UniformRandom {
            min: 1,
            max: 11,
            seed: 2,
        },
        DelayModel::PerLinkFixed {
            min: 1,
            max: 29,
            seed: 7,
        },
    ];
    let starts = [
        StartModel::Simultaneous,
        StartModel::Staggered {
            max_offset: 40,
            seed: 13,
        },
    ];
    let mut final_degrees = std::collections::BTreeSet::new();
    for delay in &delays {
        for start in &starts {
            let report = Pipeline::on(&graph)
                .initial(InitialTreeKind::GreedyHub)
                .root(NodeId(0))
                .sim(SimConfig {
                    delay: delay.clone(),
                    start: start.clone(),
                    ..Default::default()
                })
                .run()
                .unwrap();
            assert!(report.tree().is_spanning_tree_of(&graph));
            final_degrees.insert(report.final_degree);
        }
    }
    assert_eq!(
        final_degrees.len(),
        1,
        "the protocol's outcome is schedule independent"
    );
}

#[test]
fn message_kinds_match_the_papers_inventory() {
    let graph = Arc::new(generators::star_with_leaf_edges(16).unwrap());
    let report = Pipeline::on(&graph).run().unwrap();
    let metrics = &report.improvement_metrics;
    // Every round performs SearchDegree, MoveRoot (possibly zero hops), Cut,
    // BFS, BFSBack, Update/Child and the run ends with Stop.
    for kind in [
        "SearchInit",
        "DegreeReport",
        "Cut",
        "BFS",
        "BFSBack",
        "Update",
        "Child",
        "ChildAck",
        "UpdateDone",
        "Stop",
    ] {
        assert!(metrics.count_of(kind) > 0, "missing message kind {kind}");
    }
    // Exactly one Stop per non-root node.
    assert_eq!(metrics.count_of("Stop"), graph.node_count() as u64 - 1);
    // One Child and one ChildAck per exchange.
    assert_eq!(metrics.count_of("Child"), report.improvements as u64);
    assert_eq!(metrics.count_of("ChildAck"), report.improvements as u64);
}

#[test]
fn large_sparse_network_completes_with_reasonable_cost() {
    let graph = Arc::new(generators::gnp_connected(150, 0.03, 17).unwrap());
    let report = Pipeline::on(&graph).run().unwrap();
    assert!(report.tree().is_spanning_tree_of(&graph));
    // Per-round cost is linear in m + n (§4.2); the serialised implementation
    // runs one round per exchange, so the total budget is rounds · O(m + n)
    // and, because every exchange lowers some node's degree, the number of
    // rounds is at most n — which recovers the paper's O(n·m) worst case.
    assert!(report.rounds as usize <= report.n);
    let per_round_budget = 4 * (report.m as u64 + report.n as u64);
    assert!(
        report.improvement_metrics.messages_total <= report.rounds as u64 * per_round_budget,
        "messages {} exceed {} rounds x {}",
        report.improvement_metrics.messages_total,
        report.rounds,
        per_round_budget
    );
}
