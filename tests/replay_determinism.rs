//! Determinism guarantees: identical inputs produce bit-identical results.
//!
//! * Two `Pipeline` sessions with the same graph, config and seeds yield
//!   bit-identical `RunReport`s — compared on the serialized report with
//!   only the wall-clock field excluded, since elapsed time is the one
//!   quantity a deterministic schedule cannot pin.
//! * A model-checking run is deterministic end to end: same sweep, same
//!   stats, same outcomes, and a recorded counterexample replays through
//!   JSON to the same violation.

use mdst::prelude::*;
use serde::{Serialize, Value};

/// Serializes a report and strips every `wall_ms` field (recursively) —
/// wall-clock time is measurement noise, everything else must be identical.
fn canonical(report: &RunReport) -> Value {
    fn strip(value: Value) -> Value {
        match value {
            Value::Object(fields) => Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "wall_ms")
                    .map(|(k, v)| (k, strip(v)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.into_iter().map(strip).collect()),
            other => other,
        }
    }
    strip(report.to_value())
}

fn run_once(graph: &Arc<Graph>, seed: u64) -> RunReport {
    Pipeline::on(graph)
        .initial(InitialTreeKind::Random(seed))
        .sim(SimConfig {
            delay: DelayModel::UniformRandom {
                min: 1,
                max: 7,
                seed,
            },
            ..SimConfig::default()
        })
        .run()
        .unwrap()
}

#[test]
fn identical_seeds_give_bit_identical_reports() {
    let graph = Arc::new(generators::gnp_connected(16, 0.25, 11).unwrap());
    for seed in [3u64, 77, 2024] {
        let a = run_once(&graph, seed);
        let b = run_once(&graph, seed);
        assert_eq!(
            canonical(&a),
            canonical(&b),
            "seed {seed}: two identical sessions disagreed"
        );
        assert_eq!(canonical(&a).to_json(), canonical(&b).to_json());
    }
}

#[test]
fn different_delay_seeds_may_reorder_but_reports_stay_comparable() {
    // Not a determinism claim — a guard that `canonical` actually compares
    // substance: the stripped reports still contain the outcome and degrees.
    let graph = Arc::new(generators::wheel(10).unwrap());
    let report = run_once(&graph, 5);
    let json = canonical(&report).to_json();
    assert!(json.contains("\"outcome\""));
    assert!(json.contains("\"final_degree\""));
    assert!(!json.contains("wall_ms"));
}

#[test]
fn model_checking_runs_are_deterministic() {
    let report_a = sweep_connected(2, 4, &CheckConfig::default());
    let report_b = sweep_connected(2, 4, &CheckConfig::default());
    assert_eq!(report_a.to_json(), report_b.to_json());
    assert_eq!(report_a.total_states, report_b.total_states);
}

#[test]
fn a_counterexample_round_trips_and_replays_to_the_same_violation() {
    // The stock invariants hold, so manufacture a counterexample through a
    // strict suite: any state with a message in flight is "violating".
    struct NoTraffic;
    impl InvariantSuite for NoTraffic {
        fn check_state(&self, _g: &Graph, net: &ControlledNet<MdstNode>) -> Option<Violation> {
            (net.in_flight() > 0).then(|| {
                Violation::new("bogus-no-traffic", format!("{} in flight", net.in_flight()))
            })
        }
        fn check_quiescent(
            &self,
            _g: &Graph,
            _net: &ControlledNet<MdstNode>,
            _faulty: bool,
        ) -> Option<Violation> {
            None
        }
    }

    let graph = Arc::new(generators::cycle(4).unwrap());
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let report = check_with_suite(&graph, &initial, &CheckConfig::default(), &NoTraffic);
    let cex = report
        .violation
        .expect("the root starts traffic immediately");
    assert_eq!(cex.violation.rule, "bogus-no-traffic");
    // Empty schedule: the violation already holds in the initial state, and
    // minimization proves no event was needed.
    assert!(cex.schedule.is_empty());

    let json = cex.to_json();
    let parsed = Counterexample::from_json(&json).unwrap();
    assert_eq!(parsed, cex);
    assert_eq!(parsed.to_json(), json, "serialization is a fixpoint");
    assert_eq!(parsed.replay(&NoTraffic).unwrap().rule, "bogus-no-traffic");
}
