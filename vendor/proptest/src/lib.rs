//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by the property tests: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` inner attribute), the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies, [`any`] for
//! primitive types, and the `prop_assert*` macros. Cases are sampled from a
//! generator seeded deterministically per test name and case index, so
//! failures are reproducible; there is no shrinking (a failing case panics
//! with its inputs via the standard assertion message).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-case generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator derived from the test name and case index (FNV-1a mix), so
    /// every test gets an independent, reproducible stream.
    pub fn deterministic(case: u64, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a full-range "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty => $e:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                let f: fn(&mut TestRng) -> $t = $e;
                f(rng)
            }
        }
    )*};
}
impl_arbitrary! {
    u64 => |rng| rng.gen::<u64>(),
    u32 => |rng| rng.gen::<u32>(),
    usize => |rng| rng.gen::<usize>(),
    bool => |rng| rng.gen::<bool>(),
    f64 => |rng| rng.gen::<f64>()
}

/// Strategy over the whole domain of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for the configured number
/// of cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(case as u64, stringify!($name));
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn mapped_strategies_apply_the_function(
            (a, b) in (1usize..4, 1usize..4).prop_map(|(a, b)| (a * 10, b))
        ) {
            prop_assert!(a % 10 == 0);
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn any_produces_values(s in any::<u64>(), _flag in any::<bool>()) {
            let _ = s;
        }
    }
}
