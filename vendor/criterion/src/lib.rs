//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API surface the `mdst-bench` benches use
//! (`benchmark_group`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) with a simple
//! mean-of-N-samples timer instead of the real statistical machinery. Good
//! enough to smoke-run `cargo bench` offline and print comparable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: 10,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            eprintln!("  {label}: no iterations");
        } else {
            let mean = self.total / self.iters as u32;
            eprintln!("  {label}: mean {mean:?} over {} iters", self.iters);
        }
    }
}

/// Declares a group-runner function calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("count", 1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
