//! Offline stand-in for `serde`.
//!
//! The real `serde` crate is not available in this build environment (no
//! registry access), so this crate implements the slice of its API the
//! workspace actually uses, built around a concrete [`Value`] tree instead of
//! the visitor-based data model:
//!
//! * [`Serialize`] — converts a value into a [`Value`];
//! * [`Deserialize`] — reconstructs a value from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the in-tree
//!   `serde_derive` proc-macro crate, re-exported here exactly like the real
//!   crate does with its `derive` feature;
//! * [`Value::to_json`] / [`Value::to_json_pretty`] / [`from_json_str`] — a
//!   complete JSON writer and parser, which is what the scenario harness and
//!   report sinks are built on.
//!
//! Enums use the externally tagged representation (`"Variant"` for unit
//! variants, `{"Variant": ...}` for data-carrying ones), matching serde's
//! default so persisted artefacts look the way readers expect.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically typed serialized value (the JSON data model plus a signed /
/// unsigned integer split, mirroring `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used for values above `i64::MAX`).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map with insertion order preserved.
    Object(Vec<(String, Value)>),
}

/// Error produced by deserialization or JSON parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Value {
    /// The entries of an object, if this value is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The items of an array, if this value is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, coercing from `Int` when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, coercing from `UInt` when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as a float, coercing from either integer representation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        out
    }

    /// Pretty-printed JSON rendering (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some(2), 0);
        out
    }
}

/// Deserializes a `T` from the entries of an object; a missing key is treated
/// as `Null` so optional fields can be omitted from hand-written inputs.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

/// Splits an externally tagged enum value `{"Variant": inner}` into
/// `(tag, inner)`; returns `None` unless the value is a single-entry object.
pub fn enum_tag(v: &Value) -> Option<(&str, &Value)> {
    match v.as_object() {
        Some([(k, inner)]) => Some((k.as_str(), inner)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(
                    concat!("expected unsigned integer (", stringify!($t), ")"),
                ))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(
                    concat!("expected integer (", stringify!($t), ")"),
                ))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(Vec::new()),
            _ => v
                .as_array()
                .ok_or_else(|| Error::custom("expected array"))?
                .iter()
                .map(T::from_value)
                .collect(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(BTreeMap::new()),
            _ => v
                .as_object()
                .ok_or_else(|| Error::custom("expected object"))?
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(HashMap::new()),
            _ => v
                .as_object()
                .ok_or_else(|| Error::custom("expected object"))?
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn write_json(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity.
                out.push_str("null");
            } else if *f == f.trunc() && f.abs() < 1e15 {
                // Keep a decimal point so the value reads back as a float,
                // and typed consumers see a stable column type.
                out.push_str(&format!("{f:.1}"));
            } else {
                // `{}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f}"));
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`].
pub fn from_json_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error::custom("unexpected end of input"));
    };
    match c {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in array")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom("expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in object")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(Error::custom(format!(
            "unexpected character `{}` at byte {}",
            other as char, *pos
        ))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error::custom("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(Error::custom("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::custom("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error::custom("unknown escape")),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: find the full character from the source.
                let start = *pos - 1;
                let s =
                    std::str::from_utf8(&b[start..]).map_err(|_| Error::custom("invalid UTF-8"))?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos = start + ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII digits");
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a \"b\"\n".to_string())),
            ("n".to_string(), Value::UInt(42)),
            ("neg".to_string(), Value::Int(-7)),
            ("p".to_string(), Value::Float(0.15)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let json = v.to_json();
        let back = from_json_str(&json).unwrap();
        assert_eq!(back.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("neg").unwrap().as_i64(), Some(-7));
        assert_eq!(back.get("p").unwrap().as_f64(), Some(0.15));
        assert_eq!(back.get("name").unwrap().as_str(), Some("a \"b\"\n"));
        let pretty = v.to_json_pretty();
        assert_eq!(from_json_str(&pretty).unwrap(), back);
    }

    #[test]
    fn integral_floats_keep_their_decimal_point() {
        // Float-typed fields must not flip to integers on the wire.
        assert_eq!(Value::Float(3.0).to_json(), "3.0");
        assert_eq!(Value::Float(-2.0).to_json(), "-2.0");
        assert_eq!(Value::Float(0.15).to_json(), "0.15");
        assert_eq!(
            from_json_str(&Value::Float(3.0).to_json()).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json_str("{").is_err());
        assert!(from_json_str("[1,]").is_err());
        assert!(from_json_str("nul").is_err());
        assert!(from_json_str("1 2").is_err());
        assert!(from_json_str("\"abc").is_err());
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert("BFS".to_string(), 10u64);
        m.insert("Stop".to_string(), 3u64);
        let back = BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
