//! Offline stand-in for `flate2`.
//!
//! Implements the subset of the `flate2` API the workspace uses to ingest
//! gzipped benchmark graphs (`.mtx.gz`, `.graph.gz`, `.el.gz`):
//!
//! * [`read::GzDecoder`] — a complete RFC 1952 gzip reader over a full
//!   RFC 1951 DEFLATE inflater (stored, fixed-Huffman and dynamic-Huffman
//!   blocks), with CRC32 and size verification of the trailer. Files
//!   produced by the real `gzip`/`zlib` toolchain decode byte-exactly.
//!   The decoder is **incremental**: it pulls compressed bytes through a
//!   fixed 8 KiB input buffer and keeps only the 32 KiB DEFLATE back-
//!   reference window plus a bounded pending-output buffer, so decoding an
//!   arbitrarily large stream is O(chunk) memory — never the whole inflated
//!   payload. [`read::GzDecoder::buffer_high_water`] exposes the observed
//!   peak buffering so ingestion tests can pin the bound.
//! * [`write::GzEncoder`] — a gzip *writer* that emits stored (uncompressed)
//!   DEFLATE blocks only. Compression ratio 1, but the output is a fully
//!   valid gzip member that any inflater (including this one) accepts, which
//!   is all the round-trip tests need.
//! * [`Compression`] — accepted for API compatibility; the encoder always
//!   stores, so the level is ignored.
//!
//! Like every `vendor/` shim, swapping back to the real crate is a
//! Cargo.toml-only change: the types, module paths and method signatures
//! match the crates.io `flate2` surface (`buffer_high_water` is a shim-only
//! observability extension used by the ingestion regression tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;

/// Compression level (accepted for API compatibility; the store-only encoder
/// ignores it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compression(u32);

impl Compression {
    /// Construct a specific level (0–9 in the real crate).
    pub fn new(level: u32) -> Compression {
        Compression(level)
    }
    /// No compression.
    pub fn none() -> Compression {
        Compression(0)
    }
    /// Optimise for speed.
    pub fn fast() -> Compression {
        Compression(1)
    }
    /// Optimise for size.
    pub fn best() -> Compression {
        Compression(9)
    }
    /// The configured level.
    pub fn level(&self) -> u32 {
        self.0
    }
}

impl Default for Compression {
    fn default() -> Compression {
        Compression(6)
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("gzip: {msg}"))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, the gzip checksum)
// ---------------------------------------------------------------------------

/// Precomputed CRC32 (IEEE) lookup table supporting incremental updates.
struct Crc32Table([u32; 256]);

impl Crc32Table {
    fn new() -> Crc32Table {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        Crc32Table(table)
    }

    /// Advances the running (pre-inverted) CRC state by one byte. Start from
    /// `0xFFFF_FFFF`, finish with `state ^ 0xFFFF_FFFF`.
    #[inline]
    fn step(&self, state: u32, byte: u8) -> u32 {
        self.0[((state ^ byte as u32) & 0xFF) as usize] ^ (state >> 8)
    }
}

fn crc32(data: &[u8]) -> u32 {
    let table = Crc32Table::new();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table.step(crc, b);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Streaming input: LSB-first bit reader over a fixed-size refill buffer
// ---------------------------------------------------------------------------

/// Compressed bytes held in memory at once.
const IN_CHUNK: usize = 8 * 1024;

/// LSB-first bit reader pulling from an inner reader through a fixed-size
/// buffer — the input half of the O(chunk) memory guarantee.
struct ByteSource<R> {
    inner: R,
    buf: Box<[u8]>,
    start: usize,
    end: usize,
    /// Bit position inside `buf[start]` (0 = least significant).
    bit: u32,
}

impl<R: io::Read> ByteSource<R> {
    fn new(inner: R) -> ByteSource<R> {
        ByteSource {
            inner,
            buf: vec![0u8; IN_CHUNK].into_boxed_slice(),
            start: 0,
            end: 0,
            bit: 0,
        }
    }

    /// Unconsumed compressed bytes currently buffered.
    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Ensures at least one unread byte is buffered; `false` at clean EOF.
    fn ensure_byte(&mut self) -> io::Result<bool> {
        if self.start == self.end {
            self.start = 0;
            self.end = self.inner.read(&mut self.buf)?;
            if self.end == 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn take_bit(&mut self) -> io::Result<u32> {
        if !self.ensure_byte()? {
            return Err(corrupt("unexpected end of deflate stream"));
        }
        let byte = self.buf[self.start];
        let bit = (byte >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.start += 1;
        }
        Ok(bit as u32)
    }

    fn take_bits(&mut self, count: u32) -> io::Result<u32> {
        let mut out = 0u32;
        for i in 0..count {
            out |= self.take_bit()? << i;
        }
        Ok(out)
    }

    /// Discards the remainder of the current byte (stored-block alignment).
    fn align_to_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.start += 1;
        }
    }

    fn take_byte(&mut self) -> io::Result<u8> {
        debug_assert_eq!(self.bit, 0, "byte reads only after alignment");
        if !self.ensure_byte()? {
            return Err(corrupt("unexpected end of deflate stream"));
        }
        let byte = self.buf[self.start];
        self.start += 1;
        Ok(byte)
    }

    /// Whether the (byte-aligned) stream is at EOF.
    fn at_eof(&mut self) -> io::Result<bool> {
        debug_assert_eq!(self.bit, 0, "EOF checks only after alignment");
        Ok(!self.ensure_byte()?)
    }
}

// ---------------------------------------------------------------------------
// Streaming output: 32 KiB back-reference window + bounded pending bytes
// ---------------------------------------------------------------------------

/// DEFLATE's maximum back-reference distance.
const WINDOW: usize = 32 * 1024;

/// Decoded bytes awaiting the caller, plus the ring of the last [`WINDOW`]
/// bytes that back-references may copy from — the output half of the
/// O(chunk) memory guarantee.
struct OutWindow {
    window: Box<[u8]>,
    /// Next write slot in the ring.
    pos: usize,
    /// Valid history length, saturating at [`WINDOW`].
    filled: usize,
    pending: Vec<u8>,
    pending_off: usize,
}

impl OutWindow {
    fn new() -> OutWindow {
        OutWindow {
            window: vec![0u8; WINDOW].into_boxed_slice(),
            pos: 0,
            filled: 0,
            pending: Vec::new(),
            pending_off: 0,
        }
    }

    #[inline]
    fn emit(&mut self, byte: u8) {
        self.window[self.pos] = byte;
        self.pos = (self.pos + 1) % WINDOW;
        if self.filled < WINDOW {
            self.filled += 1;
        }
        self.pending.push(byte);
    }

    /// Copies `length` bytes from `distance` back in the history, byte by
    /// byte so overlapping matches (distance < length) repeat the
    /// just-written bytes, exactly as DEFLATE requires.
    fn copy_back(&mut self, distance: usize, length: usize) -> io::Result<()> {
        if distance == 0 || distance > self.filled {
            return Err(corrupt("distance beyond output start"));
        }
        let mut from = (self.pos + WINDOW - distance) % WINDOW;
        for _ in 0..length {
            let byte = self.window[from];
            from = (from + 1) % WINDOW;
            self.emit(byte);
        }
        Ok(())
    }

    fn pending_len(&self) -> usize {
        self.pending.len() - self.pending_off
    }

    /// Moves pending bytes into `buf`, releasing the backing storage once
    /// fully drained.
    fn drain(&mut self, buf: &mut [u8]) -> usize {
        let avail = &self.pending[self.pending_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.pending_off += n;
        if self.pending_off == self.pending.len() {
            self.pending.clear();
            self.pending_off = 0;
        }
        n
    }
}

// ---------------------------------------------------------------------------
// DEFLATE inflate (RFC 1951), resumable between symbols
// ---------------------------------------------------------------------------

/// Canonical Huffman decoding table: symbol counts per code length plus the
/// symbols sorted by (length, symbol) — the classic zlib `puff` layout.
struct Huffman {
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    fn build(lengths: &[u8]) -> io::Result<Huffman> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            if len > 15 {
                return Err(corrupt("code length exceeds 15"));
            }
            counts[len as usize] += 1;
        }
        counts[0] = 0;
        // Over-subscribed code sets are invalid (incomplete sets appear in
        // legal streams with a single distance code, so they are allowed).
        let mut left = 1i32;
        for &count in counts.iter().skip(1) {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(corrupt("over-subscribed Huffman code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode<R: io::Read>(&self, bits: &mut ByteSource<R>) -> io::Result<u16> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= bits.take_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(corrupt("invalid Huffman code"))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which the code-length-code lengths are stored in a dynamic block.
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    lengths[144..256].iter_mut().for_each(|l| *l = 9);
    lengths[256..280].iter_mut().for_each(|l| *l = 7);
    lengths
}

/// Parses the code-length preamble of a dynamic block and builds the
/// literal/length and distance tables.
fn read_dynamic_tables<R: io::Read>(src: &mut ByteSource<R>) -> io::Result<(Huffman, Huffman)> {
    let hlit = src.take_bits(5)? as usize + 257;
    let hdist = src.take_bits(5)? as usize + 1;
    let hclen = src.take_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(corrupt("dynamic block declares too many codes"));
    }
    let mut clc_lengths = [0u8; 19];
    for &slot in CLC_ORDER.iter().take(hclen) {
        clc_lengths[slot] = src.take_bits(3)? as u8;
    }
    let clc = Huffman::build(&clc_lengths)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let symbol = clc.decode(src)?;
        match symbol {
            0..=15 => {
                lengths[i] = symbol as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(corrupt("repeat with no previous length"));
                }
                let prev = lengths[i - 1];
                let repeat = 3 + src.take_bits(2)? as usize;
                for _ in 0..repeat {
                    if i >= lengths.len() {
                        return Err(corrupt("length repeat overflows table"));
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 | 18 => {
                let repeat = if symbol == 17 {
                    3 + src.take_bits(3)? as usize
                } else {
                    11 + src.take_bits(7)? as usize
                };
                for _ in 0..repeat {
                    if i >= lengths.len() {
                        return Err(corrupt("zero repeat overflows table"));
                    }
                    lengths[i] = 0;
                    i += 1;
                }
            }
            _ => return Err(corrupt("invalid code-length symbol")),
        }
    }
    if lengths[256] == 0 {
        return Err(corrupt("dynamic block has no end-of-block code"));
    }
    Ok((
        Huffman::build(&lengths[..hlit])?,
        Huffman::build(&lengths[hlit..])?,
    ))
}

// ---------------------------------------------------------------------------
// gzip container (RFC 1952)
// ---------------------------------------------------------------------------

const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Reader types.
pub mod read {
    use super::*;
    use std::io::Read;

    /// Where the decoder stands inside the gzip member / DEFLATE block
    /// structure. Decoding suspends only *between* DEFLATE symbols, so every
    /// state carries at most the current block's Huffman tables.
    enum Stage {
        /// Before a member header: expects magic bytes, or EOF if at least
        /// one member was decoded.
        Header,
        /// Before a DEFLATE block header (`bfinal`/`btype`).
        BlockHeader,
        /// Inside a stored block with `remaining` bytes to copy.
        Stored { remaining: u16 },
        /// Inside a fixed- or dynamic-Huffman block.
        Codes {
            literals: Huffman,
            distances: Huffman,
        },
        /// Before the CRC32/ISIZE member trailer.
        Trailer,
        /// All members decoded, clean EOF seen.
        Done,
        /// A previous read returned an error; the stream is unusable.
        Failed,
    }

    /// A gzip decoder wrapping an underlying reader, mirroring
    /// `flate2::read::GzDecoder` — except that, like the real crate's
    /// `MultiGzDecoder`, it also decodes concatenated multi-member files
    /// (silently truncating them at member one would corrupt headerless
    /// formats like edge lists).
    ///
    /// Decoding is incremental: compressed input is pulled through a fixed
    /// 8 KiB buffer and decoded on demand, retaining only the 32 KiB
    /// back-reference window plus a bounded pending-output buffer. Peak
    /// buffering is therefore independent of the stream size — the property
    /// [`GzDecoder::buffer_high_water`] lets tests assert.
    pub struct GzDecoder<R> {
        src: ByteSource<R>,
        out: OutWindow,
        table: Crc32Table,
        /// Running pre-inverted CRC of the current member's payload.
        crc: u32,
        /// Payload bytes decoded in the current member (ISIZE is mod 2³²).
        member_len: u64,
        stage: Stage,
        /// Whether the current block is the member's last.
        bfinal: bool,
        /// Whether at least one member decoded fully (EOF is then clean).
        member_done: bool,
        high_water: usize,
    }

    impl<R: Read> GzDecoder<R> {
        /// Wraps `inner`, which must yield a gzip member.
        pub fn new(inner: R) -> GzDecoder<R> {
            GzDecoder {
                src: ByteSource::new(inner),
                out: OutWindow::new(),
                table: Crc32Table::new(),
                crc: 0xFFFF_FFFF,
                member_len: 0,
                stage: Stage::Header,
                bfinal: false,
                member_done: false,
                high_water: 0,
            }
        }

        /// Consumes the decoder, returning the underlying reader.
        pub fn into_inner(self) -> R {
            self.src.inner
        }

        /// Peak bytes the decoder ever buffered at once (compressed input
        /// chunk + back-reference window + pending output). Stays O(chunk)
        /// regardless of how large the inflated stream is; ingestion
        /// regression tests pin this. Shim-only extension.
        pub fn buffer_high_water(&self) -> usize {
            self.high_water
        }

        #[inline]
        fn emit_byte(&mut self, byte: u8) {
            self.crc = self.table.step(self.crc, byte);
            self.member_len += 1;
            self.out.emit(byte);
        }

        fn emit_copy(&mut self, distance: usize, length: usize) -> io::Result<()> {
            let before = self.out.pending.len();
            self.out.copy_back(distance, length)?;
            for i in before..self.out.pending.len() {
                self.crc = self.table.step(self.crc, self.out.pending[i]);
            }
            self.member_len += length as u64;
            Ok(())
        }

        /// Finishes the current DEFLATE block: on the final block, moves to
        /// the member trailer, otherwise to the next block header.
        fn end_block(&mut self) {
            if self.bfinal {
                self.src.align_to_byte();
                self.stage = Stage::Trailer;
            } else {
                self.stage = Stage::BlockHeader;
            }
        }

        fn read_header(&mut self) -> io::Result<()> {
            if self.src.at_eof()? {
                if self.member_done {
                    self.stage = Stage::Done;
                } else {
                    return Err(corrupt("input shorter than the smallest gzip member"));
                }
                return Ok(());
            }
            let magic = [self.src.take_byte()?, self.src.take_byte()?];
            if magic != [0x1f, 0x8b] {
                return Err(if self.member_done {
                    corrupt("trailing garbage after the last gzip member")
                } else {
                    corrupt("bad magic number (not a gzip file)")
                });
            }
            if self.src.take_byte()? != 8 {
                return Err(corrupt("unsupported compression method (only deflate)"));
            }
            let flags = self.src.take_byte()?;
            // mtime (4), xfl, os: all ignored.
            for _ in 0..6 {
                self.src.take_byte()?;
            }
            if flags & FEXTRA != 0 {
                let xlen = self.src.take_byte()? as usize | ((self.src.take_byte()? as usize) << 8);
                for _ in 0..xlen {
                    self.src.take_byte()?;
                }
            }
            for flag in [FNAME, FCOMMENT] {
                if flags & flag != 0 {
                    while self.src.take_byte()? != 0 {}
                }
            }
            if flags & FHCRC != 0 {
                self.src.take_byte()?;
                self.src.take_byte()?;
            }
            self.crc = 0xFFFF_FFFF;
            self.member_len = 0;
            self.bfinal = false;
            self.stage = Stage::BlockHeader;
            Ok(())
        }

        fn read_block_header(&mut self) -> io::Result<()> {
            self.bfinal = self.src.take_bit()? == 1;
            match self.src.take_bits(2)? {
                0 => {
                    self.src.align_to_byte();
                    let len = self.src.take_byte()? as u16 | ((self.src.take_byte()? as u16) << 8);
                    let nlen = self.src.take_byte()? as u16 | ((self.src.take_byte()? as u16) << 8);
                    if len != !nlen {
                        return Err(corrupt("stored block LEN/NLEN mismatch"));
                    }
                    self.stage = Stage::Stored { remaining: len };
                }
                1 => {
                    self.stage = Stage::Codes {
                        literals: Huffman::build(&fixed_literal_lengths())?,
                        distances: Huffman::build(&[5u8; 30])?,
                    };
                }
                2 => {
                    let (literals, distances) = read_dynamic_tables(&mut self.src)?;
                    self.stage = Stage::Codes {
                        literals,
                        distances,
                    };
                }
                _ => return Err(corrupt("reserved block type 3")),
            }
            Ok(())
        }

        fn read_trailer(&mut self) -> io::Result<()> {
            let mut t = [0u8; 8];
            for slot in &mut t {
                *slot = self.src.take_byte()?;
            }
            let expected_crc = u32::from_le_bytes([t[0], t[1], t[2], t[3]]);
            let expected_size = u32::from_le_bytes([t[4], t[5], t[6], t[7]]);
            if self.crc ^ 0xFFFF_FFFF != expected_crc {
                return Err(corrupt("CRC32 mismatch"));
            }
            if self.member_len as u32 != expected_size {
                return Err(corrupt("ISIZE mismatch"));
            }
            self.member_done = true;
            self.stage = Stage::Header;
            Ok(())
        }

        /// Decodes until at least `target` pending bytes are available, a
        /// stage boundary is crossed, or the stream ends. Suspends only
        /// between DEFLATE symbols, so `target` bounds the pending buffer
        /// (plus one match length).
        fn step(&mut self, target: usize) -> io::Result<()> {
            match &mut self.stage {
                Stage::Header => self.read_header()?,
                Stage::BlockHeader => self.read_block_header()?,
                Stage::Stored { remaining } => {
                    let take = (*remaining as usize).min(target.max(1));
                    *remaining -= take as u16;
                    let block_done = *remaining == 0;
                    for _ in 0..take {
                        let byte = self.src.take_byte()?;
                        self.emit_byte(byte);
                    }
                    if block_done {
                        self.end_block();
                    }
                }
                Stage::Codes { .. } => {
                    // Move the tables out of the stage so symbol decoding can
                    // borrow `self` mutably; they come back unless the block
                    // ends. (The swap is cheap: two small structs.)
                    let Stage::Codes {
                        literals,
                        distances,
                    } = std::mem::replace(&mut self.stage, Stage::BlockHeader)
                    else {
                        return Err(corrupt("decoder state corrupted"));
                    };
                    let mut ended = false;
                    while self.out.pending_len() < target.max(1) {
                        let symbol = literals.decode(&mut self.src)?;
                        match symbol {
                            0..=255 => self.emit_byte(symbol as u8),
                            256 => {
                                ended = true;
                                break;
                            }
                            257..=285 => {
                                let idx = (symbol - 257) as usize;
                                let length = LENGTH_BASE[idx] as usize
                                    + self.src.take_bits(LENGTH_EXTRA[idx])? as usize;
                                let dist_symbol = distances.decode(&mut self.src)? as usize;
                                if dist_symbol >= 30 {
                                    return Err(corrupt("invalid distance symbol"));
                                }
                                let distance = DIST_BASE[dist_symbol] as usize
                                    + self.src.take_bits(DIST_EXTRA[dist_symbol])? as usize;
                                self.emit_copy(distance, length)?;
                            }
                            _ => return Err(corrupt("invalid literal/length symbol")),
                        }
                    }
                    if ended {
                        self.end_block();
                    } else {
                        self.stage = Stage::Codes {
                            literals,
                            distances,
                        };
                    }
                }
                Stage::Trailer => self.read_trailer()?,
                Stage::Done => {}
                Stage::Failed => return Err(corrupt("decoder poisoned by an earlier error")),
            }
            let occupancy = self.src.buffered() + self.out.filled + self.out.pending_len();
            self.high_water = self.high_water.max(occupancy);
            Ok(())
        }
    }

    impl<R: Read> Read for GzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            // Cap the per-call decode goal so pending stays bounded even
            // when the caller hands in a huge buffer (read_to_end doubles
            // its slices up to the payload size).
            let target = buf.len().min(16 * 1024);
            loop {
                if self.out.pending_len() > 0 {
                    return Ok(self.out.drain(buf));
                }
                if matches!(self.stage, Stage::Done) {
                    return Ok(0);
                }
                if let Err(e) = self.step(target) {
                    self.stage = Stage::Failed;
                    return Err(e);
                }
            }
        }
    }
}

/// Writer types.
pub mod write {
    use super::*;
    use std::io::Write;

    /// A gzip encoder wrapping an underlying writer, mirroring
    /// `flate2::write::GzEncoder`. Emits stored (uncompressed) DEFLATE
    /// blocks: ratio 1, but a fully valid gzip member.
    pub struct GzEncoder<W> {
        inner: W,
        buf: Vec<u8>,
    }

    impl<W: Write> GzEncoder<W> {
        /// Wraps `inner`. The compression level is accepted for API
        /// compatibility and ignored (the shim always stores).
        pub fn new(inner: W, _level: Compression) -> GzEncoder<W> {
            GzEncoder {
                inner,
                buf: Vec::new(),
            }
        }

        /// Finishes the member (header, stored blocks, CRC32/ISIZE trailer)
        /// and returns the underlying writer.
        pub fn finish(mut self) -> io::Result<W> {
            let mut member = Vec::with_capacity(self.buf.len() + 32);
            // Header: magic, deflate, no flags, zero mtime, no XFL, OS 255.
            member.extend_from_slice(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255]);
            let mut chunks = self.buf.chunks(65_535).peekable();
            if chunks.peek().is_none() {
                // Empty payload still needs one final stored block.
                member.extend_from_slice(&[1, 0, 0, 0xFF, 0xFF]);
            }
            while let Some(chunk) = chunks.next() {
                let bfinal = u8::from(chunks.peek().is_none());
                let len = chunk.len() as u16;
                member.push(bfinal);
                member.extend_from_slice(&len.to_le_bytes());
                member.extend_from_slice(&(!len).to_le_bytes());
                member.extend_from_slice(chunk);
            }
            member.extend_from_slice(&crc32(&self.buf).to_le_bytes());
            member.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
            self.inner.write_all(&member)?;
            self.inner.flush()?;
            Ok(self.inner)
        }
    }

    impl<W: Write> Write for GzEncoder<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn gzip_roundtrip(payload: &[u8]) -> Vec<u8> {
        let encoder = write::GzEncoder::new(Vec::new(), Compression::default());
        let mut encoder = encoder;
        encoder.write_all(payload).unwrap();
        let compressed = encoder.finish().unwrap();
        let mut decoder = read::GzDecoder::new(&compressed[..]);
        let mut out = Vec::new();
        decoder.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn stored_roundtrip_preserves_bytes() {
        for payload in [
            b"".to_vec(),
            b"a".to_vec(),
            b"hello gzip".to_vec(),
            (0..=255u8).cycle().take(200_000).collect::<Vec<u8>>(),
        ] {
            assert_eq!(gzip_roundtrip(&payload), payload);
        }
    }

    /// `printf 'hello hello hello hello\n' | gzip -9`: a fixed-Huffman member
    /// produced by the real gzip, with back-references.
    const REAL_GZIP_FIXED: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0xcb, 0x48, 0xcd, 0xc9, 0xc9,
        0x57, 0xc8, 0x40, 0x27, 0xb9, 0x00, 0x00, 0x88, 0x59, 0x0b, 0x18, 0x00, 0x00, 0x00,
    ];

    #[test]
    fn decodes_real_gzip_output() {
        let mut decoder = read::GzDecoder::new(REAL_GZIP_FIXED);
        let mut out = String::new();
        decoder.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello hello hello hello\n");
    }

    #[test]
    fn decodes_across_tiny_reads() {
        // Single-byte reads exercise every suspension point of the state
        // machine: mid-header, mid-block, before the trailer.
        let mut decoder = read::GzDecoder::new(REAL_GZIP_FIXED);
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match decoder.read(&mut byte).unwrap() {
                0 => break,
                n => out.extend_from_slice(&byte[..n]),
            }
        }
        assert_eq!(out, b"hello hello hello hello\n");
    }

    #[test]
    fn concatenated_members_decode_in_full() {
        // `cat a.gz b.gz` is valid gzip; truncating at member one would
        // silently corrupt headerless formats like edge lists.
        let mut a = write::GzEncoder::new(Vec::new(), Compression::default());
        a.write_all(b"first part, ").unwrap();
        let mut joined = a.finish().unwrap();
        joined.extend_from_slice(REAL_GZIP_FIXED);
        let mut decoder = read::GzDecoder::new(&joined[..]);
        let mut out = String::new();
        decoder.read_to_string(&mut out).unwrap();
        assert_eq!(out, "first part, hello hello hello hello\n");
    }

    #[test]
    fn trailing_garbage_is_an_error_not_a_truncation() {
        let mut member = REAL_GZIP_FIXED.to_vec();
        member.extend_from_slice(b"and some plain text after");
        let mut decoder = read::GzDecoder::new(&member[..]);
        let mut out = Vec::new();
        let err = decoder.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("trailing garbage"), "{err}");
    }

    #[test]
    fn trailer_corruption_is_detected() {
        let mut member = REAL_GZIP_FIXED.to_vec();
        let last = member.len() - 8; // first byte of the CRC32 field
        member[last] ^= 0xFF;
        let mut decoder = read::GzDecoder::new(&member[..]);
        let mut out = Vec::new();
        let err = decoder.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
    }

    #[test]
    fn non_gzip_input_is_rejected() {
        for bad in [&b"plain text, nothing gzip about it"[..], &[0x1f, 0x8b][..]] {
            let mut decoder = read::GzDecoder::new(bad);
            let mut out = Vec::new();
            assert!(decoder.read_to_end(&mut out).is_err());
        }
    }

    #[test]
    fn buffer_high_water_stays_bounded_on_large_streams() {
        // The regression pin for streaming ingestion: inflating a multi-
        // megabyte stream must buffer O(chunk) bytes — input chunk (8 KiB) +
        // back-reference window (32 KiB) + bounded pending output — never
        // the inflated payload. Before the incremental rewrite the decoder
        // slurped and inflated everything up front, so its transient
        // footprint here would have been > 4 MiB.
        let payload: Vec<u8> = (0..4_000_000u32).map(|i| (i % 251) as u8).collect();
        let mut encoder = write::GzEncoder::new(Vec::new(), Compression::default());
        encoder.write_all(&payload).unwrap();
        let compressed = encoder.finish().unwrap();
        let mut decoder = read::GzDecoder::new(&compressed[..]);
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match decoder.read(&mut chunk).unwrap() {
                0 => break,
                n => out.extend_from_slice(&chunk[..n]),
            }
        }
        assert_eq!(out, payload);
        assert!(
            decoder.buffer_high_water() <= 128 * 1024,
            "decoder buffered {} bytes for a {} byte stream",
            decoder.buffer_high_water(),
            payload.len()
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
