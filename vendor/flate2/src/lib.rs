//! Offline stand-in for `flate2`.
//!
//! Implements the subset of the `flate2` API the workspace uses to ingest
//! gzipped benchmark graphs (`.mtx.gz`, `.graph.gz`, `.el.gz`):
//!
//! * [`read::GzDecoder`] — a complete RFC 1952 gzip reader over a full
//!   RFC 1951 DEFLATE inflater (stored, fixed-Huffman and dynamic-Huffman
//!   blocks), with CRC32 and size verification of the trailer. Files
//!   produced by the real `gzip`/`zlib` toolchain decode byte-exactly.
//! * [`write::GzEncoder`] — a gzip *writer* that emits stored (uncompressed)
//!   DEFLATE blocks only. Compression ratio 1, but the output is a fully
//!   valid gzip member that any inflater (including this one) accepts, which
//!   is all the round-trip tests need.
//! * [`Compression`] — accepted for API compatibility; the encoder always
//!   stores, so the level is ignored.
//!
//! Like every `vendor/` shim, swapping back to the real crate is a
//! Cargo.toml-only change: the types, module paths and method signatures
//! match the crates.io `flate2` surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;

/// Compression level (accepted for API compatibility; the store-only encoder
/// ignores it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compression(u32);

impl Compression {
    /// Construct a specific level (0–9 in the real crate).
    pub fn new(level: u32) -> Compression {
        Compression(level)
    }
    /// No compression.
    pub fn none() -> Compression {
        Compression(0)
    }
    /// Optimise for speed.
    pub fn fast() -> Compression {
        Compression(1)
    }
    /// Optimise for size.
    pub fn best() -> Compression {
        Compression(9)
    }
    /// The configured level.
    pub fn level(&self) -> u32 {
        self.0
    }
}

impl Default for Compression {
    fn default() -> Compression {
        Compression(6)
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("gzip: {msg}"))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, the gzip checksum)
// ---------------------------------------------------------------------------

fn crc32(data: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (n, slot) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// DEFLATE inflate (RFC 1951)
// ---------------------------------------------------------------------------

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bit position inside `data[pos]` (0 = least significant).
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit: 0,
        }
    }

    fn take_bit(&mut self) -> io::Result<u32> {
        let byte = *self
            .data
            .get(self.pos)
            .ok_or_else(|| corrupt("unexpected end of deflate stream"))?;
        let bit = (byte >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(bit as u32)
    }

    fn take_bits(&mut self, count: u32) -> io::Result<u32> {
        let mut out = 0u32;
        for i in 0..count {
            out |= self.take_bit()? << i;
        }
        Ok(out)
    }

    /// Discards the remainder of the current byte (stored-block alignment).
    fn align_to_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
    }

    fn take_byte(&mut self) -> io::Result<u8> {
        debug_assert_eq!(self.bit, 0, "byte reads only after alignment");
        let byte = *self
            .data
            .get(self.pos)
            .ok_or_else(|| corrupt("unexpected end of deflate stream"))?;
        self.pos += 1;
        Ok(byte)
    }

    /// Byte offset of the next unread byte (after alignment).
    fn byte_pos(&self) -> usize {
        self.pos + usize::from(self.bit != 0)
    }
}

/// Canonical Huffman decoding table: symbol counts per code length plus the
/// symbols sorted by (length, symbol) — the classic zlib `puff` layout.
struct Huffman {
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    fn build(lengths: &[u8]) -> io::Result<Huffman> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            if len > 15 {
                return Err(corrupt("code length exceeds 15"));
            }
            counts[len as usize] += 1;
        }
        counts[0] = 0;
        // Over-subscribed code sets are invalid (incomplete sets appear in
        // legal streams with a single distance code, so they are allowed).
        let mut left = 1i32;
        for &count in counts.iter().skip(1) {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(corrupt("over-subscribed Huffman code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, bits: &mut BitReader<'_>) -> io::Result<u16> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= bits.take_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(corrupt("invalid Huffman code"))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which the code-length-code lengths are stored in a dynamic block.
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    lengths[144..256].iter_mut().for_each(|l| *l = 9);
    lengths[256..280].iter_mut().for_each(|l| *l = 7);
    lengths
}

fn inflate_codes(
    bits: &mut BitReader<'_>,
    literals: &Huffman,
    distances: &Huffman,
    out: &mut Vec<u8>,
) -> io::Result<()> {
    loop {
        let symbol = literals.decode(bits)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (symbol - 257) as usize;
                let length =
                    LENGTH_BASE[idx] as usize + bits.take_bits(LENGTH_EXTRA[idx])? as usize;
                let dist_symbol = distances.decode(bits)? as usize;
                if dist_symbol >= 30 {
                    return Err(corrupt("invalid distance symbol"));
                }
                let distance = DIST_BASE[dist_symbol] as usize
                    + bits.take_bits(DIST_EXTRA[dist_symbol])? as usize;
                if distance > out.len() {
                    return Err(corrupt("distance beyond output start"));
                }
                // Byte-by-byte copy: overlapping matches (distance < length)
                // repeat the just-written bytes, exactly as DEFLATE requires.
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(corrupt("invalid literal/length symbol")),
        }
    }
}

/// Inflates one complete DEFLATE stream starting at `bits`. Returns the
/// decoded bytes; the reader is left positioned after the final block.
fn inflate(bits: &mut BitReader<'_>) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let bfinal = bits.take_bit()?;
        let btype = bits.take_bits(2)?;
        match btype {
            0 => {
                bits.align_to_byte();
                let len = bits.take_byte()? as u16 | ((bits.take_byte()? as u16) << 8);
                let nlen = bits.take_byte()? as u16 | ((bits.take_byte()? as u16) << 8);
                if len != !nlen {
                    return Err(corrupt("stored block LEN/NLEN mismatch"));
                }
                for _ in 0..len {
                    out.push(bits.take_byte()?);
                }
            }
            1 => {
                let literals = Huffman::build(&fixed_literal_lengths())?;
                let distances = Huffman::build(&[5u8; 30])?;
                inflate_codes(bits, &literals, &distances, &mut out)?;
            }
            2 => {
                let hlit = bits.take_bits(5)? as usize + 257;
                let hdist = bits.take_bits(5)? as usize + 1;
                let hclen = bits.take_bits(4)? as usize + 4;
                if hlit > 286 || hdist > 30 {
                    return Err(corrupt("dynamic block declares too many codes"));
                }
                let mut clc_lengths = [0u8; 19];
                for &slot in CLC_ORDER.iter().take(hclen) {
                    clc_lengths[slot] = bits.take_bits(3)? as u8;
                }
                let clc = Huffman::build(&clc_lengths)?;
                let mut lengths = vec![0u8; hlit + hdist];
                let mut i = 0;
                while i < lengths.len() {
                    let symbol = clc.decode(bits)?;
                    match symbol {
                        0..=15 => {
                            lengths[i] = symbol as u8;
                            i += 1;
                        }
                        16 => {
                            if i == 0 {
                                return Err(corrupt("repeat with no previous length"));
                            }
                            let prev = lengths[i - 1];
                            let repeat = 3 + bits.take_bits(2)? as usize;
                            for _ in 0..repeat {
                                if i >= lengths.len() {
                                    return Err(corrupt("length repeat overflows table"));
                                }
                                lengths[i] = prev;
                                i += 1;
                            }
                        }
                        17 | 18 => {
                            let repeat = if symbol == 17 {
                                3 + bits.take_bits(3)? as usize
                            } else {
                                11 + bits.take_bits(7)? as usize
                            };
                            for _ in 0..repeat {
                                if i >= lengths.len() {
                                    return Err(corrupt("zero repeat overflows table"));
                                }
                                lengths[i] = 0;
                                i += 1;
                            }
                        }
                        _ => return Err(corrupt("invalid code-length symbol")),
                    }
                }
                if lengths[256] == 0 {
                    return Err(corrupt("dynamic block has no end-of-block code"));
                }
                let literals = Huffman::build(&lengths[..hlit])?;
                let distances = Huffman::build(&lengths[hlit..])?;
                inflate_codes(bits, &literals, &distances, &mut out)?;
            }
            _ => return Err(corrupt("reserved block type 3")),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

// ---------------------------------------------------------------------------
// gzip container (RFC 1952)
// ---------------------------------------------------------------------------

const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Decodes the first gzip member of `input`, verifying the CRC32 and size
/// trailer. Returns the decompressed payload.
/// Decodes one gzip member starting at the beginning of `input`, returning
/// the payload and the number of input bytes the member occupied (header,
/// deflate stream and trailer).
fn decode_gzip_member(input: &[u8]) -> io::Result<(Vec<u8>, usize)> {
    if input.len() < 18 {
        return Err(corrupt("input shorter than the smallest gzip member"));
    }
    if input[0] != 0x1f || input[1] != 0x8b {
        return Err(corrupt("bad magic number (not a gzip file)"));
    }
    if input[2] != 8 {
        return Err(corrupt("unsupported compression method (only deflate)"));
    }
    let flags = input[3];
    // input[4..8] mtime, input[8] xfl, input[9] os: all ignored.
    let mut pos = 10usize;
    let need = |pos: usize, n: usize| -> io::Result<()> {
        if pos + n > input.len() {
            Err(corrupt("truncated gzip header"))
        } else {
            Ok(())
        }
    };
    if flags & FEXTRA != 0 {
        need(pos, 2)?;
        let xlen = input[pos] as usize | ((input[pos + 1] as usize) << 8);
        pos += 2;
        need(pos, xlen)?;
        pos += xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flags & flag != 0 {
            let end = input[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| corrupt("unterminated header string"))?;
            pos += end + 1;
        }
    }
    if flags & FHCRC != 0 {
        need(pos, 2)?;
        pos += 2;
    }
    let mut bits = BitReader::new(&input[pos..]);
    let payload = inflate(&mut bits)?;
    bits.align_to_byte();
    let trailer_at = pos + bits.byte_pos();
    if trailer_at + 8 > input.len() {
        return Err(corrupt("missing CRC32/ISIZE trailer"));
    }
    let t = &input[trailer_at..trailer_at + 8];
    let expected_crc =
        t[0] as u32 | ((t[1] as u32) << 8) | ((t[2] as u32) << 16) | ((t[3] as u32) << 24);
    let expected_size =
        t[4] as u32 | ((t[5] as u32) << 8) | ((t[6] as u32) << 16) | ((t[7] as u32) << 24);
    if crc32(&payload) != expected_crc {
        return Err(corrupt("CRC32 mismatch"));
    }
    if payload.len() as u32 != expected_size {
        return Err(corrupt("ISIZE mismatch"));
    }
    Ok((payload, trailer_at + 8))
}

/// Decodes a whole gzip file: one member, or several concatenated members
/// (`cat a.gz b.gz`, pigz/bgzip output — all valid gzip), with the payloads
/// appended in order. Trailing bytes that are not another member are an
/// error, never silent truncation.
fn decode_gzip(input: &[u8]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut remaining = input;
    loop {
        let (payload, consumed) = decode_gzip_member(remaining)?;
        out.extend_from_slice(&payload);
        remaining = &remaining[consumed..];
        if remaining.is_empty() {
            return Ok(out);
        }
        if !remaining.starts_with(&[0x1f, 0x8b]) {
            return Err(corrupt("trailing garbage after the last gzip member"));
        }
    }
}

/// Reader types.
pub mod read {
    use super::*;
    use std::io::Read;

    /// A gzip decoder wrapping an underlying reader, mirroring
    /// `flate2::read::GzDecoder` — except that, like the real crate's
    /// `MultiGzDecoder`, it also decodes concatenated multi-member files
    /// (silently truncating them at member one would corrupt headerless
    /// formats like edge lists). The whole input is decoded on first read
    /// (the shim favours simplicity over streaming; benchmark graphs are
    /// megabytes, not terabytes).
    pub struct GzDecoder<R> {
        inner: R,
        decoded: Option<Vec<u8>>,
        offset: usize,
    }

    impl<R: Read> GzDecoder<R> {
        /// Wraps `inner`, which must yield a gzip member.
        pub fn new(inner: R) -> GzDecoder<R> {
            GzDecoder {
                inner,
                decoded: None,
                offset: 0,
            }
        }

        /// Consumes the decoder, returning the underlying reader.
        pub fn into_inner(self) -> R {
            self.inner
        }
    }

    impl<R: Read> Read for GzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.decoded.is_none() {
                let mut raw = Vec::new();
                self.inner.read_to_end(&mut raw)?;
                self.decoded = Some(decode_gzip(&raw)?);
            }
            let decoded = self.decoded.as_ref().expect("decoded above");
            let remaining = &decoded[self.offset.min(decoded.len())..];
            let n = remaining.len().min(buf.len());
            buf[..n].copy_from_slice(&remaining[..n]);
            self.offset += n;
            Ok(n)
        }
    }
}

/// Writer types.
pub mod write {
    use super::*;
    use std::io::Write;

    /// A gzip encoder wrapping an underlying writer, mirroring
    /// `flate2::write::GzEncoder`. Emits stored (uncompressed) DEFLATE
    /// blocks: ratio 1, but a fully valid gzip member.
    pub struct GzEncoder<W> {
        inner: W,
        buf: Vec<u8>,
    }

    impl<W: Write> GzEncoder<W> {
        /// Wraps `inner`. The compression level is accepted for API
        /// compatibility and ignored (the shim always stores).
        pub fn new(inner: W, _level: Compression) -> GzEncoder<W> {
            GzEncoder {
                inner,
                buf: Vec::new(),
            }
        }

        /// Finishes the member (header, stored blocks, CRC32/ISIZE trailer)
        /// and returns the underlying writer.
        pub fn finish(mut self) -> io::Result<W> {
            let mut member = Vec::with_capacity(self.buf.len() + 32);
            // Header: magic, deflate, no flags, zero mtime, no XFL, OS 255.
            member.extend_from_slice(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255]);
            let mut chunks = self.buf.chunks(65_535).peekable();
            if chunks.peek().is_none() {
                // Empty payload still needs one final stored block.
                member.extend_from_slice(&[1, 0, 0, 0xFF, 0xFF]);
            }
            while let Some(chunk) = chunks.next() {
                let bfinal = u8::from(chunks.peek().is_none());
                let len = chunk.len() as u16;
                member.push(bfinal);
                member.extend_from_slice(&len.to_le_bytes());
                member.extend_from_slice(&(!len).to_le_bytes());
                member.extend_from_slice(chunk);
            }
            member.extend_from_slice(&crc32(&self.buf).to_le_bytes());
            member.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
            self.inner.write_all(&member)?;
            self.inner.flush()?;
            Ok(self.inner)
        }
    }

    impl<W: Write> Write for GzEncoder<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn gzip_roundtrip(payload: &[u8]) -> Vec<u8> {
        let encoder = write::GzEncoder::new(Vec::new(), Compression::default());
        let mut encoder = encoder;
        encoder.write_all(payload).unwrap();
        let compressed = encoder.finish().unwrap();
        let mut decoder = read::GzDecoder::new(&compressed[..]);
        let mut out = Vec::new();
        decoder.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn stored_roundtrip_preserves_bytes() {
        for payload in [
            b"".to_vec(),
            b"a".to_vec(),
            b"hello gzip".to_vec(),
            (0..=255u8).cycle().take(200_000).collect::<Vec<u8>>(),
        ] {
            assert_eq!(gzip_roundtrip(&payload), payload);
        }
    }

    /// `printf 'hello hello hello hello\n' | gzip -9`: a fixed-Huffman member
    /// produced by the real gzip, with back-references.
    const REAL_GZIP_FIXED: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0xcb, 0x48, 0xcd, 0xc9, 0xc9,
        0x57, 0xc8, 0x40, 0x27, 0xb9, 0x00, 0x00, 0x88, 0x59, 0x0b, 0x18, 0x00, 0x00, 0x00,
    ];

    #[test]
    fn decodes_real_gzip_output() {
        let mut decoder = read::GzDecoder::new(REAL_GZIP_FIXED);
        let mut out = String::new();
        decoder.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello hello hello hello\n");
    }

    #[test]
    fn concatenated_members_decode_in_full() {
        // `cat a.gz b.gz` is valid gzip; truncating at member one would
        // silently corrupt headerless formats like edge lists.
        let mut a = write::GzEncoder::new(Vec::new(), Compression::default());
        a.write_all(b"first part, ").unwrap();
        let mut joined = a.finish().unwrap();
        joined.extend_from_slice(REAL_GZIP_FIXED);
        let mut decoder = read::GzDecoder::new(&joined[..]);
        let mut out = String::new();
        decoder.read_to_string(&mut out).unwrap();
        assert_eq!(out, "first part, hello hello hello hello\n");
    }

    #[test]
    fn trailing_garbage_is_an_error_not_a_truncation() {
        let mut member = REAL_GZIP_FIXED.to_vec();
        member.extend_from_slice(b"and some plain text after");
        let mut decoder = read::GzDecoder::new(&member[..]);
        let mut out = Vec::new();
        let err = decoder.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("trailing garbage"), "{err}");
    }

    #[test]
    fn trailer_corruption_is_detected() {
        let mut member = REAL_GZIP_FIXED.to_vec();
        let last = member.len() - 9; // inside the CRC32
        member[last] ^= 0xFF;
        let mut decoder = read::GzDecoder::new(&member[..]);
        let mut out = Vec::new();
        let err = decoder.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
    }

    #[test]
    fn non_gzip_input_is_rejected() {
        for bad in [&b"plain text, nothing gzip about it"[..], &[0x1f, 0x8b][..]] {
            let mut decoder = read::GzDecoder::new(bad);
            let mut out = Vec::new();
            assert!(decoder.read_to_end(&mut out).is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
