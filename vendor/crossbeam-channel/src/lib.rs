//! Offline stand-in for `crossbeam-channel`.
//!
//! Provides the unbounded MPMC channel surface the threaded runtime uses:
//! [`unbounded`], cloneable [`Sender`]/[`Receiver`], [`Sender::send`],
//! [`Receiver::recv`] and [`Receiver::recv_timeout`]. Built on
//! `Mutex<VecDeque>` + `Condvar`; slower than the real lock-free
//! implementation but semantically equivalent for FIFO point-to-point links.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Error returned by [`Sender::send`] (never produced by this stand-in: the
/// channel has no disconnect detection, matching how the workspace keeps every
/// endpoint alive until shutdown).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected (not produced by this stand-in).
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is disconnected
/// (not produced by this stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; never blocks, never fails.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        queue.push_back(value);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            queue = self.shared.ready.wait(queue).expect("channel poisoned");
        }
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("channel poisoned");
            queue = guard;
            if result.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Takes a message if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .expect("channel poisoned")
            .pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(i));
        }
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..1000 {
            sum += rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
    }
}
