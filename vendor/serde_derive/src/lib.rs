//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, which
//! are unavailable offline). The parser handles the shapes used in this
//! workspace: non-generic structs with named fields, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants. Enums serialize in
//! serde's externally tagged representation; newtype structs serialize
//! transparently as their inner value.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input turned out to be.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut fields: Vec<(String, ::serde::Value)> = Vec::new();
                        {pushes}
                        ::serde::Value::Object(fields)
                    }}
                }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{ {body} }}
                }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{
                                let mut fields: Vec<(String, ::serde::Value)> = Vec::new();
                                {pushes}
                                ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(fields))])
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::field(obj, \"{f}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(
                            \"expected object for struct {name}\"))?;
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                            Ok({name}(::serde::Deserialize::from_value(v)?))
                        }}
                    }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                            let items = v.as_array().ok_or_else(|| ::serde::Error::custom(
                                \"expected array for tuple struct {name}\"))?;
                            if items.len() != {arity} {{
                                return Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));
                            }}
                            Ok({name}({items}))
                        }}
                    }}",
                    items = items.join(", ")
                )
            }
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                    Ok({name})
                }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms
                            .push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"));
                        // Tolerate `{"Variant": null}` / `{"Variant": {}}` too.
                        tagged_arms
                            .push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => {{
                                    let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(
                                        \"expected array for variant {vname}\"))?;
                                    if items.len() != {arity} {{
                                        return Err(::serde::Error::custom(\"wrong arity for variant {vname}\"));
                                    }}
                                    return Ok({name}::{vname}({items}));
                                }}\n",
                                items = items.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::field(obj, \"{f}\")?,\n"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{
                                let obj = inner.as_object().ok_or_else(|| ::serde::Error::custom(
                                    \"expected object for variant {vname}\"))?;
                                return Ok({name}::{vname} {{ {inits} }});
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        if let Some(s) = v.as_str() {{
                            match s {{ {unit_arms} _ => {{}} }}
                        }}
                        if let Some((tag, inner)) = ::serde::enum_tag(v) {{
                            let _ = inner;
                            match tag {{ {tagged_arms} _ => {{}} }}
                        }}
                        Err(::serde::Error::custom(
                            format!(\"unrecognised value for enum {name}: {{v:?}}\")))
                    }}
                }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_text(&toks, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&toks, i).expect("expected type name");
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic types are not supported (type `{name}`)");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Shape::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Shape::TupleStruct { name, arity }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Shape::Enum { name, variants }
            }
            _ => panic!("serde_derive stand-in: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

fn ident_text(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips `#[...]` attribute sequences (doc comments arrive this way too).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type, stopping at a `,` that sits outside any `<...>`.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = ident_text(&toks, i).expect("expected field name");
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(name);
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        arity += 1;
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_text(&toks, i).expect("expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
