//! Offline stand-in for the `rand` crate.
//!
//! Implements the API surface this workspace uses — `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods (`gen`,
//! `gen_range`, `gen_bool`) and `seq::SliceRandom` — on top of xoshiro256**
//! with SplitMix64 seeding. Deterministic for a given seed, which is all the
//! experiments require; it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of a type from raw random bits (the stand-in for the
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl<A: StandardSample, B: StandardSample> StandardSample for (A, B) {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (A::sample_standard(rng), B::sample_standard(rng))
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Extension methods every RNG gets for free (mirrors `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
    }
}
