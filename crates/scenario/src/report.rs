//! Campaign report sinks: JSON and CSV.
//!
//! The JSON document is the full [`CampaignReport`] (aggregates plus every
//! run) produced through the serde `Serialize` impls, so other tools — and
//! the round-trip tests — can parse it back with `serde::from_json_str`. The
//! CSV sink flattens the per-run records into one row each, convenient for
//! spreadsheets and plotting scripts.

use crate::runner::CampaignReport;
use serde::Serialize;
use std::path::Path;

/// The full campaign as pretty-printed JSON.
pub fn campaign_to_json(report: &CampaignReport) -> String {
    let mut out = report.to_value().to_json_pretty();
    out.push('\n');
    out
}

/// Column order of [`campaign_to_csv`].
pub const CSV_COLUMNS: &[&str] = &[
    "scenario",
    "graph",
    "initial",
    "delay",
    "start",
    "faults",
    "executor",
    "batch",
    "audit",
    "seed",
    "n",
    "m",
    "outcome",
    "initial_degree",
    "final_degree",
    "degree_lower_bound",
    "degree_upper_bound",
    "within_bound",
    "dropped_messages",
    "crashed_nodes",
    "survivors",
    "approx_ratio",
    "messages",
    "construction_messages",
    "causal_time",
    "quiescence_time",
    "rounds",
    "improvements",
    "exec_wall_ms",
    "predicted_wall_ms",
    "audit_findings",
    "audit_rules",
    "wall_ms",
    "error",
];

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The per-run records as CSV (header + one row per run).
pub fn campaign_to_csv(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&CSV_COLUMNS.join(","));
    out.push('\n');
    for run in &report.runs {
        let fields = [
            csv_escape(&run.scenario),
            csv_escape(&run.graph),
            csv_escape(&run.initial),
            csv_escape(&run.delay),
            csv_escape(&run.start),
            csv_escape(&run.faults),
            csv_escape(&run.executor),
            run.batch.to_string(),
            run.audit.to_string(),
            run.seed.to_string(),
            run.n.to_string(),
            run.m.to_string(),
            run.outcome.label().to_string(),
            run.initial_degree.to_string(),
            run.final_degree.to_string(),
            run.degree_lower_bound.to_string(),
            run.degree_upper_bound.to_string(),
            run.within_bound.to_string(),
            run.dropped_messages.to_string(),
            run.crashed_nodes.to_string(),
            run.survivors.to_string(),
            format!("{:.4}", run.approx_ratio),
            run.messages.to_string(),
            run.construction_messages.to_string(),
            run.causal_time.to_string(),
            run.quiescence_time.to_string(),
            run.rounds.to_string(),
            run.improvements.to_string(),
            format!("{:.3}", run.exec_wall_ms),
            format!("{:.3}", run.predicted_wall_ms.0),
            run.audit_findings.to_string(),
            csv_escape(&run.audit_rules),
            format!("{:.3}", run.wall_ms),
            csv_escape(run.error.as_deref().unwrap_or("")),
        ];
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Writes the JSON report to `path`.
pub fn write_json(report: &CampaignReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, campaign_to_json(report))
}

/// Writes the CSV report to `path`.
pub fn write_csv(report: &CampaignReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, campaign_to_csv(report))
}

/// One-paragraph human summary printed by the CLI after a campaign.
pub fn summarize(report: &CampaignReport) -> String {
    let t = &report.total;
    format!(
        "campaign `{}`: {} runs ({} failed) on {} threads in {:.0} ms\n\
         final degree min/median/max = {}/{}/{} (mean {:.2}), \
         approx ratio mean {:.2}, bound violations {}, \
         {} improvement messages total{}{}",
        report.name,
        t.runs,
        t.failures,
        report.threads,
        report.wall_ms,
        t.final_degree.min,
        t.final_degree.median,
        t.final_degree.max,
        t.final_degree.mean,
        t.approx_ratio_mean,
        t.bound_violations,
        t.messages_total,
        if t.dropped_total > 0 || t.crashed_total > 0 {
            format!(
                "\nfaults: {} messages dropped, {} nodes crashed, outcomes {:?}",
                t.dropped_total, t.crashed_total, t.outcomes
            )
        } else {
            String::new()
        },
        if t.audited > 0 {
            format!(
                "\ntrace audits: {} runs audited, {} with happens-before violations",
                t.audited, t.audit_violations
            )
        } else {
            String::new()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::ScenarioMatrix;

    fn small_report() -> CampaignReport {
        let spec = r#"
            [[scenario]]
            name = "mini"
            graph = { family = "star_with_leaf_edges", n = 8 }
            seeds = [1, 2]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn json_report_parses_back() {
        let report = small_report();
        let json = campaign_to_json(&report);
        let value = serde::from_json_str(&json).unwrap();
        assert_eq!(value.get("name").unwrap().as_str(), Some("campaign"));
        assert_eq!(
            value.get("runs").unwrap().as_array().unwrap().len(),
            report.runs.len()
        );
        use serde::Deserialize;
        let back = CampaignReport::from_value(&value).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_run() {
        let report = small_report();
        let csv = campaign_to_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.runs.len());
        assert!(lines[0].starts_with("scenario,graph,initial"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "graph labels with commas must be quoted"
        );
    }

    #[test]
    fn summary_mentions_run_count() {
        let report = small_report();
        let s = summarize(&report);
        assert!(s.contains("2 runs"));
        assert!(s.contains("bound violations 0"));
    }
}
