//! Parallel campaign execution.
//!
//! [`run_campaign`] expands a [`ScenarioMatrix`] into its flat run list and
//! executes the runs across a scoped thread pool (work is claimed from a
//! shared atomic counter, so long runs never block short ones). Each run
//! drives the full `mdst_core` pipeline — initial-tree construction followed
//! by the distributed improvement protocol — and is checked against the
//! paper's `O(Δ* + log n)` degree bound from [`mdst_core::bounds`]. Results
//! aggregate into per-scenario and campaign-wide statistics.

use crate::spec::{ResolvedGraph, RunSpec, ScenarioMatrix, SpecError};
use mdst_core::bounds;
use mdst_core::{Observer, Outcome, Pipeline, RunReport};
use mdst_graph::Graph;
use mdst_netsim::CancelToken;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How one run ended — the outcome taxonomy of the fault campaign.
///
/// A fault-free run that does not end in [`RunOutcome::QuiescedCorrect`] is
/// additionally recorded as an error (the protocol guarantees termination on
/// reliable networks); under faults the degraded outcomes are legitimate
/// results and the run is *not* a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The network quiesced, every live node terminated, and the final tree
    /// spans the survivor component (the whole graph when nothing crashed).
    QuiescedCorrect,
    /// The network quiesced but the snapshot is stale or partial: some live
    /// node never terminated, or the surviving tree edges do not span the
    /// survivor component.
    QuiescedPartial,
    /// The event cap was hit before quiescence.
    EventLimitAbort,
    /// The run was cooperatively cancelled mid-flight (an operator `cancel`
    /// or the serve scheduler's early-abort watchdog); the record keeps the
    /// partial measurements. A decision, never recorded as an error.
    Aborted,
    /// The run could not start (graph build, spec or config error); see the
    /// record's `error` field.
    Failed,
}

impl RunOutcome {
    /// Stable lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::QuiescedCorrect => "quiesced-correct",
            RunOutcome::QuiescedPartial => "quiesced-partial",
            RunOutcome::EventLimitAbort => "event-limit-abort",
            RunOutcome::Aborted => "aborted",
            RunOutcome::Failed => "failed",
        }
    }
}

// The campaign taxonomy is the driver's unified `Outcome` plus the
// runner-level `Failed` state (a run that never started has no driver
// outcome). The report labels predate the unified enum and stay stable so
// existing JSON baselines keep diffing cleanly.
impl From<Outcome> for RunOutcome {
    fn from(outcome: Outcome) -> Self {
        match outcome {
            Outcome::Optimal => RunOutcome::QuiescedCorrect,
            Outcome::PartialTree => RunOutcome::QuiescedPartial,
            Outcome::EventLimitAborted => RunOutcome::EventLimitAbort,
            Outcome::Aborted => RunOutcome::Aborted,
        }
    }
}

// Hand-written so the JSON `outcome` field carries the same kebab-case label
// as the CSV column and the per-scenario `outcomes` histogram keys.
impl Serialize for RunOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for RunOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("quiesced-correct") => Ok(RunOutcome::QuiescedCorrect),
            Some("quiesced-partial") => Ok(RunOutcome::QuiescedPartial),
            Some("event-limit-abort") => Ok(RunOutcome::EventLimitAbort),
            Some("aborted") => Ok(RunOutcome::Aborted),
            Some("failed") => Ok(RunOutcome::Failed),
            _ => Err(serde::Error::custom("expected a run outcome label")),
        }
    }
}

/// Drain-batch size of a run (`0` = backend default; only the pool backend
/// reads it).
///
/// A transparent wrapper over `usize` whose deserialization tolerates the
/// field being absent: reports written before the batch axis existed have no
/// `batch` key, which reaches [`Deserialize::from_value`] as `Value::Null`
/// and decodes as `0` — so pre-batch campaign reports still load and diff
/// against new ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct BatchSize(pub usize);

impl Serialize for BatchSize {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(self.0 as u64)
    }
}

impl Deserialize for BatchSize {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(BatchSize(0)),
            other => other
                .as_u64()
                .map(|b| BatchSize(b as usize))
                .ok_or_else(|| serde::Error::custom("expected a batch size")),
        }
    }
}

impl std::fmt::Display for BatchSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Predicted wall-clock milliseconds of a run (`0.0` = no prediction: the
/// run was executed outside a cost-aware scheduler, or the cost model had
/// nothing to say yet).
///
/// Like [`BatchSize`], a transparent Null-tolerant wrapper: reports written
/// before the serve scheduler existed have no `predicted_wall_ms` key, which
/// reaches [`Deserialize::from_value`] as `Value::Null` and decodes as `0.0`
/// — so historical campaign reports still load and diff against new ones.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictedMs(pub f64);

impl PredictedMs {
    /// Whether a prediction was actually recorded.
    pub fn is_set(&self) -> bool {
        self.0 > 0.0
    }
}

impl Serialize for PredictedMs {
    fn to_value(&self) -> serde::Value {
        serde::Value::Float(self.0)
    }
}

impl Deserialize for PredictedMs {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(PredictedMs(0.0)),
            other => other
                .as_f64()
                .map(PredictedMs)
                .ok_or_else(|| serde::Error::custom("expected a predicted wall time")),
        }
    }
}

impl std::fmt::Display for PredictedMs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The full configuration key of one sweep-matrix cell, shared by report
/// diffing, progress lines and the serve event stream so a run carries one
/// identity everywhere. The default-batch segment is omitted so pre-batch
/// baselines keep producing byte-identical keys.
#[allow(clippy::too_many_arguments)]
pub fn run_key(
    scenario: &str,
    graph: &str,
    initial: &str,
    delay: &str,
    start: &str,
    faults: &str,
    executor: &str,
    batch: usize,
    seed: u64,
) -> String {
    let batch = if batch == 0 {
        String::new()
    } else {
        format!(" / batch {batch}")
    };
    format!(
        "{scenario} / {graph} / {initial} / {delay} / {start} / {faults} / {executor}{batch} / seed {seed}"
    )
}

/// Runner configuration.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads; `0` means the spec's `campaign.parallelism` (when
    /// set) or one per available CPU. The CLI `--jobs` flag lands here.
    pub threads: usize,
    /// When set, runs are *claimed* in a seeded random order instead of
    /// expansion order, so the long runs of a skewed campaign start early
    /// and stop dominating the tail. Results stay in expansion order and the
    /// seed is recorded in [`CampaignReport::shuffle_seed`], so a shuffled
    /// campaign reproduces exactly.
    pub shuffle: Option<u64>,
    /// When set, every run registers a streaming [`mdst_core::Observer`]
    /// that prints one progress line to stderr as the run finishes (the CLI
    /// `--progress` flag). Records are unaffected.
    pub progress: bool,
}

/// The campaign progress tap: a per-run [`Observer`] streaming one line per
/// finished run to stderr, prefixed with the run's full configuration key
/// (see [`run_key`]) so interleaved output under `--jobs > 1` — or under the
/// serve scheduler's multiplexing — stays attributable to its run.
struct ProgressLine {
    label: String,
}

impl Observer for ProgressLine {
    fn on_finish(&mut self, report: &RunReport) {
        eprintln!(
            "  {}: {} degree {} -> {} ({} rounds, {} msgs, {:.1} ms)",
            self.label,
            report.outcome,
            report.initial_degree,
            report.final_degree,
            report.rounds,
            report.improvement_metrics.messages_total,
            report.wall_ms,
        );
    }
}

/// Campaign-wide topology cache: every distinct graph source is built exactly
/// once and shared as an `Arc<Graph>` across all runs that sweep it.
///
/// Before the CSR substrate, each of a campaign's runs re-built (or re-read)
/// its graph and every executor additionally re-materialised a
/// `Vec<Vec<NodeId>>` adjacency — an `O(m)` tax multiplied by the run count.
/// Now the expansion's repeated `(source, seed)` pairs resolve to one shared
/// CSR graph whose neighbour slices every backend borrows directly.
///
/// Keys are `(graph label, seed)`; file sources ignore the seed (the same
/// file is the same topology whatever the run seed), so a thousand-seed sweep
/// over one benchmark file parses it once.
pub struct TopologyCache {
    map: Mutex<BTreeMap<TopologyKey, TopologySlot>>,
    /// Lookups that found the topology already built.
    hits: AtomicU64,
    /// Lookups that had to build (or re-report the build error).
    misses: AtomicU64,
}

/// Cache key: graph label plus the effective generation seed.
type TopologyKey = (String, u64);
/// Cached outcome: the shared graph, or the build error verbatim.
type TopologySlot = Result<Arc<Graph>, String>;

impl TopologyCache {
    /// An empty cache.
    pub fn new() -> Self {
        TopologyCache {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn key(graph: &ResolvedGraph, seed: u64) -> (String, u64) {
        let seed = match graph {
            // Files ignore the run seed entirely; normalising the key lets
            // every seed of a sweep share one parse.
            ResolvedGraph::File { .. } => 0,
            ResolvedGraph::Family { .. } => seed,
        };
        (graph.label(), seed)
    }

    /// The shared graph for `(graph, seed)`, building (or re-reporting the
    /// build error) on first use. Concurrent callers may race to build the
    /// same topology; the first insert wins so every run of a campaign
    /// observes pointer-identical topology.
    pub fn get(&self, graph: &ResolvedGraph, seed: u64) -> Result<Arc<Graph>, String> {
        let key = Self::key(graph, seed);
        if let Some(hit) = self.map.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock so a slow parse (a big gzipped benchmark
        // file) does not serialise unrelated builds.
        let built = graph.build(seed).map(Arc::new).map_err(|e| e.to_string());
        let mut map = self.map.lock().expect("cache poisoned");
        map.entry(key).or_insert(built).clone()
    }

    /// Number of distinct topologies built so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters of this cache: a hit found the
    /// topology already built, a miss built it (or re-reported its build
    /// error). Surfaced by `scenario status` when one cache is shared across
    /// concurrently scheduled campaigns.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl Default for TopologyCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one run of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scenario the run belongs to.
    pub scenario: String,
    /// Graph label, e.g. `gnp_connected(n=32,p=0.1)`.
    pub graph: String,
    /// Initial-tree construction name.
    pub initial: String,
    /// Delay model label.
    pub delay: String,
    /// Start model label.
    pub start: String,
    /// Fault plan label (`"none"` for fault-free runs).
    pub faults: String,
    /// Executor backend label (`"sim"`, `"threaded"`, `"pool"`).
    pub executor: String,
    /// Drain-batch size swept by the `batch` axis (`0` = backend default;
    /// Null-tolerant so pre-batch reports still deserialize — see
    /// [`BatchSize`]).
    pub batch: BatchSize,
    /// Whether the run recorded a trace and replayed it through the
    /// happens-before auditor (the `audit` axis).
    pub audit: bool,
    /// Seed of the run.
    pub seed: u64,
    /// Nodes of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// How the run ended (see [`RunOutcome`]).
    pub outcome: RunOutcome,
    /// Maximum degree of the initial tree (`k`).
    pub initial_degree: usize,
    /// Maximum degree of the improved tree (`k*`) on the survivor component
    /// (the whole graph for fault-free runs).
    pub final_degree: usize,
    /// Combinatorial lower bound on `Δ*`, computed on the survivor component.
    pub degree_lower_bound: usize,
    /// The paper's `2·Δ* + ⌈log₂ n⌉` guarantee on the survivor component,
    /// with the lower bound standing in for `Δ*`.
    pub degree_upper_bound: usize,
    /// Whether the degree bound held on the survivor component:
    /// `final_degree ≤ degree_upper_bound` whenever the run completed
    /// (`outcome = QuiescedCorrect`); vacuously true for partial or aborted
    /// snapshots — the bound only speaks about trees the protocol finished.
    pub within_bound: bool,
    /// Messages lost to fault injection.
    pub dropped_messages: u64,
    /// Nodes that crash-stopped.
    pub crashed_nodes: u64,
    /// Size of the survivor component (`n` for fault-free runs).
    pub survivors: usize,
    /// Ratio `final_degree / max(lower bound, 1)`.
    pub approx_ratio: f64,
    /// Messages of the improvement protocol.
    pub messages: u64,
    /// Messages of the (distributed) construction, 0 for centralized seeds.
    pub construction_messages: u64,
    /// Longest causal chain of the improvement protocol.
    pub causal_time: u64,
    /// Simulated clock at quiescence.
    pub quiescence_time: u64,
    /// Improvement rounds executed.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution alone, as
    /// reported by the backend that ran it (the simulator's event loop, the
    /// threaded runtime's first-wake-up-to-quiescence span, the pool's
    /// worker lifetime).
    pub exec_wall_ms: f64,
    /// Wall-clock milliseconds the cost-aware scheduler predicted for this
    /// run before executing it (`0` when the run was not scheduled by a cost
    /// model — direct `scenario run` campaigns — or the model was still
    /// unseeded; Null-tolerant so pre-serve reports still deserialize — see
    /// [`PredictedMs`]). Recorded next to `exec_wall_ms` so prediction
    /// accuracy is measurable from any report.
    pub predicted_wall_ms: PredictedMs,
    /// Happens-before findings flagged by the auditor; `0` when the run
    /// audited clean or was not audited.
    pub audit_findings: u64,
    /// Distinct audit rule labels that fired, comma-joined (e.g.
    /// `"duplicate-delivery,fifo-inversion"`); empty when clean or unaudited.
    pub audit_rules: String,
    /// Wall-clock milliseconds spent on this run end to end (graph build,
    /// construction, improvement, verification).
    pub wall_ms: f64,
    /// Failure description. Setup failures (`outcome = Failed`) leave the
    /// numeric fields zero; a fault-free run with a degraded outcome keeps
    /// its measured numbers and records why it still counts as a failure.
    pub error: Option<String>,
}

impl RunRecord {
    /// The run's full configuration key — the identity of one cell of the
    /// sweep matrix (see [`run_key`]).
    pub fn key(&self) -> String {
        run_key(
            &self.scenario,
            &self.graph,
            &self.initial,
            &self.delay,
            &self.start,
            &self.faults,
            &self.executor,
            self.batch.0,
            self.seed,
        )
    }
}

/// Five-number-ish summary of final tree degrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Smallest final degree.
    pub min: usize,
    /// Median final degree.
    pub median: usize,
    /// Largest final degree.
    pub max: usize,
    /// Mean final degree.
    pub mean: f64,
}

impl DegreeSummary {
    fn of(mut degrees: Vec<usize>) -> DegreeSummary {
        if degrees.is_empty() {
            return DegreeSummary {
                min: 0,
                median: 0,
                max: 0,
                mean: 0.0,
            };
        }
        degrees.sort_unstable();
        let sum: usize = degrees.iter().sum();
        DegreeSummary {
            min: degrees[0],
            median: degrees[degrees.len() / 2],
            max: *degrees.last().expect("non-empty"),
            mean: sum as f64 / degrees.len() as f64,
        }
    }
}

/// Aggregated statistics over a set of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioStats {
    /// Scenario name (`"TOTAL"` for the campaign-wide aggregate).
    pub scenario: String,
    /// Runs attempted.
    pub runs: usize,
    /// Runs that failed (graph build, pipeline error, …).
    pub failures: usize,
    /// Final-degree summary over successful runs.
    pub final_degree: DegreeSummary,
    /// Mean `final_degree / lower_bound` over successful runs.
    pub approx_ratio_mean: f64,
    /// Runs whose final degree exceeded the paper bound.
    pub bound_violations: usize,
    /// Total improvement messages across successful runs.
    pub messages_total: u64,
    /// Largest causal time observed.
    pub causal_time_max: u64,
    /// Runs per outcome label (the fault taxonomy: `quiesced-correct`,
    /// `quiesced-partial`, `event-limit-abort`, `failed`).
    pub outcomes: BTreeMap<String, usize>,
    /// Total messages lost to fault injection.
    pub dropped_total: u64,
    /// Total node crashes injected.
    pub crashed_total: u64,
    /// Runs that recorded and audited a trace.
    pub audited: usize,
    /// Audited runs with at least one happens-before finding.
    pub audit_violations: usize,
}

fn stats_over(name: &str, records: &[&RunRecord]) -> ScenarioStats {
    let ok: Vec<&&RunRecord> = records.iter().filter(|r| r.error.is_none()).collect();
    let degrees: Vec<usize> = ok.iter().map(|r| r.final_degree).collect();
    let ratio_sum: f64 = ok.iter().map(|r| r.approx_ratio).sum();
    let mut outcomes = BTreeMap::new();
    for r in records {
        *outcomes.entry(r.outcome.label().to_string()).or_insert(0) += 1;
    }
    ScenarioStats {
        scenario: name.to_string(),
        runs: records.len(),
        failures: records.len() - ok.len(),
        final_degree: DegreeSummary::of(degrees),
        approx_ratio_mean: if ok.is_empty() {
            0.0
        } else {
            ratio_sum / ok.len() as f64
        },
        bound_violations: ok.iter().filter(|r| !r.within_bound).count(),
        messages_total: ok.iter().map(|r| r.messages).sum(),
        causal_time_max: ok.iter().map(|r| r.causal_time).max().unwrap_or(0),
        outcomes,
        dropped_total: records.iter().map(|r| r.dropped_messages).sum(),
        crashed_total: records.iter().map(|r| r.crashed_nodes).sum(),
        audited: records.iter().filter(|r| r.audit).count(),
        audit_violations: records
            .iter()
            .filter(|r| r.audit && r.audit_findings > 0)
            .count(),
    }
}

/// A finished campaign: every run plus the aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Worker threads used.
    pub threads: usize,
    /// Seed of the claim-order shuffle, when one was requested (`None` for
    /// expansion-order execution). Runs in [`CampaignReport::runs`] are
    /// always in expansion order either way.
    pub shuffle_seed: Option<u64>,
    /// Wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Campaign-wide aggregate (scenario = `"TOTAL"`).
    pub total: ScenarioStats,
    /// Per-scenario aggregates, in spec order.
    pub scenarios: Vec<ScenarioStats>,
    /// Every run, in expansion order.
    pub runs: Vec<RunRecord>,
}

/// Executes a single run (sequentially, on the calling thread), building its
/// topology privately. Campaign execution goes through
/// [`execute_run_cached`] instead so runs share one [`Arc<Graph>`] per
/// distinct source.
pub fn execute_run(spec: &RunSpec) -> RunRecord {
    execute_run_cached(spec, &TopologyCache::new())
}

/// Executes a single run against a shared topology cache.
///
/// Every run — fault-free or not — goes through the one unified
/// [`Pipeline`] session, so the outcome taxonomy is uniform. A fault-free
/// run that does not end in [`RunOutcome::QuiescedCorrect`] is also recorded
/// as an error, preserving the pre-fault contract that campaigns fail loudly
/// when the protocol misbehaves on a reliable network.
pub fn execute_run_cached(spec: &RunSpec, topologies: &TopologyCache) -> RunRecord {
    execute_run_inner(spec, topologies, false)
}

/// Per-run controls of [`execute_run_controlled`] — everything a scheduler
/// (or the plain campaign runner) can attach to one run beyond its spec.
#[derive(Default)]
pub struct RunControls<'a> {
    /// Stream a per-run progress line to stderr (the `--progress` flag).
    pub progress: bool,
    /// Cooperative cancellation token; raising it mid-run ends the run with
    /// [`RunOutcome::Aborted`] and the partial measurements.
    pub cancel: Option<CancelToken>,
    /// Predicted wall-clock milliseconds from a cost model (`0.0` = none);
    /// recorded verbatim in [`RunRecord::predicted_wall_ms`].
    pub predicted_wall_ms: f64,
    /// An extra streaming observer registered on the session (the serve
    /// event fabric plugs a channel sink in here).
    pub observer: Option<&'a mut dyn Observer>,
}

fn execute_run_inner(spec: &RunSpec, topologies: &TopologyCache, progress: bool) -> RunRecord {
    execute_run_controlled(
        spec,
        topologies,
        RunControls {
            progress,
            ..Default::default()
        },
    )
}

/// Executes a single run against a shared topology cache under explicit
/// [`RunControls`] — the entry the `scenario serve` scheduler drives, with a
/// cancellation token, a cost prediction to record, and a streaming observer
/// per run. [`execute_run_cached`] is this with all controls inert.
pub fn execute_run_controlled(
    spec: &RunSpec,
    topologies: &TopologyCache,
    controls: RunControls<'_>,
) -> RunRecord {
    let start = Instant::now();
    let mut record = RunRecord {
        scenario: spec.scenario.clone(),
        graph: spec.graph.label(),
        initial: spec.initial.clone(),
        delay: spec.delay.label(),
        start: spec.start.label(),
        faults: spec.faults.label(),
        executor: spec.executor.label().to_string(),
        batch: BatchSize(spec.batch),
        audit: spec.audit,
        seed: spec.seed,
        n: 0,
        m: 0,
        outcome: RunOutcome::Failed,
        initial_degree: 0,
        final_degree: 0,
        degree_lower_bound: 0,
        degree_upper_bound: 0,
        within_bound: false,
        dropped_messages: 0,
        crashed_nodes: 0,
        survivors: 0,
        approx_ratio: 0.0,
        messages: 0,
        construction_messages: 0,
        causal_time: 0,
        quiescence_time: 0,
        rounds: 0,
        improvements: 0,
        exec_wall_ms: 0.0,
        predicted_wall_ms: PredictedMs(controls.predicted_wall_ms),
        audit_findings: 0,
        audit_rules: String::new(),
        wall_ms: 0.0,
        error: None,
    };
    let outcome = (|| -> Result<(), String> {
        let graph = topologies.get(&spec.graph, spec.seed)?;
        let config = spec.pipeline_config().map_err(|e| e.to_string())?;
        if spec.root >= graph.node_count() {
            return Err(format!(
                "root {} out of range for a graph on {} nodes",
                spec.root,
                graph.node_count()
            ));
        }
        // One session whatever the fault axis says: degraded endings are
        // outcomes of the unified report, not a separate code path.
        let mut progress_line = ProgressLine {
            label: run_key(
                &spec.scenario,
                &spec.graph.label(),
                &spec.initial,
                &spec.delay.label(),
                &spec.start.label(),
                &spec.faults.label(),
                spec.executor.label(),
                spec.batch,
                spec.seed,
            ),
        };
        let mut auditor = mdst_analysis::Auditor::new();
        let mut session = Pipeline::on(&graph).config(config);
        if controls.progress {
            session = session.observer(&mut progress_line);
        }
        if spec.audit {
            session = session.observer(&mut auditor);
        }
        if let Some(observer) = controls.observer {
            session = session.observer(observer);
        }
        if let Some(token) = controls.cancel {
            session = session.cancel(token);
        }
        let report = session.run().map_err(|e| e.to_string())?;
        if let Some(verdict) = auditor.into_report() {
            record.audit_findings = verdict.findings.len() as u64;
            let mut rules: Vec<&str> = verdict.findings.iter().map(|f| f.rule.label()).collect();
            rules.sort_unstable();
            rules.dedup();
            record.audit_rules = rules.join(",");
        }
        record.n = report.n;
        record.m = report.m;
        record.outcome = RunOutcome::from(report.outcome);
        // Degree bounds are judged on the survivor component (the whole graph
        // when nothing crashed, so fault-free numbers are unchanged). Only
        // crashes can shrink the component; skip the subgraph copy whenever
        // every node survived — the common case.
        let (lb, ub) = if report.survivor.component_size() == graph.node_count() {
            (
                bounds::degree_lower_bound(&graph),
                bounds::paper_degree_upper_bound(&graph),
            )
        } else {
            let survivor_graph = report.survivor.component_subgraph(&graph);
            (
                bounds::degree_lower_bound(&survivor_graph),
                bounds::paper_degree_upper_bound(&survivor_graph),
            )
        };
        record.initial_degree = report.initial_degree;
        record.final_degree = report.survivor.max_degree;
        record.degree_lower_bound = lb;
        record.degree_upper_bound = ub;
        // The paper's bound speaks about *completed* runs: judge it only when
        // the protocol finished with a correct tree on the survivor
        // component. A snapshot interrupted mid-improvement by a crash can
        // legitimately exceed the bound — that is a degraded outcome, not a
        // violation of the theorem.
        record.within_bound =
            record.outcome != RunOutcome::QuiescedCorrect || record.final_degree <= ub;
        record.dropped_messages = report.improvement_metrics.dropped_messages;
        record.crashed_nodes = report.improvement_metrics.crashed_nodes;
        record.survivors = report.survivor.component_size();
        record.approx_ratio = record.final_degree as f64 / lb.max(1) as f64;
        record.messages = report.improvement_metrics.messages_total;
        record.construction_messages = report
            .construction_metrics
            .as_ref()
            .map(|m| m.messages_total)
            .unwrap_or(0);
        record.causal_time = report.improvement_metrics.causal_time;
        record.quiescence_time = report.improvement_metrics.quiescence_time;
        record.rounds = report.rounds;
        record.improvements = report.improvements;
        record.exec_wall_ms = report.wall_ms;
        // A cancellation is an operator (or scheduler) decision, not a
        // protocol failure — only spontaneous degradations break the
        // reliable-network contract.
        if spec.faults.is_none()
            && record.outcome != RunOutcome::QuiescedCorrect
            && record.outcome != RunOutcome::Aborted
        {
            return Err(format!(
                "fault-free run ended {}: the protocol must terminate with a \
                 spanning tree on a reliable network",
                record.outcome.label()
            ));
        }
        Ok(())
    })();
    if let Err(e) = outcome {
        record.error = Some(e);
    }
    record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    record
}

/// Expands `matrix` and executes every run in parallel. A non-zero
/// `config.threads` wins over the spec's `campaign.parallelism` default.
pub fn run_campaign(
    matrix: &ScenarioMatrix,
    config: &RunnerConfig,
) -> Result<CampaignReport, SpecError> {
    let runs = matrix.expand()?;
    let mut config = config.clone();
    if config.threads == 0 {
        config.threads = matrix.parallelism.unwrap_or(0);
    }
    let report = execute_runs(&matrix.name, &matrix.scenario_order(), runs, &config);
    Ok(report)
}

impl ScenarioMatrix {
    /// Scenario names in spec order (used to order the per-scenario stats).
    pub fn scenario_order(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.name.clone()).collect()
    }
}

/// Executes an explicit run list in parallel (the engine under
/// [`run_campaign`], exposed so callers can post-process the expansion).
pub fn execute_runs(
    name: &str,
    scenario_order: &[String],
    runs: Vec<RunSpec>,
    config: &RunnerConfig,
) -> CampaignReport {
    let started = Instant::now();
    let threads = effective_threads(config.threads, runs.len());
    // Claim order: expansion order, or a seeded Fisher–Yates permutation of
    // it. Records land in expansion-order slots either way, so the report is
    // identical up to wall times.
    let order: Vec<usize> = {
        let mut order: Vec<usize> = (0..runs.len()).collect();
        if let Some(seed) = config.shuffle {
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
        }
        order
    };
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunRecord>>> = runs.iter().map(|_| Mutex::new(None)).collect();
    // One topology per distinct (source, seed) for the whole campaign: every
    // worker thread resolves its runs through this shared cache, so repeated
    // sweeps over the same graph borrow one CSR structure instead of
    // re-building (or re-parsing) it per run.
    let topologies = TopologyCache::new();

    if threads <= 1 {
        for &idx in &order {
            *slots[idx].lock().expect("slot poisoned") =
                Some(execute_run_inner(&runs[idx], &topologies, config.progress));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let claim = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = order.get(claim) else {
                        break;
                    };
                    let record = execute_run_inner(&runs[idx], &topologies, config.progress);
                    *slots[idx].lock().expect("slot poisoned") = Some(record);
                });
            }
        });
    }

    let records: Vec<RunRecord> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every run executed")
        })
        .collect();

    aggregate_records(
        name,
        scenario_order,
        records,
        threads,
        config.shuffle,
        started.elapsed().as_secs_f64() * 1e3,
    )
}

/// Folds finished run records into a [`CampaignReport`] — the aggregation
/// tail of [`execute_runs`], exposed so external schedulers (the `scenario
/// serve` campaign service) can produce byte-identical reports from records
/// they executed themselves.
pub fn aggregate_records(
    name: &str,
    scenario_order: &[String],
    records: Vec<RunRecord>,
    threads: usize,
    shuffle_seed: Option<u64>,
    wall_ms: f64,
) -> CampaignReport {
    // Per-scenario aggregates in spec order, plus any unknown names appended
    // (defensive: execute_runs accepts arbitrary run lists).
    let mut order: Vec<String> = scenario_order.to_vec();
    for r in &records {
        if !order.contains(&r.scenario) {
            order.push(r.scenario.clone());
        }
    }
    let scenarios: Vec<ScenarioStats> = order
        .iter()
        .map(|name| {
            let subset: Vec<&RunRecord> = records.iter().filter(|r| &r.scenario == name).collect();
            stats_over(name, &subset)
        })
        .collect();
    let all: Vec<&RunRecord> = records.iter().collect();
    CampaignReport {
        name: name.to_string(),
        threads,
        shuffle_seed,
        wall_ms,
        total: stats_over("TOTAL", &all),
        scenarios,
        runs: records,
    }
}

fn effective_threads(requested: usize, runs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, runs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioMatrix;

    const SPEC: &str = r#"
        [campaign]
        name = "runner-test"

        [[scenario]]
        name = "gnp"
        graph = { family = "gnp_connected", n = [10, 14], p = 0.3 }
        initial = ["greedy_hub", "bfs"]
        seeds = [1, 2]

        [[scenario]]
        name = "worst"
        graph = { family = "star_with_leaf_edges", n = 12 }
        seeds = [5]
    "#;

    #[test]
    fn campaign_runs_and_aggregates() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 2 * 2 * 2 + 1);
        assert_eq!(report.total.runs, 9);
        assert_eq!(report.total.failures, 0);
        assert_eq!(report.total.bound_violations, 0);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.scenarios[0].scenario, "gnp");
        for run in &report.runs {
            assert!(run.error.is_none(), "{:?}", run.error);
            assert!(run.within_bound, "{run:?}");
            assert!(run.final_degree <= run.initial_degree);
            assert!(run.final_degree >= run.degree_lower_bound);
            assert!(run.messages > 0);
        }
        let worst = report.runs.iter().find(|r| r.scenario == "worst").unwrap();
        assert_eq!(worst.initial_degree, 11);
        assert!(worst.final_degree <= 3);
    }

    #[test]
    fn parallel_and_serial_executions_agree() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let serial = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            // Wall times differ; everything measured must not.
            let mut b = b.clone();
            b.wall_ms = a.wall_ms;
            b.exec_wall_ms = a.exec_wall_ms;
            assert_eq!(a, &b);
        }
        assert_eq!(serial.total.messages_total, parallel.total.messages_total);
    }

    #[test]
    fn fault_free_campaigns_report_all_runs_correct() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        assert_eq!(
            report.total.outcomes.get("quiesced-correct").copied(),
            Some(report.total.runs)
        );
        assert_eq!(report.total.dropped_total, 0);
        assert_eq!(report.total.crashed_total, 0);
        for run in &report.runs {
            assert_eq!(run.outcome, RunOutcome::QuiescedCorrect);
            assert_eq!(run.faults, "none");
            assert_eq!(run.survivors, run.n);
        }
    }

    #[test]
    fn faulty_campaigns_classify_every_run_deterministically() {
        let spec = r#"
            [[scenario]]
            name = "lossy"
            graph = { family = "gnp_connected", n = 14, p = 0.35 }
            faults = [ "none", { loss = 0.5 }, { crashes = [[2, 3]] } ]
            seeds = [1, 2]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let a = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.total.runs, 6);
        // Every run is classified, and the classification plus the drop and
        // crash counters reproduce exactly across executions.
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.dropped_messages, y.dropped_messages);
            assert_eq!(x.crashed_nodes, y.crashed_nodes);
            assert_eq!(x.survivors, y.survivors);
        }
        // The fault-free slices of the sweep stay healthy...
        for run in a.runs.iter().filter(|r| r.faults == "none") {
            assert_eq!(run.outcome, RunOutcome::QuiescedCorrect);
            assert!(run.error.is_none());
        }
        // ...the crash runs actually crash a node, and degraded outcomes are
        // not recorded as failures.
        for run in a.runs.iter().filter(|r| r.faults.contains("crashes")) {
            assert_eq!(run.crashed_nodes, 1);
            assert!(run.survivors < run.n);
            assert!(run.error.is_none(), "{:?}", run.error);
        }
        let outcome_sum: usize = a.total.outcomes.values().sum();
        assert_eq!(outcome_sum, a.total.runs);
    }

    #[test]
    fn progress_mode_streams_without_changing_records() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let plain = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let observed = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                progress: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.runs.len(), observed.runs.len());
        for (a, b) in plain.runs.iter().zip(&observed.runs) {
            let mut b = b.clone();
            b.wall_ms = a.wall_ms;
            b.exec_wall_ms = a.exec_wall_ms;
            assert_eq!(a, &b, "observer must not perturb measurements");
        }
    }

    #[test]
    fn failing_runs_are_recorded_not_fatal() {
        let spec = r#"
            [[scenario]]
            name = "bad-root"
            graph = { family = "path", n = 4 }
            root = 9
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        assert_eq!(report.total.runs, 1);
        assert_eq!(report.total.failures, 1);
        assert!(report.runs[0].error.as_deref().unwrap().contains("root"));
    }
}
