//! Parallel campaign execution.
//!
//! [`run_campaign`] expands a [`ScenarioMatrix`] into its flat run list and
//! executes the runs across a scoped thread pool (work is claimed from a
//! shared atomic counter, so long runs never block short ones). Each run
//! drives the full `mdst_core` pipeline — initial-tree construction followed
//! by the distributed improvement protocol — and is checked against the
//! paper's `O(Δ* + log n)` degree bound from [`mdst_core::bounds`]. Results
//! aggregate into per-scenario and campaign-wide statistics.

use crate::spec::{RunSpec, ScenarioMatrix, SpecError};
use mdst_core::bounds;
use mdst_core::run_pipeline;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runner configuration.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
}

/// Outcome of one run of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scenario the run belongs to.
    pub scenario: String,
    /// Graph label, e.g. `gnp_connected(n=32,p=0.1)`.
    pub graph: String,
    /// Initial-tree construction name.
    pub initial: String,
    /// Delay model label.
    pub delay: String,
    /// Start model label.
    pub start: String,
    /// Seed of the run.
    pub seed: u64,
    /// Nodes of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Maximum degree of the initial tree (`k`).
    pub initial_degree: usize,
    /// Maximum degree of the improved tree (`k*`).
    pub final_degree: usize,
    /// Combinatorial lower bound on `Δ*`.
    pub degree_lower_bound: usize,
    /// The paper's `2·Δ* + ⌈log₂ n⌉` guarantee, with the lower bound standing
    /// in for `Δ*`.
    pub degree_upper_bound: usize,
    /// Whether `final_degree ≤ degree_upper_bound`.
    pub within_bound: bool,
    /// Ratio `final_degree / max(lower bound, 1)`.
    pub approx_ratio: f64,
    /// Messages of the improvement protocol.
    pub messages: u64,
    /// Messages of the (distributed) construction, 0 for centralized seeds.
    pub construction_messages: u64,
    /// Longest causal chain of the improvement protocol.
    pub causal_time: u64,
    /// Simulated clock at quiescence.
    pub quiescence_time: u64,
    /// Improvement rounds executed.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Wall-clock milliseconds spent on this run.
    pub wall_ms: f64,
    /// Failure description; when set, the numeric fields are zero.
    pub error: Option<String>,
}

/// Five-number-ish summary of final tree degrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Smallest final degree.
    pub min: usize,
    /// Median final degree.
    pub median: usize,
    /// Largest final degree.
    pub max: usize,
    /// Mean final degree.
    pub mean: f64,
}

impl DegreeSummary {
    fn of(mut degrees: Vec<usize>) -> DegreeSummary {
        if degrees.is_empty() {
            return DegreeSummary {
                min: 0,
                median: 0,
                max: 0,
                mean: 0.0,
            };
        }
        degrees.sort_unstable();
        let sum: usize = degrees.iter().sum();
        DegreeSummary {
            min: degrees[0],
            median: degrees[degrees.len() / 2],
            max: *degrees.last().expect("non-empty"),
            mean: sum as f64 / degrees.len() as f64,
        }
    }
}

/// Aggregated statistics over a set of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioStats {
    /// Scenario name (`"TOTAL"` for the campaign-wide aggregate).
    pub scenario: String,
    /// Runs attempted.
    pub runs: usize,
    /// Runs that failed (graph build, pipeline error, …).
    pub failures: usize,
    /// Final-degree summary over successful runs.
    pub final_degree: DegreeSummary,
    /// Mean `final_degree / lower_bound` over successful runs.
    pub approx_ratio_mean: f64,
    /// Runs whose final degree exceeded the paper bound.
    pub bound_violations: usize,
    /// Total improvement messages across successful runs.
    pub messages_total: u64,
    /// Largest causal time observed.
    pub causal_time_max: u64,
}

fn stats_over(name: &str, records: &[&RunRecord]) -> ScenarioStats {
    let ok: Vec<&&RunRecord> = records.iter().filter(|r| r.error.is_none()).collect();
    let degrees: Vec<usize> = ok.iter().map(|r| r.final_degree).collect();
    let ratio_sum: f64 = ok.iter().map(|r| r.approx_ratio).sum();
    ScenarioStats {
        scenario: name.to_string(),
        runs: records.len(),
        failures: records.len() - ok.len(),
        final_degree: DegreeSummary::of(degrees),
        approx_ratio_mean: if ok.is_empty() {
            0.0
        } else {
            ratio_sum / ok.len() as f64
        },
        bound_violations: ok.iter().filter(|r| !r.within_bound).count(),
        messages_total: ok.iter().map(|r| r.messages).sum(),
        causal_time_max: ok.iter().map(|r| r.causal_time).max().unwrap_or(0),
    }
}

/// A finished campaign: every run plus the aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Campaign-wide aggregate (scenario = `"TOTAL"`).
    pub total: ScenarioStats,
    /// Per-scenario aggregates, in spec order.
    pub scenarios: Vec<ScenarioStats>,
    /// Every run, in expansion order.
    pub runs: Vec<RunRecord>,
}

/// Executes a single run (sequentially, on the calling thread).
pub fn execute_run(spec: &RunSpec) -> RunRecord {
    let start = Instant::now();
    let mut record = RunRecord {
        scenario: spec.scenario.clone(),
        graph: spec.graph.label(),
        initial: spec.initial.clone(),
        delay: spec.delay.label(),
        start: spec.start.label(),
        seed: spec.seed,
        n: 0,
        m: 0,
        initial_degree: 0,
        final_degree: 0,
        degree_lower_bound: 0,
        degree_upper_bound: 0,
        within_bound: false,
        approx_ratio: 0.0,
        messages: 0,
        construction_messages: 0,
        causal_time: 0,
        quiescence_time: 0,
        rounds: 0,
        improvements: 0,
        wall_ms: 0.0,
        error: None,
    };
    let outcome = (|| -> Result<(), String> {
        let graph = spec.graph.build(spec.seed).map_err(|e| e.to_string())?;
        let config = spec.pipeline_config().map_err(|e| e.to_string())?;
        if spec.root >= graph.node_count() {
            return Err(format!(
                "root {} out of range for a graph on {} nodes",
                spec.root,
                graph.node_count()
            ));
        }
        let report = run_pipeline(&graph, &config).map_err(|e| e.to_string())?;
        let lb = bounds::degree_lower_bound(&graph);
        let ub = bounds::paper_degree_upper_bound(&graph);
        record.n = report.n;
        record.m = report.m;
        record.initial_degree = report.initial_degree;
        record.final_degree = report.final_degree;
        record.degree_lower_bound = lb;
        record.degree_upper_bound = ub;
        record.within_bound = report.final_degree <= ub;
        record.approx_ratio = report.final_degree as f64 / lb.max(1) as f64;
        record.messages = report.improvement_metrics.messages_total;
        record.construction_messages = report
            .construction_metrics
            .as_ref()
            .map(|m| m.messages_total)
            .unwrap_or(0);
        record.causal_time = report.improvement_metrics.causal_time;
        record.quiescence_time = report.improvement_metrics.quiescence_time;
        record.rounds = report.rounds;
        record.improvements = report.improvements;
        Ok(())
    })();
    if let Err(e) = outcome {
        record.error = Some(e);
    }
    record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    record
}

/// Expands `matrix` and executes every run in parallel.
pub fn run_campaign(
    matrix: &ScenarioMatrix,
    config: &RunnerConfig,
) -> Result<CampaignReport, SpecError> {
    let runs = matrix.expand()?;
    let report = execute_runs(&matrix.name, &matrix.scenario_order(), runs, config);
    Ok(report)
}

impl ScenarioMatrix {
    /// Scenario names in spec order (used to order the per-scenario stats).
    pub fn scenario_order(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.name.clone()).collect()
    }
}

/// Executes an explicit run list in parallel (the engine under
/// [`run_campaign`], exposed so callers can post-process the expansion).
pub fn execute_runs(
    name: &str,
    scenario_order: &[String],
    runs: Vec<RunSpec>,
    config: &RunnerConfig,
) -> CampaignReport {
    let started = Instant::now();
    let threads = effective_threads(config.threads, runs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunRecord>>> = runs.iter().map(|_| Mutex::new(None)).collect();

    if threads <= 1 {
        for (spec, slot) in runs.iter().zip(&slots) {
            *slot.lock().expect("slot poisoned") = Some(execute_run(spec));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = runs.get(idx) else {
                        break;
                    };
                    let record = execute_run(spec);
                    *slots[idx].lock().expect("slot poisoned") = Some(record);
                });
            }
        });
    }

    let records: Vec<RunRecord> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every run executed")
        })
        .collect();

    // Per-scenario aggregates in spec order, plus any unknown names appended
    // (defensive: execute_runs accepts arbitrary run lists).
    let mut order: Vec<String> = scenario_order.to_vec();
    for r in &records {
        if !order.contains(&r.scenario) {
            order.push(r.scenario.clone());
        }
    }
    let scenarios: Vec<ScenarioStats> = order
        .iter()
        .map(|name| {
            let subset: Vec<&RunRecord> = records.iter().filter(|r| &r.scenario == name).collect();
            stats_over(name, &subset)
        })
        .collect();
    let all: Vec<&RunRecord> = records.iter().collect();
    CampaignReport {
        name: name.to_string(),
        threads,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        total: stats_over("TOTAL", &all),
        scenarios,
        runs: records,
    }
}

fn effective_threads(requested: usize, runs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, runs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioMatrix;

    const SPEC: &str = r#"
        [campaign]
        name = "runner-test"

        [[scenario]]
        name = "gnp"
        graph = { family = "gnp_connected", n = [10, 14], p = 0.3 }
        initial = ["greedy_hub", "bfs"]
        seeds = [1, 2]

        [[scenario]]
        name = "worst"
        graph = { family = "star_with_leaf_edges", n = 12 }
        seeds = [5]
    "#;

    #[test]
    fn campaign_runs_and_aggregates() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 2 * 2 * 2 + 1);
        assert_eq!(report.total.runs, 9);
        assert_eq!(report.total.failures, 0);
        assert_eq!(report.total.bound_violations, 0);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.scenarios[0].scenario, "gnp");
        for run in &report.runs {
            assert!(run.error.is_none(), "{:?}", run.error);
            assert!(run.within_bound, "{run:?}");
            assert!(run.final_degree <= run.initial_degree);
            assert!(run.final_degree >= run.degree_lower_bound);
            assert!(run.messages > 0);
        }
        let worst = report.runs.iter().find(|r| r.scenario == "worst").unwrap();
        assert_eq!(worst.initial_degree, 11);
        assert!(worst.final_degree <= 3);
    }

    #[test]
    fn parallel_and_serial_executions_agree() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let serial = run_campaign(&matrix, &RunnerConfig { threads: 1 }).unwrap();
        let parallel = run_campaign(&matrix, &RunnerConfig { threads: 4 }).unwrap();
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            // Wall time differs; everything measured must not.
            let mut b = b.clone();
            b.wall_ms = a.wall_ms;
            assert_eq!(a, &b);
        }
        assert_eq!(serial.total.messages_total, parallel.total.messages_total);
    }

    #[test]
    fn failing_runs_are_recorded_not_fatal() {
        let spec = r#"
            [[scenario]]
            name = "bad-root"
            graph = { family = "path", n = 4 }
            root = 9
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        assert_eq!(report.total.runs, 1);
        assert_eq!(report.total.failures, 1);
        assert!(report.runs[0].error.as_deref().unwrap().contains("root"));
    }
}
