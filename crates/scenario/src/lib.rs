//! # mdst-scenario
//!
//! Declarative scenario harness for the Blin–Butelle MDST reproduction: it
//! turns the one-shot `mdst_core::Pipeline` session into a campaign engine.
//! Experiments are described in TOML (or JSON), expanded into a cartesian
//! product of runs, executed across threads, checked against the paper's
//! `O(Δ* + log n)` degree bound, and persisted as JSON/CSV.
//!
//! ## Module map
//!
//! | Module | Contents |
//! |---|---|
//! | [`spec`] | `ScenarioMatrix` / `ScenarioSpec` / `RunSpec`: the declarative spec language and its cartesian expansion |
//! | [`io`] | edge-list, DIMACS, METIS and MatrixMarket readers/writers with transparent gzip — external graph files (and whole benchmark suites) as first-class pipeline inputs |
//! | [`toml`] | self-contained TOML subset parser feeding [`spec`] (the registry `toml` crate is unavailable offline) |
//! | [`runner`] | the parallel batch runner: scoped thread pool, campaign-wide [`runner::TopologyCache`] (one shared `Arc<Graph>` per distinct source), per-run records, per-scenario and campaign aggregates |
//! | [`report`] | JSON / CSV sinks and the human-readable summary |
//! | [`diff`] | report-vs-report comparison behind `scenario diff` (regression gate for CI): outcome/bound/degree/error regressions, opt-in wall-time thresholds, text or markdown rendering |
//!
//! The `scenario` binary wires these together:
//!
//! ```text
//! scenario run examples/sweep.toml --out campaign.json --csv campaign.csv
//! scenario run examples/executors.toml --jobs 4 --shuffle 42
//! scenario run examples/suite.toml        # on-disk benchmark files (graph_files axis)
//! scenario expand examples/sweep.toml     # print the resolved run list
//! scenario validate examples/sweep.toml   # check the spec without running it
//! scenario audit trace.json               # happens-before audit of a recorded trace
//! scenario diff base.json cand.json       # regression gate between two reports
//! scenario diff base.json cand.json --wall-ms-tolerance 25 --markdown
//! ```
//!
//! `--jobs N` (alias `--threads`) caps runner parallelism; without it the
//! spec's `campaign.parallelism` key, then one thread per CPU, applies.
//! `--shuffle [SEED]` claims runs in a seeded random order so long runs
//! start early; the seed lands in the report and the records stay in
//! expansion order. `--progress` attaches a streaming `mdst_core::Observer`
//! to every run and prints one line per finished run without touching the
//! records.
//!
//! ## Spec format
//!
//! ```text
//! [campaign]
//! name = "sweep"
//!
//! [[scenario]]
//! name = "gnp"
//! graph = { family = "gnp_connected", n = [16, 32], p = [0.1, 0.2] }
//! initial = ["greedy_hub", "bfs"]          # axis: initial-tree construction
//! delay = [ "unit", { model = "uniform", min = 1, max = 5 } ]
//! start = { model = "staggered", max_offset = 10 }
//! seeds = [1, 2, 3]                        # axis: replication / graph seeds
//!
//! [[scenario]]
//! name = "external"
//! graph = { path = "data/network.col" }    # edge-list / DIMACS / METIS / MatrixMarket
//!
//! [[scenario]]
//! name = "suite"                           # a whole on-disk suite as an axis
//! graph_files = ["data/sample.mtx.gz", "data/sample.graph", "data/sample.el.gz"]
//! ```
//!
//! Every list-valued field is an axis; the run list is the cartesian product
//! of all axes (graph parameters included). File formats are inferred from
//! the extension under an optional `.gz` (gzip is decompressed
//! transparently) or forced with `graph_format`. The campaign runner builds
//! every distinct topology exactly once and shares it as an `Arc<Graph>`
//! across all runs that sweep it. Checked-in examples live at
//! `examples/sweep.toml`, `examples/faults.toml`, `examples/executors.toml`
//! and `examples/suite.toml` in the repository root.
//!
//! ## Executor axis
//!
//! The optional `executor` axis picks the `mdst_netsim` backend per run:
//!
//! ```text
//! executor = ["sim", "threaded", "pool"]   # default: "sim"
//! workers = 8                              # pool worker cap (0 / omitted = auto)
//! ```
//!
//! * `sim` — the deterministic discrete-event simulator (full delay/fault
//!   support, trace recording);
//! * `threaded` — one OS thread per node over FIFO channels (real
//!   nondeterministic scheduling);
//! * `pool` — a fixed work-stealing worker pool multiplexing thousands of
//!   nodes (the scale backend).
//!
//! The non-sim backends schedule on real threads, so they only combine with
//! unit delays, simultaneous starts and fault-free plans; the parser rejects
//! any other combination at load time. The backend label and its measured
//! `exec_wall_ms` appear in every run record, so cross-backend campaigns
//! double as agreement checks: the improvement protocol is
//! message-deterministic and every backend must land inside the paper's
//! degree bound on the same seed/topology.
//!
//! ## Audit axis
//!
//! The optional boolean `audit` axis records a message trace on *every*
//! backend (the simulator stamps simulated time; the threaded and pool
//! runtimes stamp an atomic global order) and replays it through the
//! `mdst-analysis` happens-before auditor when the run finishes:
//!
//! ```text
//! audit = true             # or [false, true] to sweep both
//! ```
//!
//! The run record gains `audit_findings` (violation count) and `audit_rules`
//! (the distinct rule labels that fired); per-scenario stats count `audited`
//! runs and `audit_violations`, and `scenario run` exits non-zero when any
//! audited run trips the auditor — races and ordering violations gate CI the
//! same way degree-bound violations do.
//!
//! ## Fault model
//!
//! The optional `faults` axis injects failures into the improvement phase of
//! each run (the initial-tree construction stays fault-free, so campaigns
//! isolate the robustness of the improvement protocol). Each entry is either
//! the string `"none"` or a table:
//!
//! ```text
//! faults = [
//!     "none",                                  # explicit fault-free control
//!     { loss = 0.05 },                         # drop 5% of all sends
//!     { crashes = [[3, 40], [7, 90]] },        # crash-stop node 3 at t=40, node 7 at t=90
//!     { cuts = [[0, 1, 25]] },                 # sever link {0, 1} at t=25
//! ]
//! ```
//!
//! Loss coins are drawn from a per-run seeded stream, so drop and crash
//! counts reproduce exactly for a given seed. A benign entry (`"none"` or
//! `loss = 0.0` with no crashes/cuts) produces run records *bit-identical*
//! to the same spec without a `faults` key.
//!
//! ## Outcome taxonomy
//!
//! Every run is classified by [`runner::RunOutcome`] — the driver's unified
//! `mdst_core::Outcome` (`Optimal` / `PartialTree` / `EventLimitAborted`)
//! plus the runner-level `Failed` state, under the report labels that
//! predate the unified enum:
//!
//! * **`quiesced-correct`** — the network quiesced, every live node
//!   terminated, and the final tree spans the *survivor component* (the
//!   largest connected component of the graph induced on non-crashed nodes;
//!   the whole graph when nothing crashed);
//! * **`quiesced-partial`** — the network quiesced but the snapshot is stale
//!   or partial: some live node never received `Stop`, or the surviving tree
//!   edges do not span the survivor component;
//! * **`event-limit-abort`** — the simulator's event cap was hit first;
//! * **`failed`** — the run could not start (graph build / spec / config
//!   error).
//!
//! Degree bounds in the per-run records are computed on the survivor
//! component, and `within_bound` is only judged for `quiesced-correct` runs —
//! a snapshot interrupted mid-improvement may exceed the paper's bound
//! without contradicting the theorem. Fault-free runs that end in anything
//! but `quiesced-correct` are additionally recorded as failures, preserving
//! the guarantee that campaigns fail loudly when the protocol misbehaves on
//! a reliable network.
//!
//! ## Library use
//!
//! ```
//! use mdst_scenario::prelude::*;
//!
//! let spec = r#"
//!     [[scenario]]
//!     name = "demo"
//!     graph = { family = "star_with_leaf_edges", n = [8, 10] }
//!     seeds = [1, 2]
//! "#;
//! let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
//! let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
//! assert_eq!(report.total.runs, 4);
//! assert_eq!(report.total.bound_violations, 0);
//! println!("{}", campaign_to_json(&report));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod io;
pub mod report;
pub mod runner;
pub mod spec;
pub mod toml;

pub use diff::{diff_reports, diff_reports_with, DiffFinding, DiffOptions, ReportDiff};
pub use io::{load_graph, save_graph, GraphFormat, IoError};
pub use report::{campaign_to_csv, campaign_to_json};
pub use runner::{
    aggregate_records, execute_run, execute_run_controlled, run_campaign, run_key, CampaignReport,
    PredictedMs, RunControls, RunOutcome, RunRecord, RunnerConfig, TopologyCache,
};
pub use spec::{FaultSpec, RunSpec, ScenarioMatrix, ScenarioSpec, SpecError};

/// Everything a campaign driver typically needs in scope.
pub mod prelude {
    pub use crate::diff::{diff_reports, diff_reports_with, DiffFinding, DiffOptions, ReportDiff};
    pub use crate::io::{load_graph, parse_graph, render_graph, save_graph, GraphFormat, IoError};
    pub use crate::report::{campaign_to_csv, campaign_to_json, summarize, write_csv, write_json};
    pub use crate::runner::{
        aggregate_records, execute_run, execute_run_cached, execute_run_controlled, execute_runs,
        run_campaign, run_key, CampaignReport, PredictedMs, RunControls, RunOutcome, RunRecord,
        RunnerConfig, ScenarioStats, TopologyCache,
    };
    pub use crate::spec::{
        parse_initial_kind, FaultSpec, GraphSpec, ResolvedGraph, RunSpec, ScenarioMatrix,
        ScenarioSpec, SpecError,
    };
}
