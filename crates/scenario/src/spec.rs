//! Declarative scenario specifications.
//!
//! A [`ScenarioMatrix`] describes an experiment campaign: one or more
//! [`ScenarioSpec`]s, each naming a graph source (a generator family with
//! parameter *lists*, or an external file), the initial-tree constructions,
//! delay models, start models and seeds to sweep. [`ScenarioMatrix::expand`]
//! takes the cartesian product of every axis and yields the flat list of
//! [`RunSpec`]s the parallel runner executes.
//!
//! Specs load from TOML (see `examples/sweep.toml`) or JSON; both decode into
//! the same [`serde::Value`] tree, so the two formats are interchangeable.

use crate::io::GraphFormat;
use crate::toml;
use mdst_graph::{generators, Graph, NodeId};
use mdst_netsim::sim::StartModel;
use mdst_netsim::{CrashAt, CutAt, DelayModel, ExecutorKind, FaultPlan, SimConfig};
use mdst_spanning::InitialTreeKind;
use serde::Value;
use std::fmt;

/// Error produced while loading, validating or expanding a scenario spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn spec_err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A full campaign: a name plus the scenarios to sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    /// Campaign name (used in reports).
    pub name: String,
    /// Default cap on runner worker threads (`[campaign] parallelism = N`);
    /// `None` means one per available CPU. A non-zero
    /// `RunnerConfig::threads` (the CLI `--jobs` flag) overrides it.
    pub parallelism: Option<usize>,
    /// The scenarios; each expands independently.
    pub scenarios: Vec<ScenarioSpec>,
}

/// One scenario: a graph source and the axes swept over it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used to group campaign statistics).
    pub name: String,
    /// Where graphs come from.
    pub graph: GraphSpec,
    /// Initial-tree constructions to sweep (see [`parse_initial_kind`]).
    pub initial: Vec<String>,
    /// Delay models to sweep.
    pub delay: Vec<DelaySpec>,
    /// Start models to sweep.
    pub start: Vec<StartSpec>,
    /// Fault plans to sweep (message loss, node crashes, link cuts).
    pub faults: Vec<FaultSpec>,
    /// Executor backends to sweep (`"sim"`, `"threaded"`, `"pool"`). The
    /// non-sim backends only combine with unit delays, simultaneous starts
    /// and benign fault plans; the spec parser rejects anything else.
    pub executor: Vec<ExecutorKind>,
    /// Worker threads for pool-backed runs (`0` = auto).
    pub workers: usize,
    /// Drain-batch axis for pool-backed runs (`batch = 128` /
    /// `batch = [0, 16, 256]`; `0` = the backend default). Swept like any
    /// other axis so campaigns can chart throughput against batch size.
    pub batch: Vec<usize>,
    /// Trace-audit axis (`audit = true` / `audit = [false, true]`). Audited
    /// runs record a message trace on every backend and replay it through the
    /// `mdst-analysis` happens-before auditor after the run finishes.
    pub audit: Vec<bool>,
    /// Seeds to sweep; each seed produces an independent run (and, for seeded
    /// generator families, an independent graph).
    pub seeds: Vec<u64>,
    /// Root / initiator node of every run.
    pub root: usize,
    /// Event cap handed to the simulator.
    pub max_events: u64,
}

/// Graph source of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// A generator family from [`mdst_graph::generators`], each parameter
    /// given as a single value or a list of values to sweep.
    Family {
        /// Family name, e.g. `"gnp_connected"`.
        family: String,
        /// Parameter lists, in spec order.
        params: Vec<(String, Vec<ParamValue>)>,
    },
    /// An external graph file (edge list, DIMACS, METIS or MatrixMarket;
    /// `.gz` variants decompress transparently).
    File {
        /// Path, relative to the process working directory.
        path: String,
        /// Explicit format; inferred from the extension when absent.
        format: Option<GraphFormat>,
    },
    /// A list of external graph files swept as an axis
    /// (`graph_files = ["a.mtx.gz", "b.graph", …]`): each file expands to
    /// its own set of runs, so a published benchmark suite sweeps straight
    /// from disk.
    Files {
        /// Paths, relative to the process working directory.
        paths: Vec<String>,
        /// Explicit format applied to every file; per-file extension
        /// inference when absent.
        format: Option<GraphFormat>,
    },
}

/// A scalar generator parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// Integer-valued parameter (sizes, counts).
    Int(u64),
    /// Real-valued parameter (probabilities, radii).
    Float(f64),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
        }
    }
}

impl ParamValue {
    fn as_usize(&self) -> Result<usize, SpecError> {
        match self {
            ParamValue::Int(i) => {
                usize::try_from(*i).map_err(|_| SpecError("parameter too large".into()))
            }
            ParamValue::Float(_) => spec_err("expected an integer parameter"),
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Int(i) => *i as f64,
            ParamValue::Float(x) => *x,
        }
    }
}

/// Delay model axis entry (the per-run RNG seed is filled in at expansion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelaySpec {
    /// Unit delays (the paper's accounting model).
    Unit,
    /// Seeded uniform random delays in `[min, max]`.
    Uniform {
        /// Smallest delay.
        min: u64,
        /// Largest delay.
        max: u64,
    },
    /// Fixed per-link delays in `[min, max]` (adversarially skewed network).
    PerLink {
        /// Smallest delay.
        min: u64,
        /// Largest delay.
        max: u64,
    },
}

impl DelaySpec {
    /// Concrete delay model for one run.
    pub fn to_model(&self, seed: u64) -> DelayModel {
        match *self {
            DelaySpec::Unit => DelayModel::Unit,
            DelaySpec::Uniform { min, max } => DelayModel::UniformRandom { min, max, seed },
            DelaySpec::PerLink { min, max } => DelayModel::PerLinkFixed { min, max, seed },
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            DelaySpec::Unit => "unit".to_string(),
            DelaySpec::Uniform { min, max } => format!("uniform({min},{max})"),
            DelaySpec::PerLink { min, max } => format!("per-link({min},{max})"),
        }
    }
}

/// Fault-injection axis entry. The per-run loss seed is filled in at
/// expansion, like the delay seed, so replicated seeds replicate the faults.
///
/// TOML shape (every field optional; `faults = "none"` is the explicit
/// no-fault entry):
///
/// ```text
/// faults = [
///     "none",
///     { loss = 0.05 },
///     { loss = 0.01, crashes = [[3, 40]], cuts = [[0, 1, 25]] },
/// ]
/// ```
///
/// `crashes` entries are `[node, time]` pairs; `cuts` entries are
/// `[u, v, time]` triples cutting the undirected link `{u, v}` at `time`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Per-send message-loss probability in `[0, 1]`.
    pub loss: f64,
    /// Scheduled crashes as `(node, time)` pairs.
    pub crashes: Vec<(usize, u64)>,
    /// Scheduled link cuts as `(u, v, time)` triples.
    pub cuts: Vec<(usize, usize, u64)>,
}

impl FaultSpec {
    /// The no-fault entry (the implicit value when a scenario has no
    /// `faults` key).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Whether this entry injects nothing.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.crashes.is_empty() && self.cuts.is_empty()
    }

    /// Concrete fault plan for one run. A benign spec produces the default
    /// (empty) plan — seed included — so a `faults = "none"` run is
    /// bit-identical to a run from a spec without a `faults` key.
    pub fn to_plan(&self, seed: u64) -> FaultPlan {
        if self.is_none() {
            return FaultPlan::none();
        }
        FaultPlan {
            loss: self.loss,
            seed,
            crashes: self
                .crashes
                .iter()
                .map(|&(node, at)| CrashAt {
                    node: NodeId::new(node),
                    at,
                })
                .collect(),
            cuts: self
                .cuts
                .iter()
                .map(|&(a, b, at)| CutAt {
                    a: NodeId::new(a),
                    b: NodeId::new(b),
                    at,
                })
                .collect(),
        }
    }

    /// Short label used in reports, e.g. `loss(0.05)+crashes(2)`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.loss > 0.0 {
            parts.push(format!("loss({})", self.loss));
        }
        if !self.crashes.is_empty() {
            parts.push(format!("crashes({})", self.crashes.len()));
        }
        if !self.cuts.is_empty() {
            parts.push(format!("cuts({})", self.cuts.len()));
        }
        parts.join("+")
    }

    fn from_spec_value(value: &Value, scenario: &str) -> Result<Self, SpecError> {
        if let Some(s) = value.as_str() {
            return match s {
                "none" => Ok(FaultSpec::none()),
                other => spec_err(format!(
                    "scenario `{scenario}`: unknown faults entry `{other}` \
                     (\"none\", or a table with loss / crashes / cuts)"
                )),
            };
        }
        let Some(obj) = value.as_object() else {
            return spec_err(format!(
                "scenario `{scenario}`: every faults entry must be \"none\" or a table"
            ));
        };
        for (key, _) in obj {
            if !matches!(key.as_str(), "loss" | "crashes" | "cuts") {
                return spec_err(format!(
                    "scenario `{scenario}`: faults table does not take a key `{key}` \
                     (accepted: loss, crashes, cuts)"
                ));
            }
        }
        let loss = match value.get("loss") {
            None => 0.0,
            Some(v) => v.as_f64().ok_or_else(|| {
                SpecError(format!(
                    "scenario `{scenario}`: faults `loss` must be a number"
                ))
            })?,
        };
        if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
            return spec_err(format!(
                "scenario `{scenario}`: faults `loss` must be in [0, 1], got {loss}"
            ));
        }
        let crashes = match value.get("crashes") {
            None => Vec::new(),
            Some(v) => tuple_list::<2>(v)
                .ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{scenario}`: faults `crashes` must be a list of \
                         [node, time] integer pairs"
                    ))
                })?
                .into_iter()
                .map(|[node, at]| (node as usize, at))
                .collect(),
        };
        let cuts = match value.get("cuts") {
            None => Vec::new(),
            Some(v) => tuple_list::<3>(v)
                .ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{scenario}`: faults `cuts` must be a list of \
                         [u, v, time] integer triples"
                    ))
                })?
                .into_iter()
                .map(|[a, b, at]| (a as usize, b as usize, at))
                .collect(),
        };
        Ok(FaultSpec {
            loss,
            crashes,
            cuts,
        })
    }
}

/// Start model axis entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StartSpec {
    /// Every node wakes at time zero.
    Simultaneous,
    /// Random wake-ups in `[0, max_offset]`.
    Staggered {
        /// Largest wake-up offset.
        max_offset: u64,
    },
}

impl StartSpec {
    /// Concrete start model for one run.
    pub fn to_model(&self, seed: u64) -> StartModel {
        match *self {
            StartSpec::Simultaneous => StartModel::Simultaneous,
            StartSpec::Staggered { max_offset } => StartModel::Staggered { max_offset, seed },
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            StartSpec::Simultaneous => "simultaneous".to_string(),
            StartSpec::Staggered { max_offset } => format!("staggered({max_offset})"),
        }
    }
}

/// A fully resolved graph source for one run.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedGraph {
    /// A generator family with scalar parameters.
    Family {
        /// Family name.
        family: String,
        /// Resolved scalar parameters, in spec order.
        params: Vec<(String, ParamValue)>,
    },
    /// An external file.
    File {
        /// Path to the file.
        path: String,
        /// Explicit format, if any.
        format: Option<GraphFormat>,
    },
}

impl ResolvedGraph {
    /// Human-readable label, e.g. `gnp_connected(n=32,p=0.1)`.
    pub fn label(&self) -> String {
        match self {
            ResolvedGraph::Family { family, params } => {
                if params.is_empty() {
                    format!("{family}()")
                } else {
                    let args: Vec<String> =
                        params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("{family}({})", args.join(","))
                }
            }
            ResolvedGraph::File { path, .. } => format!("file({path})"),
        }
    }

    fn param(&self, name: &str) -> Option<ParamValue> {
        match self {
            ResolvedGraph::Family { params, .. } => {
                params.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
            }
            ResolvedGraph::File { .. } => None,
        }
    }

    /// Declared node-count hint of the source, readable before any build:
    /// the `n` parameter of a generator family. `None` for file sources and
    /// parameterless families (the serve cost model then falls back to
    /// observed sizes, or to no prediction at all).
    pub fn n_hint(&self) -> Option<usize> {
        self.param("n").and_then(|v| v.as_usize().ok())
    }

    fn usize_param(&self, name: &str, family: &str) -> Result<usize, SpecError> {
        self.param(name)
            .ok_or_else(|| SpecError(format!("family `{family}` needs parameter `{name}`")))?
            .as_usize()
            .map_err(|e| SpecError(format!("family `{family}`, parameter `{name}`: {e}")))
    }

    fn f64_param(&self, name: &str, family: &str) -> Result<f64, SpecError> {
        Ok(self
            .param(name)
            .ok_or_else(|| SpecError(format!("family `{family}` needs parameter `{name}`")))?
            .as_f64())
    }

    /// Builds the graph. `seed` drives the seeded families (a `seed` parameter
    /// in the spec, if present, is added as a fixed offset so sweeps can be
    /// displaced without rewriting the seed list).
    pub fn build(&self, seed: u64) -> Result<Graph, SpecError> {
        match self {
            ResolvedGraph::File { path, format } => crate::io::load_graph(path, *format)
                .map_err(|e| SpecError(format!("loading `{path}`: {e}"))),
            ResolvedGraph::Family { family, .. } => {
                let offset = match self.param("seed") {
                    None => 0,
                    Some(ParamValue::Int(i)) => i,
                    Some(ParamValue::Float(_)) => {
                        return spec_err(format!(
                            "family `{family}`: the `seed` parameter must be an integer"
                        ))
                    }
                };
                let seed = seed.wrapping_add(offset);
                let g = match family.as_str() {
                    "complete" => generators::complete(self.usize_param("n", family)?),
                    "path" => generators::path(self.usize_param("n", family)?),
                    "cycle" => generators::cycle(self.usize_param("n", family)?),
                    "star" => generators::star(self.usize_param("n", family)?),
                    "wheel" => generators::wheel(self.usize_param("n", family)?),
                    "star_with_leaf_edges" | "star_plus_path" => {
                        generators::star_with_leaf_edges(self.usize_param("n", family)?)
                    }
                    "petersen" => generators::petersen(),
                    "grid" => generators::grid(
                        self.usize_param("rows", family)?,
                        self.usize_param("cols", family)?,
                    ),
                    "hypercube" => generators::hypercube(self.usize_param("d", family)?),
                    "complete_bipartite" => generators::complete_bipartite(
                        self.usize_param("a", family)?,
                        self.usize_param("b", family)?,
                    ),
                    "binary_tree_plus" => generators::binary_tree_plus(
                        self.usize_param("n", family)?,
                        self.usize_param("extra", family)?,
                        seed,
                    ),
                    "caterpillar" => generators::caterpillar(
                        self.usize_param("spine", family)?,
                        self.usize_param("legs", family)?,
                    ),
                    "barbell" => generators::barbell(
                        self.usize_param("k", family)?,
                        self.usize_param("bridge", family)?,
                    ),
                    "lollipop" => generators::lollipop(
                        self.usize_param("k", family)?,
                        self.usize_param("tail", family)?,
                    ),
                    "gnp" => generators::gnp(
                        self.usize_param("n", family)?,
                        self.f64_param("p", family)?,
                        seed,
                    ),
                    "gnp_connected" => generators::gnp_connected(
                        self.usize_param("n", family)?,
                        self.f64_param("p", family)?,
                        seed,
                    ),
                    "random_geometric_connected" | "geometric" => {
                        generators::random_geometric_connected(
                            self.usize_param("n", family)?,
                            self.f64_param("radius", family)?,
                            seed,
                        )
                    }
                    "random_connected" => generators::random_connected(
                        self.usize_param("n", family)?,
                        self.usize_param("extra", family)?,
                        seed,
                    ),
                    "high_optimum" => generators::high_optimum(
                        self.usize_param("branches", family)?,
                        self.usize_param("branch_len", family)?,
                    ),
                    other => {
                        return spec_err(format!(
                            "unknown graph family `{other}` (known: {})",
                            KNOWN_FAMILIES.join(", ")
                        ))
                    }
                };
                g.map_err(|e| SpecError(format!("{}: {e}", self.label())))
            }
        }
    }
}

/// Generator families the spec language accepts.
pub const KNOWN_FAMILIES: &[&str] = &[
    "complete",
    "path",
    "cycle",
    "star",
    "wheel",
    "star_with_leaf_edges",
    "petersen",
    "grid",
    "hypercube",
    "complete_bipartite",
    "binary_tree_plus",
    "caterpillar",
    "barbell",
    "lollipop",
    "gnp",
    "gnp_connected",
    "random_geometric_connected",
    "random_connected",
    "high_optimum",
];

/// The parameters each family accepts (beyond the optional `seed` offset of
/// the seeded families). Canonical family names only; aliases are normalised
/// before lookup.
fn family_params(family: &str) -> Option<(&'static [&'static str], bool)> {
    // (accepted parameter names, takes a seed)
    Some(match family {
        "complete" | "path" | "cycle" | "star" | "wheel" | "star_with_leaf_edges" => {
            (&["n"], false)
        }
        "petersen" => (&[], false),
        "grid" => (&["rows", "cols"], false),
        "hypercube" => (&["d"], false),
        "complete_bipartite" => (&["a", "b"], false),
        "binary_tree_plus" => (&["n", "extra"], true),
        "caterpillar" => (&["spine", "legs"], false),
        "barbell" => (&["k", "bridge"], false),
        "lollipop" => (&["k", "tail"], false),
        "gnp" | "gnp_connected" => (&["n", "p"], true),
        "random_geometric_connected" => (&["n", "radius"], true),
        "random_connected" => (&["n", "extra"], true),
        "high_optimum" => (&["branches", "branch_len"], false),
        _ => return None,
    })
}

/// Parses a graph-format spelling from a spec (`format` / `graph_format`).
fn parse_format_name(spelling: &str, scenario: &str) -> Result<GraphFormat, SpecError> {
    match spelling.to_ascii_lowercase().replace('-', "_").as_str() {
        "edge_list" | "edgelist" | "el" => Ok(GraphFormat::EdgeList),
        "dimacs" => Ok(GraphFormat::Dimacs),
        "metis" | "graph" => Ok(GraphFormat::Metis),
        "matrix_market" | "matrixmarket" | "mtx" => Ok(GraphFormat::MatrixMarket),
        other => Err(SpecError(format!(
            "scenario `{scenario}`: unknown graph format `{other}` \
             (edge_list | dimacs | metis | matrix_market)"
        ))),
    }
}

/// Normalises the family aliases accepted by [`ResolvedGraph::build`].
fn canonical_family(family: &str) -> &str {
    match family {
        "star_plus_path" => "star_with_leaf_edges",
        "geometric" => "random_geometric_connected",
        other => other,
    }
}

/// One executable unit of a campaign: a fully resolved configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Name of the scenario this run belongs to.
    pub scenario: String,
    /// Graph source with resolved parameters.
    pub graph: ResolvedGraph,
    /// Initial-tree construction name (resolved via [`parse_initial_kind`]).
    pub initial: String,
    /// Delay model axis entry.
    pub delay: DelaySpec,
    /// Start model axis entry.
    pub start: StartSpec,
    /// Fault-injection axis entry.
    pub faults: FaultSpec,
    /// Executor backend of this run.
    pub executor: ExecutorKind,
    /// Worker threads for the pool backend (`0` = auto).
    pub workers: usize,
    /// Drain-batch size for the pool backend (`0` = backend default).
    pub batch: usize,
    /// Whether this run records a trace and feeds it to the happens-before
    /// auditor.
    pub audit: bool,
    /// Seed of the run (drives graph generation, delays, start offsets and
    /// the loss coin stream).
    pub seed: u64,
    /// Root / initiator.
    pub root: usize,
    /// Simulator event cap.
    pub max_events: u64,
}

impl RunSpec {
    /// The pipeline configuration of this run.
    pub fn pipeline_config(&self) -> Result<mdst_core::PipelineConfig, SpecError> {
        Ok(mdst_core::PipelineConfig {
            initial: parse_initial_kind(&self.initial, self.seed)?,
            root: NodeId::new(self.root),
            sim: SimConfig {
                delay: self.delay.to_model(self.seed ^ 0xD1B5_4A32_D192_ED03),
                start: self.start.to_model(self.seed ^ 0x8CB9_2BA7_2F3D_8DD7),
                max_events: self.max_events,
                record_trace: self.audit,
                faults: self.faults.to_plan(self.seed ^ 0x1F85_D2F6_0B5E_AD4C),
            },
            executor: self.executor,
            workers: self.workers,
            batch: self.batch,
        })
    }
}

/// Resolves an initial-tree construction name.
pub fn parse_initial_kind(name: &str, seed: u64) -> Result<InitialTreeKind, SpecError> {
    match name.to_ascii_lowercase().replace('-', "_").as_str() {
        "greedy_hub" | "greedyhub" => Ok(InitialTreeKind::GreedyHub),
        "bfs" => Ok(InitialTreeKind::Bfs),
        "dfs" => Ok(InitialTreeKind::Dfs),
        "random" => Ok(InitialTreeKind::Random(seed)),
        "flooding" | "dist_flooding" | "distributed_flooding" => {
            Ok(InitialTreeKind::DistributedFlooding)
        }
        "token" | "dist_token" | "distributed_token" => Ok(InitialTreeKind::DistributedToken),
        other => spec_err(format!(
            "unknown initial tree kind `{other}` \
             (known: greedy_hub, bfs, dfs, random, flooding, token)"
        )),
    }
}

impl ScenarioMatrix {
    /// Loads a matrix from TOML text.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        let value = toml::parse(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_spec_value(&value)
    }

    /// Loads a matrix from JSON text.
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        let value = serde::from_json_str(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_spec_value(&value)
    }

    /// Loads a matrix from a file, dispatching on the `.json` extension
    /// (everything else is treated as TOML).
    pub fn from_path(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("{}: {e}", path.display())))?;
        if path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
        {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }

    /// Decodes a matrix from a spec [`Value`] tree (shared by TOML and JSON).
    pub fn from_spec_value(value: &Value) -> Result<Self, SpecError> {
        let name = match value.get("campaign").and_then(|c| c.get("name")) {
            Some(v) => v
                .as_str()
                .ok_or_else(|| SpecError("campaign.name must be a string".into()))?
                .to_string(),
            None => "campaign".to_string(),
        };
        let parallelism = match value.get("campaign").and_then(|c| c.get("parallelism")) {
            None => None,
            Some(v) => {
                let p = v.as_u64().ok_or_else(|| {
                    SpecError("campaign.parallelism must be a positive integer".into())
                })?;
                if p == 0 {
                    return spec_err("campaign.parallelism must be at least 1");
                }
                Some(p as usize)
            }
        };
        let Some(list) = value.get("scenario") else {
            return spec_err("spec has no [[scenario]] entries");
        };
        let list = list
            .as_array()
            .ok_or_else(|| SpecError("`scenario` must be an array of tables".into()))?;
        if list.is_empty() {
            return spec_err("spec has no [[scenario]] entries");
        }
        let scenarios = list
            .iter()
            .map(ScenarioSpec::from_spec_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScenarioMatrix {
            name,
            parallelism,
            scenarios,
        })
    }

    /// Expands every scenario into its cartesian product of runs.
    pub fn expand(&self) -> Result<Vec<RunSpec>, SpecError> {
        let mut runs = Vec::new();
        for scenario in &self.scenarios {
            scenario.expand_into(&mut runs)?;
        }
        Ok(runs)
    }
}

impl ScenarioSpec {
    fn from_spec_value(value: &Value) -> Result<Self, SpecError> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError("every scenario needs a string `name`".into()))?
            .to_string();
        let graph = match (value.get("graph"), value.get("graph_files")) {
            (Some(_), Some(_)) => {
                return spec_err(format!(
                    "scenario `{name}`: give either a `graph` table or a `graph_files` \
                     list, not both"
                ))
            }
            (Some(g), None) => GraphSpec::from_spec_value(g, &name)?,
            (None, Some(files)) => {
                let paths = string_list(files).ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{name}`: `graph_files` must be a string or list of strings"
                    ))
                })?;
                if paths.is_empty() {
                    return spec_err(format!("scenario `{name}`: `graph_files` is empty"));
                }
                let format = match value.get("graph_format").and_then(Value::as_str) {
                    None => None,
                    Some(spelling) => Some(parse_format_name(spelling, &name)?),
                };
                GraphSpec::Files { paths, format }
            }
            (None, None) => {
                return spec_err(format!(
                    "scenario `{name}` has no `graph` table (or `graph_files` list)"
                ))
            }
        };
        let initial = match value.get("initial") {
            None => vec!["greedy_hub".to_string()],
            Some(v) => string_list(v).ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `initial` must be a string or list of strings"
                ))
            })?,
        };
        let delay = match value.get("delay") {
            None => vec![DelaySpec::Unit],
            Some(v) => one_or_many(v)
                .iter()
                .map(|d| DelaySpec::from_spec_value(d, &name))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let start = match value.get("start") {
            None => vec![StartSpec::Simultaneous],
            Some(v) => one_or_many(v)
                .iter()
                .map(|s| StartSpec::from_spec_value(s, &name))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let faults = match value.get("faults") {
            None => vec![FaultSpec::none()],
            Some(v) => one_or_many(v)
                .iter()
                .map(|f| FaultSpec::from_spec_value(f, &name))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let executor = match value.get("executor") {
            None => vec![ExecutorKind::Sim],
            Some(v) => {
                let names = string_list(v).ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{name}`: `executor` must be a string or list of strings"
                    ))
                })?;
                names
                    .iter()
                    .map(|s| {
                        ExecutorKind::parse(s)
                            .map_err(|e| SpecError(format!("scenario `{name}`: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        // The non-sim backends schedule on real threads: no simulated delays,
        // no staggered clock, no fault injection. Reject the cross product at
        // parse time instead of failing runs one by one — the author should
        // split the scenario.
        if executor.iter().any(|&e| e != ExecutorKind::Sim) {
            if delay.iter().any(|d| !matches!(d, DelaySpec::Unit)) {
                return spec_err(format!(
                    "scenario `{name}`: executor `threaded`/`pool` cannot combine with a \
                     non-unit `delay` axis; split the scenario or drop the delay models"
                ));
            }
            if start.iter().any(|s| !matches!(s, StartSpec::Simultaneous)) {
                return spec_err(format!(
                    "scenario `{name}`: executor `threaded`/`pool` cannot combine with a \
                     staggered `start` axis; split the scenario"
                ));
            }
            if faults.iter().any(|f| !f.is_none()) {
                return spec_err(format!(
                    "scenario `{name}`: executor `threaded`/`pool` cannot combine with a \
                     `faults` axis (fault injection needs the simulated clock); split the scenario"
                ));
            }
        }
        let workers = match value.get("workers") {
            None => 0,
            Some(v) => v.as_u64().ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `workers` must be a non-negative integer"
                ))
            })? as usize,
        };
        let batch = match value.get("batch") {
            None => vec![0],
            Some(v) => u64_list(v)
                .map(|l| l.into_iter().map(|b| b as usize).collect::<Vec<_>>())
                .ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{name}`: `batch` must be a non-negative integer \
                         or list of non-negative integers"
                    ))
                })?,
        };
        let audit = match value.get("audit") {
            None => vec![false],
            Some(v) => bool_list(v).ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `audit` must be a boolean or list of booleans"
                ))
            })?,
        };
        let seeds = match value.get("seeds") {
            None => vec![1],
            Some(v) => u64_list(v).ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `seeds` must be an integer or list of integers"
                ))
            })?,
        };
        let root = match value.get("root") {
            None => 0,
            Some(v) => v.as_u64().ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `root` must be a non-negative integer"
                ))
            })? as usize,
        };
        let max_events = match value.get("max_events") {
            None => SimConfig::default().max_events,
            Some(v) => v.as_u64().ok_or_else(|| {
                SpecError(format!(
                    "scenario `{name}`: `max_events` must be an integer"
                ))
            })?,
        };
        if seeds.is_empty()
            || initial.is_empty()
            || delay.is_empty()
            || start.is_empty()
            || faults.is_empty()
            || executor.is_empty()
            || batch.is_empty()
            || audit.is_empty()
        {
            return spec_err(format!("scenario `{name}`: empty sweep axis"));
        }
        Ok(ScenarioSpec {
            name,
            graph,
            initial,
            delay,
            start,
            faults,
            executor,
            workers,
            batch,
            audit,
            seeds,
            root,
            max_events,
        })
    }

    fn expand_into(&self, runs: &mut Vec<RunSpec>) -> Result<(), SpecError> {
        for graph in self.graph.resolve_all()? {
            for initial in &self.initial {
                for delay in &self.delay {
                    for start in &self.start {
                        for faults in &self.faults {
                            for &executor in &self.executor {
                                for &batch in &self.batch {
                                    for &audit in &self.audit {
                                        for &seed in &self.seeds {
                                            runs.push(RunSpec {
                                                scenario: self.name.clone(),
                                                graph: graph.clone(),
                                                initial: initial.clone(),
                                                delay: *delay,
                                                start: *start,
                                                faults: faults.clone(),
                                                executor,
                                                workers: self.workers,
                                                batch,
                                                audit,
                                                seed,
                                                root: self.root,
                                                max_events: self.max_events,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl GraphSpec {
    fn from_spec_value(value: &Value, scenario: &str) -> Result<Self, SpecError> {
        let obj = value
            .as_object()
            .ok_or_else(|| SpecError(format!("scenario `{scenario}`: `graph` must be a table")))?;
        if let Some(path) = value.get("path") {
            let path = path
                .as_str()
                .ok_or_else(|| {
                    SpecError(format!(
                        "scenario `{scenario}`: graph `path` must be a string"
                    ))
                })?
                .to_string();
            let format = match value.get("format").and_then(Value::as_str) {
                None => None,
                Some(spelling) => Some(parse_format_name(spelling, scenario)?),
            };
            return Ok(GraphSpec::File { path, format });
        }
        let Some(family) = value.get("family").and_then(Value::as_str) else {
            return spec_err(format!(
                "scenario `{scenario}`: graph table needs `family = \"...\"` or `path = \"...\"`"
            ));
        };
        let mut params = Vec::new();
        for (key, v) in obj {
            if key == "family" {
                continue;
            }
            let list = param_list(v).ok_or_else(|| {
                SpecError(format!(
                    "scenario `{scenario}`: graph parameter `{key}` must be a number or list of numbers"
                ))
            })?;
            if list.is_empty() {
                return spec_err(format!(
                    "scenario `{scenario}`: graph parameter `{key}` is an empty list"
                ));
            }
            params.push((key.clone(), list));
        }
        Ok(GraphSpec::Family {
            family: family.to_string(),
            params,
        })
    }

    /// All resolved parameter combinations (cartesian product of the lists;
    /// one resolved source per file for the `graph_files` axis).
    pub fn resolve_all(&self) -> Result<Vec<ResolvedGraph>, SpecError> {
        match self {
            GraphSpec::File { path, format } => Ok(vec![ResolvedGraph::File {
                path: path.clone(),
                format: *format,
            }]),
            GraphSpec::Files { paths, format } => Ok(paths
                .iter()
                .map(|path| ResolvedGraph::File {
                    path: path.clone(),
                    format: *format,
                })
                .collect()),
            GraphSpec::Family { family, params } => {
                let Some((accepted, seeded)) = family_params(canonical_family(family)) else {
                    return spec_err(format!(
                        "unknown graph family `{family}` (known: {})",
                        KNOWN_FAMILIES.join(", ")
                    ));
                };
                for (key, _) in params {
                    let known = accepted.contains(&key.as_str()) || (seeded && key == "seed");
                    if !known {
                        return spec_err(format!(
                            "family `{family}` does not take a parameter `{key}` (accepted: {}{})",
                            if accepted.is_empty() {
                                "none".to_string()
                            } else {
                                accepted.join(", ")
                            },
                            if seeded { ", seed" } else { "" },
                        ));
                    }
                }
                let mut combos = vec![Vec::new()];
                for (key, values) in params {
                    let mut next = Vec::with_capacity(combos.len() * values.len());
                    for combo in &combos {
                        for v in values {
                            let mut c: Vec<(String, ParamValue)> = combo.clone();
                            c.push((key.clone(), *v));
                            next.push(c);
                        }
                    }
                    combos = next;
                }
                Ok(combos
                    .into_iter()
                    .map(|params| ResolvedGraph::Family {
                        family: family.clone(),
                        params,
                    })
                    .collect())
            }
        }
    }
}

impl DelaySpec {
    fn from_spec_value(value: &Value, scenario: &str) -> Result<Self, SpecError> {
        if let Some(s) = value.as_str() {
            return match s {
                "unit" => Ok(DelaySpec::Unit),
                other => spec_err(format!(
                    "scenario `{scenario}`: unknown delay `{other}` (unit, or a table with model = uniform | per_link)"
                )),
            };
        }
        let model = value.get("model").and_then(Value::as_str).ok_or_else(|| {
            SpecError(format!("scenario `{scenario}`: delay table needs `model`"))
        })?;
        let min = value.get("min").and_then(Value::as_u64).unwrap_or(1);
        let max = value.get("max").and_then(Value::as_u64).unwrap_or(min);
        match model {
            "unit" => Ok(DelaySpec::Unit),
            "uniform" | "uniform_random" => Ok(DelaySpec::Uniform { min, max }),
            "per_link" | "per-link" | "per_link_fixed" => Ok(DelaySpec::PerLink { min, max }),
            other => spec_err(format!(
                "scenario `{scenario}`: unknown delay model `{other}` (unit | uniform | per_link)"
            )),
        }
    }
}

impl StartSpec {
    fn from_spec_value(value: &Value, scenario: &str) -> Result<Self, SpecError> {
        if let Some(s) = value.as_str() {
            return match s {
                "simultaneous" => Ok(StartSpec::Simultaneous),
                other => spec_err(format!(
                    "scenario `{scenario}`: unknown start `{other}` (simultaneous, or a table with model = staggered)"
                )),
            };
        }
        let model = value.get("model").and_then(Value::as_str).ok_or_else(|| {
            SpecError(format!("scenario `{scenario}`: start table needs `model`"))
        })?;
        match model {
            "simultaneous" => Ok(StartSpec::Simultaneous),
            "staggered" => Ok(StartSpec::Staggered {
                max_offset: value
                    .get("max_offset")
                    .and_then(Value::as_u64)
                    .unwrap_or(10),
            }),
            other => spec_err(format!(
                "scenario `{scenario}`: unknown start model `{other}` (simultaneous | staggered)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Value helpers (scalar-or-list acceptance)
// ---------------------------------------------------------------------------

fn one_or_many(v: &Value) -> Vec<&Value> {
    match v.as_array() {
        Some(items) => items.iter().collect(),
        None => vec![v],
    }
}

fn string_list(v: &Value) -> Option<Vec<String>> {
    one_or_many(v)
        .into_iter()
        .map(|item| item.as_str().map(str::to_string))
        .collect()
}

fn u64_list(v: &Value) -> Option<Vec<u64>> {
    one_or_many(v).into_iter().map(Value::as_u64).collect()
}

fn bool_list(v: &Value) -> Option<Vec<bool>> {
    one_or_many(v).into_iter().map(Value::as_bool).collect()
}

/// Decodes an array of fixed-width integer tuples, e.g. `[[3, 40], [5, 60]]`.
fn tuple_list<const W: usize>(v: &Value) -> Option<Vec<[u64; W]>> {
    let items = v.as_array()?;
    items
        .iter()
        .map(|item| {
            let fields = item.as_array()?;
            if fields.len() != W {
                return None;
            }
            let mut out = [0u64; W];
            for (slot, field) in out.iter_mut().zip(fields) {
                *slot = field.as_u64()?;
            }
            Some(out)
        })
        .collect()
}

fn param_scalar(v: &Value) -> Option<ParamValue> {
    if let Some(u) = v.as_u64() {
        Some(ParamValue::Int(u))
    } else {
        match v {
            Value::Float(f) => Some(ParamValue::Float(*f)),
            _ => None,
        }
    }
}

fn param_list(v: &Value) -> Option<Vec<ParamValue>> {
    one_or_many(v).into_iter().map(param_scalar).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        [campaign]
        name = "demo"

        [[scenario]]
        name = "gnp"
        graph = { family = "gnp_connected", n = [8, 12], p = [0.2, 0.4] }
        initial = ["greedy_hub", "bfs"]
        seeds = [1, 2, 3]

        [[scenario]]
        name = "worst"
        graph = { family = "star_with_leaf_edges", n = 10 }
        delay = [{ model = "uniform", min = 1, max = 5 }, "unit"]
        start = { model = "staggered", max_offset = 7 }
    "#;

    #[test]
    fn expansion_takes_the_cartesian_product() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        assert_eq!(matrix.name, "demo");
        assert_eq!(matrix.scenarios.len(), 2);
        let runs = matrix.expand().unwrap();
        // gnp: 2 n × 2 p × 2 initial × 1 delay × 1 start × 3 seeds = 24
        // worst: 1 graph × 1 initial × 2 delay × 1 start × 1 seed = 2
        assert_eq!(runs.len(), 26);
        assert_eq!(runs.iter().filter(|r| r.scenario == "gnp").count(), 24);
        let labels: std::collections::BTreeSet<String> = runs
            .iter()
            .filter(|r| r.scenario == "gnp")
            .map(|r| r.graph.label())
            .collect();
        assert_eq!(labels.len(), 4);
        assert!(labels.contains("gnp_connected(n=8,p=0.2)"));
    }

    #[test]
    fn json_specs_are_equivalent_to_toml() {
        let json = r#"{
            "campaign": {"name": "demo"},
            "scenario": [{
                "name": "gnp",
                "graph": {"family": "gnp_connected", "n": [8, 12], "p": [0.2, 0.4]},
                "initial": ["greedy_hub", "bfs"],
                "seeds": [1, 2, 3]
            }, {
                "name": "worst",
                "graph": {"family": "star_with_leaf_edges", "n": 10},
                "delay": [{"model": "uniform", "min": 1, "max": 5}, "unit"],
                "start": {"model": "staggered", "max_offset": 7}
            }]
        }"#;
        let a = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let b = ScenarioMatrix::from_json_str(json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resolved_graphs_build() {
        let matrix = ScenarioMatrix::from_toml_str(SPEC).unwrap();
        let runs = matrix.expand().unwrap();
        for run in runs.iter().take(4) {
            let g = run.graph.build(run.seed).unwrap();
            assert!(g.node_count() >= 8);
            run.pipeline_config().unwrap();
        }
    }

    #[test]
    fn seeded_families_vary_with_the_seed() {
        let g = ResolvedGraph::Family {
            family: "gnp_connected".to_string(),
            params: vec![
                ("n".to_string(), ParamValue::Int(16)),
                ("p".to_string(), ParamValue::Float(0.3)),
            ],
        };
        assert_ne!(g.build(1).unwrap(), g.build(2).unwrap());
        assert_eq!(g.build(1).unwrap(), g.build(1).unwrap());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        assert!(ScenarioMatrix::from_toml_str("").is_err());
        let no_name = "[[scenario]]\ngraph = { family = \"path\", n = 4 }\n";
        assert!(ScenarioMatrix::from_toml_str(no_name).is_err());
        let bad_family = "[[scenario]]\nname = \"x\"\ngraph = { family = \"mobius\", n = 4 }\n";
        let m = ScenarioMatrix::from_toml_str(bad_family).unwrap();
        let err = m.expand().unwrap_err();
        assert!(err.to_string().contains("mobius"));
        let bad_initial = "[[scenario]]\nname = \"x\"\ngraph = { family = \"path\", n = 4 }\ninitial = \"steiner\"\n";
        let m = ScenarioMatrix::from_toml_str(bad_initial).unwrap();
        let run = &m.expand().unwrap()[0];
        assert!(run.pipeline_config().is_err());
    }

    #[test]
    fn unknown_graph_parameters_are_rejected() {
        // A stray parameter must fail expansion, not silently run a
        // differently shaped graph than the label claims.
        let stray = "[[scenario]]\nname = \"x\"\ngraph = { family = \"petersen\", n = 64 }\n";
        let err = ScenarioMatrix::from_toml_str(stray)
            .unwrap()
            .expand()
            .unwrap_err();
        assert!(err.to_string().contains("`n`"), "{err}");
        let typo =
            "[[scenario]]\nname = \"x\"\ngraph = { family = \"grid\", rows = 3, colums = 4 }\n";
        let err = ScenarioMatrix::from_toml_str(typo)
            .unwrap()
            .expand()
            .unwrap_err();
        assert!(err.to_string().contains("colums"), "{err}");
        // Seeded families accept the optional `seed` offset; others do not.
        let seeded =
            "[[scenario]]\nname = \"x\"\ngraph = { family = \"gnp\", n = 8, p = 0.5, seed = 7 }\n";
        ScenarioMatrix::from_toml_str(seeded)
            .unwrap()
            .expand()
            .unwrap();
        let unseeded =
            "[[scenario]]\nname = \"x\"\ngraph = { family = \"path\", n = 8, seed = 7 }\n";
        assert!(ScenarioMatrix::from_toml_str(unseeded)
            .unwrap()
            .expand()
            .is_err());
    }

    #[test]
    fn float_seed_offsets_are_rejected_not_ignored() {
        let g = ResolvedGraph::Family {
            family: "gnp_connected".to_string(),
            params: vec![
                ("n".to_string(), ParamValue::Int(8)),
                ("p".to_string(), ParamValue::Float(0.5)),
                ("seed".to_string(), ParamValue::Float(77.0)),
            ],
        };
        let err = g.build(1).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn family_aliases_expand_and_build() {
        for alias in ["star_plus_path", "geometric"] {
            let spec = format!(
                "[[scenario]]\nname = \"x\"\ngraph = {{ family = \"{alias}\", n = 8{} }}\n",
                if alias == "geometric" {
                    ", radius = 0.5"
                } else {
                    ""
                }
            );
            let runs = ScenarioMatrix::from_toml_str(&spec)
                .unwrap()
                .expand()
                .unwrap();
            runs[0].graph.build(1).unwrap();
        }
    }

    #[test]
    fn fault_axes_expand_and_produce_plans() {
        let spec = r#"
            [[scenario]]
            name = "faulty"
            graph = { family = "path", n = 6 }
            faults = [
                "none",
                { loss = 0.25 },
                { loss = 0.1, crashes = [[3, 40], [5, 60]], cuts = [[0, 1, 25]] },
            ]
            seeds = [1, 2]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let runs = matrix.expand().unwrap();
        assert_eq!(runs.len(), 3 * 2);
        let labels: Vec<String> = runs.iter().map(|r| r.faults.label()).collect();
        assert!(labels.contains(&"none".to_string()));
        assert!(labels.contains(&"loss(0.25)".to_string()));
        assert!(labels.contains(&"loss(0.1)+crashes(2)+cuts(1)".to_string()));
        let faulty = runs
            .iter()
            .find(|r| !r.faults.is_none() && !r.faults.crashes.is_empty())
            .unwrap();
        let plan = faulty.faults.to_plan(7);
        assert_eq!(plan.loss, 0.1);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.cuts.len(), 1);
        assert_eq!(plan.crashes[0].node, NodeId(3));
        assert_eq!(plan.crashes[0].at, 40);
        // The benign entry maps to the default plan, seed included, so it is
        // indistinguishable from a spec without a `faults` key.
        let benign = runs.iter().find(|r| r.faults.is_none()).unwrap();
        assert_eq!(benign.faults.to_plan(7), FaultPlan::none());
        benign.pipeline_config().unwrap();
        faulty.pipeline_config().unwrap();
    }

    #[test]
    fn scenarios_without_faults_get_the_implicit_none_axis() {
        let spec = "[[scenario]]\nname = \"x\"\ngraph = { family = \"path\", n = 4 }\n";
        let runs = ScenarioMatrix::from_toml_str(spec)
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].faults.is_none());
        assert_eq!(runs[0].faults.label(), "none");
        assert_eq!(
            runs[0].pipeline_config().unwrap().sim.faults,
            FaultPlan::none()
        );
    }

    #[test]
    fn malformed_fault_axes_are_rejected() {
        let cases = [
            // Loss outside [0, 1].
            "faults = { loss = 1.5 }",
            // Unknown string entry.
            "faults = \"chaos\"",
            // Unknown key in the table.
            "faults = { lossiness = 0.1 }",
            // Crashes must be [node, time] pairs.
            "faults = { crashes = [3] }",
            "faults = { crashes = [[3]] }",
            "faults = [{ crashes = [[3, 4, 5]] }]",
            // Cuts must be [u, v, time] triples.
            "faults = { cuts = [[0, 1]] }",
            // Scalar where a list of tuples is expected.
            "faults = { cuts = 7 }",
        ];
        for case in cases {
            let spec = format!(
                "[[scenario]]\nname = \"x\"\ngraph = {{ family = \"path\", n = 4 }}\n{case}\n"
            );
            let err = ScenarioMatrix::from_toml_str(&spec);
            assert!(err.is_err(), "accepted malformed fault axis: {case}");
        }
    }

    #[test]
    fn graph_files_axis_expands_one_source_per_file() {
        let spec = r#"
            [[scenario]]
            name = "suite"
            graph_files = ["a.mtx.gz", "b.graph", "c.el"]
            initial = ["greedy_hub", "bfs"]
            seeds = [1, 2]
        "#;
        let runs = ScenarioMatrix::from_toml_str(spec)
            .unwrap()
            .expand()
            .unwrap();
        // 3 files × 2 initial × 2 seeds.
        assert_eq!(runs.len(), 12);
        let labels: std::collections::BTreeSet<String> =
            runs.iter().map(|r| r.graph.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains("file(a.mtx.gz)"));
        assert!(labels.contains("file(b.graph)"));
        // A single string is accepted as a one-file list.
        let single = "[[scenario]]\nname = \"s\"\ngraph_files = \"only.mtx\"\n";
        let runs = ScenarioMatrix::from_toml_str(single)
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn graph_files_axis_rejects_conflicts_and_unknown_formats() {
        let both = r#"
            [[scenario]]
            name = "x"
            graph = { family = "path", n = 4 }
            graph_files = ["a.el"]
        "#;
        let err = ScenarioMatrix::from_toml_str(both).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");

        let empty = "[[scenario]]\nname = \"x\"\ngraph_files = []\n";
        assert!(ScenarioMatrix::from_toml_str(empty).is_err());

        let bad_format = r#"
            [[scenario]]
            name = "x"
            graph_files = ["a.data"]
            graph_format = "hdf5"
        "#;
        let err = ScenarioMatrix::from_toml_str(bad_format).unwrap_err();
        assert!(err.to_string().contains("hdf5"), "{err}");

        // An explicit format overrides extension inference for every file.
        let forced = r#"
            [[scenario]]
            name = "x"
            graph_files = ["a.data", "b.data"]
            graph_format = "mtx"
        "#;
        let matrix = ScenarioMatrix::from_toml_str(forced).unwrap();
        let runs = matrix.expand().unwrap();
        for run in &runs {
            let ResolvedGraph::File { format, .. } = &run.graph else {
                panic!("file source expected");
            };
            assert_eq!(*format, Some(GraphFormat::MatrixMarket));
        }
    }

    #[test]
    fn graph_table_accepts_the_new_format_spellings() {
        for (spelling, expected) in [
            ("metis", GraphFormat::Metis),
            ("matrix_market", GraphFormat::MatrixMarket),
            ("matrix-market", GraphFormat::MatrixMarket),
            ("mtx", GraphFormat::MatrixMarket),
            ("edge_list", GraphFormat::EdgeList),
            ("dimacs", GraphFormat::Dimacs),
        ] {
            let spec = format!(
                "[[scenario]]\nname = \"x\"\ngraph = {{ path = \"g.data\", format = \"{spelling}\" }}\n"
            );
            let matrix = ScenarioMatrix::from_toml_str(&spec).unwrap();
            let runs = matrix.expand().unwrap();
            let ResolvedGraph::File { format, .. } = &runs[0].graph else {
                panic!("file source expected");
            };
            assert_eq!(*format, Some(expected), "{spelling}");
        }
    }

    #[test]
    fn unknown_executor_names_are_spec_errors_not_panics() {
        let spec = r#"
            [[scenario]]
            name = "x"
            graph = { family = "path", n = 4 }
            executor = ["sim", "quantum"]
        "#;
        let err = ScenarioMatrix::from_toml_str(spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scenario `x`"), "{msg}");
        assert!(msg.contains("unknown executor `quantum`"), "{msg}");
        assert!(msg.contains("sim, threaded, pool"), "{msg}");
    }

    #[test]
    fn initial_kinds_cover_all_constructions() {
        for name in ["greedy_hub", "bfs", "dfs", "random", "flooding", "token"] {
            parse_initial_kind(name, 3).unwrap();
        }
        assert_eq!(
            parse_initial_kind("random", 9).unwrap(),
            InitialTreeKind::Random(9)
        );
        assert!(parse_initial_kind("nope", 0).is_err());
    }
}
