//! Graph file I/O: edge-list, DIMACS, METIS and MatrixMarket formats, with
//! transparent gzip decompression.
//!
//! External graphs become first-class pipeline inputs through this module.
//! Four interchange formats are supported, all line-oriented and widely used
//! by graph repositories:
//!
//! * **edge list** — one `u v` pair per line, 0-based, `#`/`%` comments; the
//!   node count is `max(endpoint) + 1`;
//! * **DIMACS** — `c` comment lines, one `p edge <n> <m>` problem line, then
//!   `m` lines `e u v` with 1-based endpoints (the format of the DIMACS
//!   colouring/clique benchmarks, also produced by many generators);
//! * **METIS** — a `<n> <m> [fmt [ncon]]` header followed by one adjacency
//!   line per vertex (1-based neighbours, `%` comments), the input format of
//!   the METIS/KaHIP partitioner family. Vertex and edge weights are parsed
//!   and discarded (the model's links are uniform);
//! * **MatrixMarket** — `%%MatrixMarket matrix coordinate … …` sparse
//!   matrices read as adjacency structure (1-based `i j [value]` entries,
//!   diagonal entries dropped, values discarded) — the format of the
//!   SuiteSparse collection most MDST-adjacent papers benchmark on.
//!
//! All readers reject self loops (METIS/edge-list/DIMACS) and out-of-range
//! endpoints; duplicate edges and both orientations are tolerated where the
//! ecosystem produces them. Writers produce canonical output, so
//! `read(write(g))` reproduces `g` exactly for every format.
//!
//! Files ending in `.gz` (or starting with the gzip magic bytes, whatever
//! the name) are decompressed transparently by [`load_graph`]; the format is
//! inferred from the extension *under* the `.gz`, so `web.mtx.gz` is a
//! gzipped MatrixMarket file.
//!
//! The edge-list, METIS and MatrixMarket readers **stream**: two passes over
//! the input (count degrees, then place edges into exactly-sized CSR rows)
//! build the compact layout without ever materialising an intermediate edge
//! vector — and gzipped inputs inflate chunk by chunk through the
//! incremental decoder, so a million-edge `.el.gz` costs its finished graph
//! plus fixed-size buffers, not its inflated text.

use mdst_graph::{Graph, GraphBuilder, GraphError, NodeId, StreamingBuilder};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Supported on-disk graph formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GraphFormat {
    /// `u v` pairs, 0-based.
    EdgeList,
    /// DIMACS `p edge` / `e u v`, 1-based.
    Dimacs,
    /// METIS adjacency file (`n m [fmt [ncon]]` header, 1-based).
    Metis,
    /// MatrixMarket coordinate matrix read as adjacency (1-based).
    MatrixMarket,
}

impl GraphFormat {
    /// Guesses the format from the file extension: `.col`, `.clq`, `.gr` and
    /// `.dimacs` are DIMACS; `.graph` and `.metis` are METIS; `.mtx` is
    /// MatrixMarket; everything else is an edge list. A trailing `.gz` is
    /// stripped first, so double extensions (`.mtx.gz`, `.graph.gz`,
    /// `.el.gz`) resolve to the format of the compressed payload.
    pub fn from_path(path: &Path) -> GraphFormat {
        let mut ext = path
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase);
        if ext.as_deref() == Some("gz") {
            // `x.mtx.gz` → file_stem `x.mtx` → extension `mtx`.
            ext = path
                .file_stem()
                .map(Path::new)
                .and_then(|stem| stem.extension())
                .and_then(|e| e.to_str())
                .map(str::to_ascii_lowercase);
        }
        match ext.as_deref() {
            Some("col") | Some("clq") | Some("gr") | Some("dimacs") => GraphFormat::Dimacs,
            Some("graph") | Some("metis") => GraphFormat::Metis,
            Some("mtx") => GraphFormat::MatrixMarket,
            _ => GraphFormat::EdgeList,
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GraphFormat::EdgeList => "edge-list",
            GraphFormat::Dimacs => "dimacs",
            GraphFormat::Metis => "metis",
            GraphFormat::MatrixMarket => "matrix-market",
        }
    }
}

/// Errors produced while reading or writing graph files.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// Filesystem problem (missing file, permissions, …).
    Io(String),
    /// The input contained no graph at all (empty file, or comments only).
    /// Not a [`IoError::Parse`]: there is no offending line to point at.
    Empty {
        /// What was being parsed, e.g. `"edge list"`.
        what: &'static str,
    },
    /// Malformed content, with the offending 1-based line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// File-level inconsistency that no single line is responsible for
    /// (e.g. a DIMACS header whose edge count disagrees with the body).
    Inconsistent {
        /// Human-readable description.
        message: String,
    },
    /// Structurally invalid graph (self loop, out-of-range endpoint, …).
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(msg) => write!(f, "I/O error: {msg}"),
            IoError::Empty { what } => {
                write!(f, "empty input: the {what} contains no graph data")
            }
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IoError::Inconsistent { message } => write!(f, "inconsistent input: {message}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn parse_err<T>(line: usize, message: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Parse {
        line,
        message: message.into(),
    })
}

/// Strips `#` / `%` comments and surrounding whitespace.
fn strip_line(raw: &str) -> &str {
    let no_comment = match raw.find(['#', '%']) {
        Some(i) => &raw[..i],
        None => raw,
    };
    no_comment.trim()
}

/// Drives `f` over `reader`'s lines with 1-based numbers, reusing one buffer
/// so million-line files do not allocate per line.
fn for_each_line<R: BufRead>(
    mut reader: R,
    mut f: impl FnMut(usize, &str) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        line_no += 1;
        let n = reader
            .read_line(&mut line)
            .map_err(|e| IoError::Io(e.to_string()))?;
        if n == 0 {
            return Ok(());
        }
        if line.ends_with('\n') {
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
        }
        f(line_no, &line)?;
    }
}

// ---------------------------------------------------------------------------
// Edge list
// ---------------------------------------------------------------------------

/// Parses one edge-list line; `Ok(None)` for blanks and comments.
fn edge_list_line(line_no: usize, raw: &str) -> Result<Option<(usize, usize)>, IoError> {
    let line = strip_line(raw);
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
        return parse_err(line_no, format!("expected `u v`, got `{line}`"));
    };
    if parts.next().is_some() {
        return parse_err(
            line_no,
            format!("expected exactly two endpoints on `{line}`"),
        );
    }
    let u: usize = a.parse().map_err(|_| IoError::Parse {
        line: line_no,
        message: format!("`{a}` is not a node index"),
    })?;
    let v: usize = b.parse().map_err(|_| IoError::Parse {
        line: line_no,
        message: format!("`{b}` is not a node index"),
    })?;
    if u == v {
        return parse_err(line_no, format!("self loop `{u} {v}` is not allowed"));
    }
    Ok(Some((u, v)))
}

/// Streams an edge list straight into the compact CSR layout: pass 1 counts
/// degrees (discovering the node count as `max(endpoint) + 1`), pass 2 places
/// edges into exactly-sized rows. No intermediate edge vector is ever
/// materialised, so peak memory is the finished graph plus one line buffer.
/// `open` reopens the input for each pass.
pub fn stream_edge_list<R: BufRead>(
    mut open: impl FnMut() -> Result<R, IoError>,
) -> Result<Graph, IoError> {
    let mut builder = StreamingBuilder::new(0)?;
    let mut edges = 0u64;
    for_each_line(open()?, |line_no, raw| {
        if let Some((u, v)) = edge_list_line(line_no, raw)? {
            let n = u.max(v).checked_add(1).ok_or(GraphError::TooLarge {
                what: "nodes",
                count: u64::MAX,
                limit: u32::MAX as u64 + 1,
            })?;
            builder.ensure_nodes(n)?;
            builder.count_edge(NodeId::new(u), NodeId::new(v))?;
            edges += 1;
        }
        Ok(())
    })?;
    if edges == 0 {
        return Err(IoError::Empty { what: "edge list" });
    }
    builder.start_placement()?;
    for_each_line(open()?, |line_no, raw| {
        if let Some((u, v)) = edge_list_line(line_no, raw)? {
            builder.place_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(())
    })?;
    Ok(builder.finish()?)
}

/// Parses an edge list (`u v` per line, 0-based).
pub fn parse_edge_list(input: &str) -> Result<Graph, IoError> {
    stream_edge_list(|| Ok(input.as_bytes()))
}

/// Renders a graph as a canonical edge list.
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# mdst edge list: {} nodes, {} edges\n",
        graph.node_count(),
        graph.edge_count()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{} {}\n", u.index(), v.index()));
    }
    out
}

// ---------------------------------------------------------------------------
// DIMACS
// ---------------------------------------------------------------------------

/// Parses a DIMACS graph (`p edge n m`, `e u v` with 1-based endpoints).
pub fn parse_dimacs(input: &str) -> Result<Graph, IoError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return parse_err(line_no, "duplicate problem line");
                }
                let format = parts.next().unwrap_or("");
                if format != "edge" && format != "sp" && format != "graph" {
                    return parse_err(line_no, format!("unsupported problem type `{format}`"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "problem line needs a node count".to_string(),
                    })?;
                let m: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "problem line needs an edge count".to_string(),
                    })?;
                if n == 0 {
                    return parse_err(line_no, "DIMACS graph must have at least one node");
                }
                builder = Some(GraphBuilder::new(n));
                declared_edges = m;
            }
            Some("e") | Some("a") => {
                let Some(b) = builder.as_mut() else {
                    return parse_err(line_no, "edge before problem line");
                };
                let u: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "edge line needs two endpoints".to_string(),
                    })?;
                let v: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "edge line needs two endpoints".to_string(),
                    })?;
                if u == 0 || v == 0 {
                    return parse_err(line_no, "DIMACS endpoints are 1-based");
                }
                if u == v {
                    return parse_err(line_no, format!("self loop `e {u} {v}` is not allowed"));
                }
                b.add_edge_idempotent(NodeId::new(u - 1), NodeId::new(v - 1))?;
                seen_edges += 1;
            }
            Some(other) => {
                return parse_err(line_no, format!("unknown DIMACS line type `{other}`"));
            }
            None => unreachable!("line is non-empty"),
        }
    }
    let Some(builder) = builder else {
        // No problem line seen: either the file is empty (or comments only),
        // which gets the dedicated empty-input error, or it is plain invalid.
        return Err(IoError::Empty {
            what: "DIMACS file (no `p edge <n> <m>` problem line)",
        });
    };
    // Published DIMACS files disagree on whether `m` counts undirected edges
    // or edge *lines* (some list both orientations), so either reading is
    // accepted — anything else (truncated file, surplus lines, wrong header)
    // is an error.
    let unique_edges = builder.edge_count();
    if declared_edges != unique_edges && declared_edges != seen_edges {
        return Err(IoError::Inconsistent {
            message: format!(
                "problem line declares {declared_edges} edges but the file has \
                 {seen_edges} edge lines ({unique_edges} distinct edges)"
            ),
        });
    }
    Ok(builder.build())
}

/// Renders a graph in DIMACS `edge` format.
pub fn to_dimacs(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("c generated by mdst-scenario\n");
    out.push_str(&format!(
        "p edge {} {}\n",
        graph.node_count(),
        graph.edge_count()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    out
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

/// Parses a METIS adjacency file.
///
/// The header is `<n> <m> [fmt [ncon]]` where `m` counts *undirected* edges;
/// `fmt` is up to three binary digits enabling, from the right, edge weights,
/// vertex weights and vertex sizes; `ncon` is the number of vertex weights
/// per vertex. Weights are validated as numbers and discarded. Each of the
/// `n` following data lines lists the 1-based neighbours of one vertex; every
/// edge must appear in both endpoint lists (the file is an adjacency
/// structure, not an edge list), which the parser enforces by requiring
/// exactly `2·m` neighbour entries and `m` distinct edges.
pub fn parse_metis(input: &str) -> Result<Graph, IoError> {
    stream_metis(|| Ok(input.as_bytes()))
}

/// One event of a METIS scan, in file order.
enum MetisEvent {
    /// The header line was parsed; `n` vertex lines follow.
    Header {
        /// Declared vertex count.
        n: usize,
    },
    /// Vertex `u` lists neighbour `v` (both 0-based).
    Mention {
        /// The vertex whose adjacency line this is.
        u: usize,
        /// The listed neighbour.
        v: usize,
    },
}

/// What a METIS scan learns beyond the mentions themselves.
struct MetisScan {
    /// Undirected edge count the header declares.
    m: usize,
    /// Total directed neighbour mentions across all data lines.
    mentions: u64,
}

fn skip_metis_number(
    tokens: &mut std::str::SplitWhitespace<'_>,
    line_no: usize,
    what: &str,
) -> Result<(), IoError> {
    let token = tokens.next().ok_or_else(|| IoError::Parse {
        line: line_no,
        message: format!("vertex line ends before its {what}"),
    })?;
    token.parse::<f64>().map_err(|_| IoError::Parse {
        line: line_no,
        message: format!("`{token}` is not a numeric {what}"),
    })?;
    Ok(())
}

/// Parses a METIS file, driving `f` with the header and every directed
/// neighbour mention. All per-line validation (header shape, weights,
/// ranges, self loops, duplicated mentions, vertex-line count) lives here so
/// the two streaming passes agree exactly and every parse error carries its
/// line number. Duplicate mentions are detectable per line because a mention
/// `(u, v)` can only ever appear on `u`'s own adjacency line.
fn scan_metis<R: BufRead>(
    reader: R,
    f: &mut dyn FnMut(MetisEvent) -> Result<(), IoError>,
) -> Result<MetisScan, IoError> {
    // Header fields once parsed: (n, m, edge weights?, vertex weights?,
    // vertex sizes?, ncon).
    let mut header: Option<(usize, usize, bool, bool, bool, usize)> = None;
    let mut vertex = 0usize;
    let mut mentions = 0u64;
    let mut line_neighbors: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for_each_line(reader, |line_no, raw| {
        // Comments vanish; empty lines are *kept* for the data section,
        // because a METIS file is positional — an isolated vertex is exactly
        // one blank adjacency line.
        let line = raw.trim();
        if line.starts_with('%') {
            return Ok(());
        }
        let Some((n, _, has_edge_weights, has_vertex_weights, has_vertex_sizes, ncon)) = header
        else {
            if line.is_empty() {
                return Ok(()); // blank lines before the header are tolerated
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if !(2..=4).contains(&fields.len()) {
                return parse_err(line_no, "METIS header must be `n m [fmt [ncon]]`");
            }
            let n: usize = fields[0].parse().map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("`{}` is not a node count", fields[0]),
            })?;
            let m: usize = fields[1].parse().map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("`{}` is not an edge count", fields[1]),
            })?;
            if n == 0 {
                return parse_err(line_no, "METIS graph must have at least one vertex");
            }
            let fmt = fields.get(2).copied().unwrap_or("0");
            if fmt.len() > 3 || !fmt.bytes().all(|b| b == b'0' || b == b'1') {
                return parse_err(line_no, format!("invalid METIS fmt field `{fmt}`"));
            }
            let fmt_bits = usize::from_str_radix(fmt, 2).map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("invalid METIS fmt field `{fmt}`"),
            })?;
            let ncon: usize = match fields.get(3) {
                None => usize::from(fmt_bits & 0b010 != 0),
                Some(t) => t.parse().map_err(|_| IoError::Parse {
                    line: line_no,
                    message: format!("`{t}` is not an ncon count"),
                })?,
            };
            header = Some((
                n,
                m,
                fmt_bits & 0b001 != 0,
                fmt_bits & 0b010 != 0,
                fmt_bits & 0b100 != 0,
                ncon,
            ));
            return f(MetisEvent::Header { n });
        };
        if vertex >= n {
            if line.is_empty() {
                return Ok(()); // tolerate trailing blank lines after the last vertex
            }
            return parse_err(line_no, format!("more than {n} vertex lines"));
        }
        let u = vertex;
        vertex += 1;
        let mut tokens = line.split_whitespace();
        if has_vertex_sizes {
            skip_metis_number(&mut tokens, line_no, "vertex size")?;
        }
        for _ in 0..if has_vertex_weights { ncon } else { 0 } {
            skip_metis_number(&mut tokens, line_no, "vertex weight")?;
        }
        line_neighbors.clear();
        while let Some(token) = tokens.next() {
            let v: usize = token.parse().map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("`{token}` is not a neighbour index"),
            })?;
            if v == 0 || v > n {
                return parse_err(line_no, format!("neighbour {v} out of range 1..={n}"));
            }
            if v - 1 == u {
                return parse_err(line_no, format!("self loop on vertex {}", u + 1));
            }
            if !line_neighbors.insert(v - 1) {
                return parse_err(
                    line_no,
                    format!("vertex {} lists neighbour {v} twice", u + 1),
                );
            }
            mentions += 1;
            f(MetisEvent::Mention { u, v: v - 1 })?;
            if has_edge_weights {
                skip_metis_number(&mut tokens, line_no, "edge weight")?;
            }
        }
        Ok(())
    })?;
    let Some((n, m, ..)) = header else {
        return Err(IoError::Empty {
            what: "METIS file (no header line)",
        });
    };
    if vertex != n {
        return Err(IoError::Inconsistent {
            message: format!("header declares {n} vertices but the file has {vertex} data lines"),
        });
    }
    Ok(MetisScan { m, mentions })
}

/// Streams a METIS file into the compact CSR layout in two passes (count,
/// place); `open` reopens the input for each pass. Global adjacency symmetry
/// — every mention must have its reciprocal on the other endpoint's line —
/// is enforced by [`StreamingBuilder::finish_symmetric`] without any
/// per-mention bookkeeping.
pub fn stream_metis<R: BufRead>(
    mut open: impl FnMut() -> Result<R, IoError>,
) -> Result<Graph, IoError> {
    let mut started: Option<StreamingBuilder> = None;
    let info = scan_metis(open()?, &mut |event| {
        match event {
            MetisEvent::Header { n } => started = Some(StreamingBuilder::new(n)?),
            MetisEvent::Mention { u, v } => {
                let Some(b) = started.as_mut() else {
                    return Err(GraphError::StreamingMismatch(
                        "mention before the METIS header".to_string(),
                    )
                    .into());
                };
                b.count_arc(NodeId::new(u), NodeId::new(v))?;
            }
        }
        Ok(())
    })?;
    let Some(mut builder) = started.take() else {
        return Err(IoError::Empty {
            what: "METIS file (no header line)",
        });
    };
    builder.start_placement()?;
    scan_metis(open()?, &mut |event| {
        if let MetisEvent::Mention { u, v } = event {
            builder.place_arc(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(())
    })?;
    let graph = builder.finish_symmetric().map_err(|e| match e {
        // Which line is missing a mention is a file-level question, so these
        // surface as inconsistencies, not line-numbered parse errors.
        GraphError::AsymmetricAdjacency(..) | GraphError::DuplicateEdge(..) => {
            IoError::Inconsistent {
                message: e.to_string(),
            }
        }
        other => IoError::Graph(other),
    })?;
    // With symmetry established, `2·m` mentions over `m` distinct edges
    // pigeonholes to exactly both orientations of every edge.
    if graph.edge_count() != info.m || info.mentions != 2 * info.m as u64 {
        return Err(IoError::Inconsistent {
            message: format!(
                "header declares {} edges but the adjacency lists carry {} \
                 neighbour entries ({} distinct edges); every edge must appear in \
                 both endpoint lists",
                info.m,
                info.mentions,
                graph.edge_count()
            ),
        });
    }
    Ok(graph)
}

/// Renders a graph as a canonical METIS adjacency file.
pub fn to_metis(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("% generated by mdst-scenario\n");
    out.push_str(&format!("{} {}\n", graph.node_count(), graph.edge_count()));
    for u in graph.nodes() {
        let row: Vec<String> = graph
            .neighbors(u)
            .map(|v| (v.index() + 1).to_string())
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// MatrixMarket
// ---------------------------------------------------------------------------

/// Parses a MatrixMarket coordinate file as an undirected graph.
///
/// Accepts `matrix coordinate` headers with any field type (`pattern`,
/// `real`, `integer`, `complex`) and any symmetry (`general`, `symmetric`,
/// `skew-symmetric`, `hermitian`); values are discarded — only the sparsity
/// pattern matters to the network model. The matrix must be square; its
/// dimension is the node count, so isolated nodes survive a round trip.
/// Diagonal entries (self loops in graph terms) are dropped, as customary
/// when sparse-matrix benchmarks are read as graphs, and both orientations
/// of an off-diagonal entry collapse onto one undirected edge.
pub fn parse_matrix_market(input: &str) -> Result<Graph, IoError> {
    stream_matrix_market(|| Ok(input.as_bytes()))
}

/// One event of a MatrixMarket scan, in file order.
enum MmEvent {
    /// The size line was parsed; the matrix is `rows × rows`.
    Size {
        /// Matrix dimension (= node count).
        rows: usize,
    },
    /// An off-diagonal entry at 0-based `(i, j)` (diagonals are dropped
    /// before the events fire).
    Entry {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
    },
}

/// Parses a MatrixMarket coordinate file, driving `f` with the size line and
/// every off-diagonal entry. Banner, size-line and entry validation (and the
/// entry-count-vs-`nnz` check) all live here so the two streaming passes
/// agree exactly and every parse error carries its line number.
fn scan_matrix_market<R: BufRead>(
    reader: R,
    f: &mut dyn FnMut(MmEvent) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut banner_seen = false;
    let mut size: Option<usize> = None;
    let mut nnz = 0usize;
    let mut entries = 0usize;
    for_each_line(reader, |line_no, raw| {
        if line_no == 1 {
            let banner_fields: Vec<String> = raw
                .split_whitespace()
                .map(str::to_ascii_lowercase)
                .collect();
            if banner_fields.first().map(String::as_str) != Some("%%matrixmarket") {
                return parse_err(1, "missing `%%MatrixMarket` banner");
            }
            if banner_fields.len() != 5 {
                return parse_err(
                    1,
                    "banner must be `%%MatrixMarket matrix coordinate <field> <symmetry>`",
                );
            }
            if banner_fields[1] != "matrix" {
                return parse_err(1, format!("unsupported object `{}`", banner_fields[1]));
            }
            if banner_fields[2] != "coordinate" {
                return parse_err(
                    1,
                    format!(
                        "unsupported format `{}` (only sparse `coordinate` matrices describe graphs)",
                        banner_fields[2]
                    ),
                );
            }
            if !matches!(
                banner_fields[3].as_str(),
                "pattern" | "real" | "integer" | "double" | "complex"
            ) {
                return parse_err(1, format!("unsupported field type `{}`", banner_fields[3]));
            }
            if !matches!(
                banner_fields[4].as_str(),
                "general" | "symmetric" | "skew-symmetric" | "hermitian"
            ) {
                return parse_err(1, format!("unsupported symmetry `{}`", banner_fields[4]));
            }
            banner_seen = true;
            return Ok(());
        }
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            return Ok(());
        }
        let Some(rows) = size else {
            let dims: Vec<&str> = line.split_whitespace().collect();
            if dims.len() != 3 {
                return parse_err(line_no, "size line must be `rows cols nnz`");
            }
            let parse_dim = |token: &str| -> Result<usize, IoError> {
                token.parse().map_err(|_| IoError::Parse {
                    line: line_no,
                    message: format!("`{token}` is not a matrix dimension"),
                })
            };
            let rows = parse_dim(dims[0])?;
            let cols = parse_dim(dims[1])?;
            nnz = parse_dim(dims[2])?;
            if rows != cols {
                return Err(IoError::Inconsistent {
                    message: format!(
                        "matrix is {rows}×{cols}; only square matrices describe graphs"
                    ),
                });
            }
            if rows == 0 {
                return parse_err(line_no, "matrix must have at least one row");
            }
            size = Some(rows);
            return f(MmEvent::Size { rows });
        };
        let mut fields = line.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return parse_err(line_no, format!("expected `i j [value]`, got `{line}`"));
        };
        let i: usize = a.parse().map_err(|_| IoError::Parse {
            line: line_no,
            message: format!("`{a}` is not a row index"),
        })?;
        let j: usize = b.parse().map_err(|_| IoError::Parse {
            line: line_no,
            message: format!("`{b}` is not a column index"),
        })?;
        if i == 0 || i > rows || j == 0 || j > rows {
            return parse_err(
                line_no,
                format!("entry ({i}, {j}) outside a {rows}×{rows} matrix"),
            );
        }
        entries += 1;
        if i != j {
            return f(MmEvent::Entry { i: i - 1, j: j - 1 });
        }
        Ok(())
    })?;
    if !banner_seen {
        return Err(IoError::Empty {
            what: "MatrixMarket file",
        });
    }
    if size.is_none() {
        return Err(IoError::Empty {
            what: "MatrixMarket file (banner but no size line)",
        });
    }
    if entries != nnz {
        return Err(IoError::Inconsistent {
            message: format!("size line declares {nnz} entries but the file has {entries}"),
        });
    }
    Ok(())
}

/// Streams a MatrixMarket coordinate file into the compact CSR layout in two
/// passes (count, place); `open` reopens the input for each pass. Both
/// orientations of an entry collapse onto one undirected edge, matching
/// [`GraphBuilder::add_edge_idempotent`].
pub fn stream_matrix_market<R: BufRead>(
    mut open: impl FnMut() -> Result<R, IoError>,
) -> Result<Graph, IoError> {
    let mut started: Option<StreamingBuilder> = None;
    scan_matrix_market(open()?, &mut |event| {
        match event {
            MmEvent::Size { rows } => started = Some(StreamingBuilder::new(rows)?),
            MmEvent::Entry { i, j } => {
                let Some(b) = started.as_mut() else {
                    return Err(GraphError::StreamingMismatch(
                        "entry before the MatrixMarket size line".to_string(),
                    )
                    .into());
                };
                b.count_edge(NodeId::new(i), NodeId::new(j))?;
            }
        }
        Ok(())
    })?;
    let Some(mut builder) = started.take() else {
        return Err(IoError::Empty {
            what: "MatrixMarket file (banner but no size line)",
        });
    };
    builder.start_placement()?;
    scan_matrix_market(open()?, &mut |event| {
        if let MmEvent::Entry { i, j } = event {
            builder.place_edge(NodeId::new(i), NodeId::new(j))?;
        }
        Ok(())
    })?;
    Ok(builder.finish()?)
}

/// Renders a graph as a canonical MatrixMarket file (`pattern symmetric`,
/// lower-triangular entries).
pub fn to_matrix_market(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate pattern symmetric\n");
    out.push_str("% generated by mdst-scenario\n");
    out.push_str(&format!(
        "{n} {n} {m}\n",
        n = graph.node_count(),
        m = graph.edge_count()
    ));
    for (u, v) in graph.edges() {
        // Symmetric storage keeps the lower triangle: row ≥ column.
        out.push_str(&format!("{} {}\n", v.index() + 1, u.index() + 1));
    }
    out
}

// ---------------------------------------------------------------------------
// File-level helpers
// ---------------------------------------------------------------------------

/// Parses `input` in the given format.
pub fn parse_graph(input: &str, format: GraphFormat) -> Result<Graph, IoError> {
    match format {
        GraphFormat::EdgeList => parse_edge_list(input),
        GraphFormat::Dimacs => parse_dimacs(input),
        GraphFormat::Metis => parse_metis(input),
        GraphFormat::MatrixMarket => parse_matrix_market(input),
    }
}

/// Renders `graph` in the given format.
pub fn render_graph(graph: &Graph, format: GraphFormat) -> String {
    match format {
        GraphFormat::EdgeList => to_edge_list(graph),
        GraphFormat::Dimacs => to_dimacs(graph),
        GraphFormat::Metis => to_metis(graph),
        GraphFormat::MatrixMarket => to_matrix_market(graph),
    }
}

/// The two magic bytes every gzip member starts with.
const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

/// Opens `path` as a buffered line source, transparently layering the
/// streaming gzip decoder when the content starts with the gzip magic —
/// whatever the file is called, so benchmark suites work whether or not
/// their compression shows in the name. The decompressed stream is never
/// materialised: the decoder inflates chunk by chunk as lines are pulled.
fn open_lines(path: &Path) -> Result<Box<dyn BufRead>, IoError> {
    let file =
        std::fs::File::open(path).map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
    let mut reader = std::io::BufReader::new(file);
    let head = reader
        .fill_buf()
        .map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
    if head.starts_with(&GZIP_MAGIC) {
        Ok(Box::new(std::io::BufReader::new(
            flate2::read::GzDecoder::new(reader),
        )))
    } else {
        Ok(Box::new(reader))
    }
}

/// Loads a graph from a file, inferring the format from the extension when
/// none is given and gunzipping transparently (by content magic, not name).
///
/// Edge-list, METIS and MatrixMarket files are **streamed** into the compact
/// CSR layout in two passes over the file — the file content, inflated or
/// not, is never held in memory, so peak usage is the finished graph plus
/// fixed-size decode buffers. Gzipped inputs are decompressed twice (once
/// per pass), trading CPU for the memory bound. DIMACS still loads through
/// the buffered parser (its gzip layer streams all the same).
pub fn load_graph(path: impl AsRef<Path>, format: Option<GraphFormat>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let format = format.unwrap_or_else(|| GraphFormat::from_path(path));
    match format {
        GraphFormat::EdgeList => stream_edge_list(|| open_lines(path)),
        GraphFormat::Metis => stream_metis(|| open_lines(path)),
        GraphFormat::MatrixMarket => stream_matrix_market(|| open_lines(path)),
        GraphFormat::Dimacs => {
            use std::io::Read;
            let mut content = String::new();
            open_lines(path)?
                .read_to_string(&mut content)
                .map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
            parse_dimacs(&content)
        }
    }
}

/// Writes a graph to a file in the given (or extension-inferred) format,
/// gzip-compressing when the path ends in `.gz`.
pub fn save_graph(
    path: impl AsRef<Path>,
    graph: &Graph,
    format: Option<GraphFormat>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    let format = format.unwrap_or_else(|| GraphFormat::from_path(path));
    let rendered = render_graph(graph, format);
    let io_err = |e: std::io::Error| IoError::Io(format!("{}: {e}", path.display()));
    let is_gz = path
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("gz"));
    if is_gz {
        use std::io::Write;
        let mut encoder = flate2::write::GzEncoder::new(Vec::new(), flate2::Compression::default());
        encoder.write_all(rendered.as_bytes()).map_err(io_err)?;
        let compressed = encoder.finish().map_err(io_err)?;
        std::fs::write(path, compressed).map_err(io_err)
    } else {
        std::fs::write(path, rendered).map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn edge_list_round_trips() {
        let g = generators::petersen().unwrap();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn dimacs_round_trips() {
        let g = generators::gnp_connected(20, 0.2, 5).unwrap();
        let text = to_dimacs(&g);
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_tolerates_comments_and_duplicates() {
        let g =
            parse_edge_list("# header\n0 1\n% other comment style\n1 2 # inline\n2 1\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_rejects_malformed_input() {
        assert!(matches!(parse_edge_list("0"), Err(IoError::Parse { .. })));
        assert!(matches!(
            parse_edge_list("0 1 2"),
            Err(IoError::Parse { .. })
        ));
        assert!(matches!(parse_edge_list("a b"), Err(IoError::Parse { .. })));
        assert!(matches!(parse_edge_list("3 3"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn empty_inputs_get_the_dedicated_error_not_a_line_number() {
        for input in ["", "# only a comment\n", "% other comment style\n\n"] {
            let err = parse_edge_list(input).unwrap_err();
            assert!(matches!(err, IoError::Empty { .. }), "{input:?}: {err}");
            let text = err.to_string();
            assert!(text.contains("empty input"), "{text}");
            assert!(!text.contains("line 0"), "{text}");
        }
        let err = parse_dimacs("c comments only\n").unwrap_err();
        assert!(matches!(err, IoError::Empty { .. }), "{err}");
        // Header/body mismatches are file-level, not \"line 0\".
        let err = parse_dimacs("p edge 3 2\ne 1 2\n").unwrap_err();
        assert!(matches!(err, IoError::Inconsistent { .. }), "{err}");
        assert!(!err.to_string().contains("line 0"), "{err}");
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(parse_dimacs("e 1 2\n").is_err()); // edge before problem line
        assert!(parse_dimacs("p edge 0 0\n").is_err());
        assert!(parse_dimacs("p edge 3 2\ne 1 2\n").is_err()); // missing edge
        assert!(parse_dimacs("p edge 3 1\ne 0 1\n").is_err()); // 0-based endpoint
        assert!(parse_dimacs("p edge 3 1\ne 1 1\n").is_err()); // self loop
        assert!(parse_dimacs("p edge 3 1\ne 1 4\n").is_err()); // out of range
        assert!(parse_dimacs("q edge 3 1\n").is_err()); // unknown line type
        assert!(parse_dimacs("p edge 3 1\np edge 3 1\ne 1 2\n").is_err()); // dup problem
                                                                           // Header/body mismatches: surplus lines and a duplicate-inflated
                                                                           // count are both errors when neither reading of `m` matches.
        assert!(parse_dimacs("p edge 3 1\ne 1 2\ne 2 3\n").is_err()); // surplus
        assert!(parse_dimacs("p edge 3 3\ne 1 2\ne 2 1\n").is_err()); // 3 ≠ 2 lines, ≠ 1 unique
    }

    #[test]
    fn dimacs_accepts_both_orientations() {
        let g = parse_dimacs("c demo\np edge 3 3\ne 1 2\ne 2 1\ne 2 3\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn format_is_inferred_from_extension() {
        assert_eq!(
            GraphFormat::from_path(Path::new("x/y/graph.col")),
            GraphFormat::Dimacs
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("graph.DIMACS")),
            GraphFormat::Dimacs
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("graph.edges")),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("noext")),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("road.graph")),
            GraphFormat::Metis
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("road.metis")),
            GraphFormat::Metis
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("web.mtx")),
            GraphFormat::MatrixMarket
        );
    }

    #[test]
    fn double_extensions_resolve_to_the_inner_format() {
        assert_eq!(
            GraphFormat::from_path(Path::new("suite/web.mtx.gz")),
            GraphFormat::MatrixMarket
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("suite/road.graph.gz")),
            GraphFormat::Metis
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("suite/pairs.el.gz")),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("suite/bench.col.GZ")),
            GraphFormat::Dimacs
        );
        // A bare `.gz` with no inner extension still defaults to edge list.
        assert_eq!(
            GraphFormat::from_path(Path::new("mystery.gz")),
            GraphFormat::EdgeList
        );
    }

    #[test]
    fn metis_round_trips() {
        let g = generators::gnp_connected(25, 0.2, 6).unwrap();
        let text = to_metis(&g);
        let back = parse_metis(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn metis_parses_weights_and_discards_them() {
        // fmt=011: vertex weights (ncon=2) and edge weights.
        let text = "% weighted\n3 2 011 2\n\
                    7 1 2 5 3 9\n\
                    1 1 1 5\n\
                    2 2 1 9\n";
        let g = parse_metis(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        // fmt=100: vertex sizes only.
        let text = "2 1 100\n9 2\n4 1\n";
        let g = parse_metis(text).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn metis_keeps_isolated_vertices() {
        let g = parse_metis("4 1\n2\n1\n\n\n").unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn metis_rejects_malformed_input() {
        // No header at all.
        assert!(matches!(
            parse_metis("% only comments\n"),
            Err(IoError::Empty { .. })
        ));
        // Header arity and values.
        assert!(parse_metis("3\n").is_err());
        assert!(parse_metis("0 0\n").is_err());
        assert!(parse_metis("a b\n1\n").is_err());
        assert!(parse_metis("2 1 7\n2\n1\n").is_err()); // fmt not binary digits
                                                        // Wrong number of vertex lines.
        assert!(matches!(
            parse_metis("3 1\n2\n1\n"),
            Err(IoError::Inconsistent { .. })
        ));
        assert!(parse_metis("1 0\n\n2\n").is_err()); // surplus non-empty line
                                                     // Neighbour out of range / 0-based / self loop.
        assert!(parse_metis("2 1\n3\n1\n").is_err());
        assert!(parse_metis("2 1\n0\n1\n").is_err());
        assert!(parse_metis("2 1\n1\n2\n").is_err());
        // Asymmetric adjacency: edge listed only at one endpoint.
        assert!(matches!(
            parse_metis("2 1\n2\n\n"),
            Err(IoError::Inconsistent { .. })
        ));
        // A duplicated mention cannot impersonate the missing orientation.
        assert!(matches!(
            parse_metis("2 1\n2 2\n\n"),
            Err(IoError::Parse { .. })
        ));
        // Declared edge count disagrees with the lists.
        assert!(matches!(
            parse_metis("2 2\n2\n1\n"),
            Err(IoError::Inconsistent { .. })
        ));
        // Missing edge weight when fmt declares them.
        assert!(parse_metis("2 1 001\n2\n1 5\n").is_err());
    }

    #[test]
    fn matrix_market_round_trips() {
        let g = generators::gnp_connected(30, 0.15, 9).unwrap();
        let text = to_matrix_market(&g);
        let back = parse_matrix_market(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn matrix_market_accepts_values_diagonals_and_general_symmetry() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a 3x3 adjacency matrix with values and a diagonal\n\
                    3 3 5\n\
                    1 2 0.5\n\
                    2 1 0.5\n\
                    2 2 9.0\n\
                    1 3 -2.0\n\
                    3 1 -2.0\n";
        let g = parse_matrix_market(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2, "diagonal dropped, orientations merged");
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn matrix_market_preserves_isolated_nodes() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 1\n2 1\n";
        let g = parse_matrix_market(text).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn matrix_market_rejects_malformed_input() {
        assert!(matches!(
            parse_matrix_market(""),
            Err(IoError::Empty { .. })
        ));
        assert!(parse_matrix_market("1 2\n").is_err()); // no banner
        assert!(parse_matrix_market("%%MatrixMarket matrix array real general\n").is_err());
        assert!(parse_matrix_market("%%MatrixMarket vector coordinate real general\n").is_err());
        assert!(
            parse_matrix_market("%%MatrixMarket matrix coordinate pattern weird\n1 1 0\n").is_err()
        );
        // Banner but nothing else.
        assert!(matches!(
            parse_matrix_market("%%MatrixMarket matrix coordinate pattern general\n% x\n"),
            Err(IoError::Empty { .. })
        ));
        // Non-square, bad size line, entry out of range, nnz mismatch.
        let banner = "%%MatrixMarket matrix coordinate pattern general\n";
        assert!(parse_matrix_market(&format!("{banner}2 3 1\n1 2\n")).is_err());
        assert!(parse_matrix_market(&format!("{banner}2 2\n")).is_err());
        assert!(parse_matrix_market(&format!("{banner}2 2 1\n1 3\n")).is_err());
        assert!(parse_matrix_market(&format!("{banner}2 2 1\n0 1\n")).is_err());
        assert!(matches!(
            parse_matrix_market(&format!("{banner}2 2 2\n1 2\n")),
            Err(IoError::Inconsistent { .. })
        ));
    }

    #[test]
    fn gzipped_files_load_transparently_in_every_format() {
        let g = generators::gnp_connected(18, 0.25, 4).unwrap();
        let dir = std::env::temp_dir().join("mdst-io-gz-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, format) in [
            ("g.el.gz", GraphFormat::EdgeList),
            ("g.col.gz", GraphFormat::Dimacs),
            ("g.graph.gz", GraphFormat::Metis),
            ("g.mtx.gz", GraphFormat::MatrixMarket),
        ] {
            let path = dir.join(name);
            save_graph(&path, &g, None).unwrap();
            assert_eq!(GraphFormat::from_path(&path), format, "{name}");
            // The file on disk really is gzip, not plain text.
            let raw = std::fs::read(&path).unwrap();
            assert_eq!(&raw[..2], &GZIP_MAGIC, "{name}");
            let back = load_graph(&path, None).unwrap();
            assert_eq!(back, g, "{name}");
            std::fs::remove_file(&path).unwrap();
        }
    }
}
