//! Graph file I/O: edge-list and DIMACS formats.
//!
//! External graphs become first-class pipeline inputs through this module. Two
//! interchange formats are supported, both line-oriented and widely used by
//! graph repositories:
//!
//! * **edge list** — one `u v` pair per line, 0-based, `#`/`%` comments; the
//!   node count is `max(endpoint) + 1`;
//! * **DIMACS** — `c` comment lines, one `p edge <n> <m>` problem line, then
//!   `m` lines `e u v` with 1-based endpoints (the format of the DIMACS
//!   colouring/clique benchmarks, also produced by many generators).
//!
//! Both readers reject self loops and out-of-range endpoints; duplicate edges
//! are tolerated (many published DIMACS files list both orientations).
//! Writers produce canonical output (edges sorted, `u < v`), so
//! `read(write(g))` reproduces `g` exactly.

use mdst_graph::{Graph, GraphBuilder, GraphError, NodeId};
use std::fmt;
use std::path::Path;

/// Supported on-disk graph formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GraphFormat {
    /// `u v` pairs, 0-based.
    EdgeList,
    /// DIMACS `p edge` / `e u v`, 1-based.
    Dimacs,
}

impl GraphFormat {
    /// Guesses the format from a file extension: `.col`, `.clq`, `.gr` and
    /// `.dimacs` are DIMACS, everything else is an edge list.
    pub fn from_path(path: &Path) -> GraphFormat {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase)
            .as_deref()
        {
            Some("col") | Some("clq") | Some("gr") | Some("dimacs") => GraphFormat::Dimacs,
            _ => GraphFormat::EdgeList,
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GraphFormat::EdgeList => "edge-list",
            GraphFormat::Dimacs => "dimacs",
        }
    }
}

/// Errors produced while reading or writing graph files.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// Filesystem problem (missing file, permissions, …).
    Io(String),
    /// The input contained no graph at all (empty file, or comments only).
    /// Not a [`IoError::Parse`]: there is no offending line to point at.
    Empty {
        /// What was being parsed, e.g. `"edge list"`.
        what: &'static str,
    },
    /// Malformed content, with the offending 1-based line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// File-level inconsistency that no single line is responsible for
    /// (e.g. a DIMACS header whose edge count disagrees with the body).
    Inconsistent {
        /// Human-readable description.
        message: String,
    },
    /// Structurally invalid graph (self loop, out-of-range endpoint, …).
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(msg) => write!(f, "I/O error: {msg}"),
            IoError::Empty { what } => {
                write!(f, "empty input: the {what} contains no graph data")
            }
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IoError::Inconsistent { message } => write!(f, "inconsistent input: {message}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn parse_err<T>(line: usize, message: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Parse {
        line,
        message: message.into(),
    })
}

/// Strips `#` / `%` comments and surrounding whitespace.
fn strip_line(raw: &str) -> &str {
    let no_comment = match raw.find(['#', '%']) {
        Some(i) => &raw[..i],
        None => raw,
    };
    no_comment.trim()
}

// ---------------------------------------------------------------------------
// Edge list
// ---------------------------------------------------------------------------

/// Parses an edge list (`u v` per line, 0-based).
pub fn parse_edge_list(input: &str) -> Result<Graph, IoError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_node = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_line(raw);
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return parse_err(line_no, format!("expected `u v`, got `{line}`"));
        };
        if parts.next().is_some() {
            return parse_err(
                line_no,
                format!("expected exactly two endpoints on `{line}`"),
            );
        }
        let u: usize = a.parse().map_err(|_| IoError::Parse {
            line: line_no,
            message: format!("`{a}` is not a node index"),
        })?;
        let v: usize = b.parse().map_err(|_| IoError::Parse {
            line: line_no,
            message: format!("`{b}` is not a node index"),
        })?;
        if u == v {
            return parse_err(line_no, format!("self loop `{u} {v}` is not allowed"));
        }
        max_node = max_node.max(u).max(v);
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err(IoError::Empty { what: "edge list" });
    }
    let mut builder = GraphBuilder::new(max_node + 1);
    for (u, v) in edges {
        builder.add_edge_idempotent(NodeId(u), NodeId(v))?;
    }
    Ok(builder.build())
}

/// Renders a graph as a canonical edge list.
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# mdst edge list: {} nodes, {} edges\n",
        graph.node_count(),
        graph.edge_count()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{} {}\n", u.index(), v.index()));
    }
    out
}

// ---------------------------------------------------------------------------
// DIMACS
// ---------------------------------------------------------------------------

/// Parses a DIMACS graph (`p edge n m`, `e u v` with 1-based endpoints).
pub fn parse_dimacs(input: &str) -> Result<Graph, IoError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return parse_err(line_no, "duplicate problem line");
                }
                let format = parts.next().unwrap_or("");
                if format != "edge" && format != "sp" && format != "graph" {
                    return parse_err(line_no, format!("unsupported problem type `{format}`"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "problem line needs a node count".to_string(),
                    })?;
                let m: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "problem line needs an edge count".to_string(),
                    })?;
                if n == 0 {
                    return parse_err(line_no, "DIMACS graph must have at least one node");
                }
                builder = Some(GraphBuilder::new(n));
                declared_edges = m;
            }
            Some("e") | Some("a") => {
                let Some(b) = builder.as_mut() else {
                    return parse_err(line_no, "edge before problem line");
                };
                let u: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "edge line needs two endpoints".to_string(),
                    })?;
                let v: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(IoError::Parse {
                        line: line_no,
                        message: "edge line needs two endpoints".to_string(),
                    })?;
                if u == 0 || v == 0 {
                    return parse_err(line_no, "DIMACS endpoints are 1-based");
                }
                if u == v {
                    return parse_err(line_no, format!("self loop `e {u} {v}` is not allowed"));
                }
                b.add_edge_idempotent(NodeId(u - 1), NodeId(v - 1))?;
                seen_edges += 1;
            }
            Some(other) => {
                return parse_err(line_no, format!("unknown DIMACS line type `{other}`"));
            }
            None => unreachable!("line is non-empty"),
        }
    }
    let Some(builder) = builder else {
        // No problem line seen: either the file is empty (or comments only),
        // which gets the dedicated empty-input error, or it is plain invalid.
        return Err(IoError::Empty {
            what: "DIMACS file (no `p edge <n> <m>` problem line)",
        });
    };
    // Published DIMACS files disagree on whether `m` counts undirected edges
    // or edge *lines* (some list both orientations), so either reading is
    // accepted — anything else (truncated file, surplus lines, wrong header)
    // is an error.
    let unique_edges = builder.edge_count();
    if declared_edges != unique_edges && declared_edges != seen_edges {
        return Err(IoError::Inconsistent {
            message: format!(
                "problem line declares {declared_edges} edges but the file has \
                 {seen_edges} edge lines ({unique_edges} distinct edges)"
            ),
        });
    }
    Ok(builder.build())
}

/// Renders a graph in DIMACS `edge` format.
pub fn to_dimacs(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("c generated by mdst-scenario\n");
    out.push_str(&format!(
        "p edge {} {}\n",
        graph.node_count(),
        graph.edge_count()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    out
}

// ---------------------------------------------------------------------------
// File-level helpers
// ---------------------------------------------------------------------------

/// Parses `input` in the given format.
pub fn parse_graph(input: &str, format: GraphFormat) -> Result<Graph, IoError> {
    match format {
        GraphFormat::EdgeList => parse_edge_list(input),
        GraphFormat::Dimacs => parse_dimacs(input),
    }
}

/// Renders `graph` in the given format.
pub fn render_graph(graph: &Graph, format: GraphFormat) -> String {
    match format {
        GraphFormat::EdgeList => to_edge_list(graph),
        GraphFormat::Dimacs => to_dimacs(graph),
    }
}

/// Loads a graph from a file, inferring the format from the extension when
/// none is given.
pub fn load_graph(path: impl AsRef<Path>, format: Option<GraphFormat>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let format = format.unwrap_or_else(|| GraphFormat::from_path(path));
    let content = std::fs::read_to_string(path)
        .map_err(|e| IoError::Io(format!("{}: {e}", path.display())))?;
    parse_graph(&content, format)
}

/// Writes a graph to a file in the given (or extension-inferred) format.
pub fn save_graph(
    path: impl AsRef<Path>,
    graph: &Graph,
    format: Option<GraphFormat>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    let format = format.unwrap_or_else(|| GraphFormat::from_path(path));
    std::fs::write(path, render_graph(graph, format))
        .map_err(|e| IoError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn edge_list_round_trips() {
        let g = generators::petersen().unwrap();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn dimacs_round_trips() {
        let g = generators::gnp_connected(20, 0.2, 5).unwrap();
        let text = to_dimacs(&g);
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_tolerates_comments_and_duplicates() {
        let g =
            parse_edge_list("# header\n0 1\n% other comment style\n1 2 # inline\n2 1\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_rejects_malformed_input() {
        assert!(matches!(parse_edge_list("0"), Err(IoError::Parse { .. })));
        assert!(matches!(
            parse_edge_list("0 1 2"),
            Err(IoError::Parse { .. })
        ));
        assert!(matches!(parse_edge_list("a b"), Err(IoError::Parse { .. })));
        assert!(matches!(parse_edge_list("3 3"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn empty_inputs_get_the_dedicated_error_not_a_line_number() {
        for input in ["", "# only a comment\n", "% other comment style\n\n"] {
            let err = parse_edge_list(input).unwrap_err();
            assert!(matches!(err, IoError::Empty { .. }), "{input:?}: {err}");
            let text = err.to_string();
            assert!(text.contains("empty input"), "{text}");
            assert!(!text.contains("line 0"), "{text}");
        }
        let err = parse_dimacs("c comments only\n").unwrap_err();
        assert!(matches!(err, IoError::Empty { .. }), "{err}");
        // Header/body mismatches are file-level, not \"line 0\".
        let err = parse_dimacs("p edge 3 2\ne 1 2\n").unwrap_err();
        assert!(matches!(err, IoError::Inconsistent { .. }), "{err}");
        assert!(!err.to_string().contains("line 0"), "{err}");
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(parse_dimacs("e 1 2\n").is_err()); // edge before problem line
        assert!(parse_dimacs("p edge 0 0\n").is_err());
        assert!(parse_dimacs("p edge 3 2\ne 1 2\n").is_err()); // missing edge
        assert!(parse_dimacs("p edge 3 1\ne 0 1\n").is_err()); // 0-based endpoint
        assert!(parse_dimacs("p edge 3 1\ne 1 1\n").is_err()); // self loop
        assert!(parse_dimacs("p edge 3 1\ne 1 4\n").is_err()); // out of range
        assert!(parse_dimacs("q edge 3 1\n").is_err()); // unknown line type
        assert!(parse_dimacs("p edge 3 1\np edge 3 1\ne 1 2\n").is_err()); // dup problem
                                                                           // Header/body mismatches: surplus lines and a duplicate-inflated
                                                                           // count are both errors when neither reading of `m` matches.
        assert!(parse_dimacs("p edge 3 1\ne 1 2\ne 2 3\n").is_err()); // surplus
        assert!(parse_dimacs("p edge 3 3\ne 1 2\ne 2 1\n").is_err()); // 3 ≠ 2 lines, ≠ 1 unique
    }

    #[test]
    fn dimacs_accepts_both_orientations() {
        let g = parse_dimacs("c demo\np edge 3 3\ne 1 2\ne 2 1\ne 2 3\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn format_is_inferred_from_extension() {
        assert_eq!(
            GraphFormat::from_path(Path::new("x/y/graph.col")),
            GraphFormat::Dimacs
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("graph.DIMACS")),
            GraphFormat::Dimacs
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("graph.edges")),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("noext")),
            GraphFormat::EdgeList
        );
    }
}
