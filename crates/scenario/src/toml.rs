//! Minimal TOML parser producing [`serde::Value`] trees.
//!
//! The registry `toml` crate is unavailable offline, so scenario specs are
//! parsed by this self-contained reader. It supports the subset the spec
//! format uses (and a bit more): `key = value` pairs with bare or quoted
//! single-segment keys, `[table]` headers, `[[array-of-tables]]` headers,
//! basic and literal strings, integers (with `_` separators), floats,
//! booleans, single- and multi-line arrays, inline tables, and `#` comments.
//! Dotted keys, dates and multi-line strings are not supported and produce a
//! clear error.

use serde::Value;
use std::fmt;

/// Error produced while parsing TOML, with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// Parses a TOML document into a [`Value::Object`].
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root = Value::Object(Vec::new());
    // Path of the table currently being filled; empty = root.
    let mut current_path: Vec<PathSeg> = Vec::new();

    let lines: Vec<&str> = input.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let line_no = i + 1;
        let logical = strip_comment(lines[i]);
        let trimmed = logical.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return err(line_no, "malformed [[array-of-tables]] header");
            };
            let segs = parse_path(name.trim(), line_no)?;
            let (head, last) = split_path(&segs, line_no)?;
            let mut path: Vec<PathSeg> = head.to_vec();
            let parent = navigate(&mut root, &path, line_no)?;
            push_array_table(parent, &last, line_no)?;
            path.push(PathSeg::ArrayLast(last));
            current_path = path;
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(line_no, "malformed [table] header");
            };
            let segs = parse_path(name.trim(), line_no)?;
            // Ensure the table exists (creating intermediate tables).
            navigate(&mut root, &segs, line_no)?;
            current_path = segs;
            i += 1;
            continue;
        }
        // key = value; the value may continue over following lines while an
        // array or inline table is unclosed.
        let Some(eq) = find_unquoted(trimmed, '=') else {
            return err(line_no, format!("expected `key = value`, got `{trimmed}`"));
        };
        let key = parse_key(trimmed[..eq].trim(), line_no)?;
        let mut value_text = trimmed[eq + 1..].trim().to_string();
        while open_brackets(&value_text) > 0 {
            i += 1;
            if i >= lines.len() {
                return err(line_no, "unterminated array or inline table");
            }
            value_text.push(' ');
            value_text.push_str(strip_comment(lines[i]).trim());
        }
        let value = parse_value_text(&value_text, line_no)?;
        let table = navigate(&mut root, &current_path, line_no)?;
        insert(table, key, value, line_no)?;
        i += 1;
    }
    Ok(root)
}

/// One step of a table path.
#[derive(Debug, Clone, PartialEq)]
enum PathSeg {
    /// A plain table key.
    Table(String),
    /// The most recent element of an array of tables.
    ArrayLast(String),
}

fn parse_path(name: &str, line: usize) -> Result<Vec<PathSeg>, TomlError> {
    if name.is_empty() {
        return err(line, "empty table name");
    }
    name.split('.')
        .map(|seg| {
            let seg = seg.trim();
            if seg.is_empty() {
                err(line, "empty path segment")
            } else {
                Ok(PathSeg::Table(strip_key_quotes(seg)))
            }
        })
        .collect()
}

fn split_path(segs: &[PathSeg], line: usize) -> Result<(&[PathSeg], String), TomlError> {
    match segs.split_last() {
        Some((PathSeg::Table(last), head)) => Ok((head, last.clone())),
        _ => err(line, "empty table path"),
    }
}

fn parse_key(raw: &str, line: usize) -> Result<String, TomlError> {
    if raw.is_empty() {
        return err(line, "empty key");
    }
    if raw.contains('.') && !raw.starts_with('"') && !raw.starts_with('\'') {
        return err(line, format!("dotted keys are not supported (`{raw}`)"));
    }
    Ok(strip_key_quotes(raw))
}

fn strip_key_quotes(raw: &str) -> String {
    let raw = raw.trim();
    if (raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2)
        || (raw.starts_with('\'') && raw.ends_with('\'') && raw.len() >= 2)
    {
        raw[1..raw.len() - 1].to_string()
    } else {
        raw.to_string()
    }
}

/// Removes a trailing `#` comment, honouring quotes.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if !in_literal => in_basic = !in_basic,
            b'\'' if !in_basic => in_literal = !in_literal,
            b'\\' if in_basic => i += 1,
            b'#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Index of `needle` outside any quotes, if present.
fn find_unquoted(s: &str, needle: char) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if !in_literal => in_basic = !in_basic,
            b'\'' if !in_basic => in_literal = !in_literal,
            b'\\' if in_basic => i += 1,
            b if b == needle as u8 && !in_basic && !in_literal => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Net count of unclosed `[`/`{` outside quotes (0 when balanced).
fn open_brackets(s: &str) -> i32 {
    let bytes = s.as_bytes();
    let mut depth = 0;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if !in_literal => in_basic = !in_basic,
            b'\'' if !in_basic => in_literal = !in_literal,
            b'\\' if in_basic => i += 1,
            b'[' | b'{' if !in_basic && !in_literal => depth += 1,
            b']' | b'}' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth.max(0)
}

fn navigate<'a>(
    root: &'a mut Value,
    path: &[PathSeg],
    line: usize,
) -> Result<&'a mut Value, TomlError> {
    let mut cur = root;
    for seg in path {
        match seg {
            PathSeg::Table(key) => {
                cur = entry_or_insert(cur, key, line)?;
                if !matches!(cur, Value::Object(_)) {
                    return err(line, format!("`{key}` is not a table"));
                }
            }
            PathSeg::ArrayLast(key) => {
                let arr = entry_or_insert_array(cur, key, line)?;
                let Value::Array(items) = arr else {
                    return err(line, format!("`{key}` is not an array of tables"));
                };
                let Some(last) = items.last_mut() else {
                    return err(line, format!("array of tables `{key}` is empty"));
                };
                cur = last;
            }
        }
    }
    Ok(cur)
}

fn entry_or_insert<'a>(
    table: &'a mut Value,
    key: &str,
    line: usize,
) -> Result<&'a mut Value, TomlError> {
    let Value::Object(entries) = table else {
        return err(line, "expected a table");
    };
    if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
        Ok(&mut entries[pos].1)
    } else {
        entries.push((key.to_string(), Value::Object(Vec::new())));
        Ok(&mut entries.last_mut().expect("just pushed").1)
    }
}

fn entry_or_insert_array<'a>(
    table: &'a mut Value,
    key: &str,
    line: usize,
) -> Result<&'a mut Value, TomlError> {
    let Value::Object(entries) = table else {
        return err(line, "expected a table");
    };
    if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
        Ok(&mut entries[pos].1)
    } else {
        entries.push((key.to_string(), Value::Array(Vec::new())));
        Ok(&mut entries.last_mut().expect("just pushed").1)
    }
}

fn push_array_table(parent: &mut Value, key: &str, line: usize) -> Result<(), TomlError> {
    let arr = entry_or_insert_array(parent, key, line)?;
    match arr {
        Value::Array(items) => {
            items.push(Value::Object(Vec::new()));
            Ok(())
        }
        _ => err(line, format!("`{key}` already used as a non-array value")),
    }
}

fn insert(table: &mut Value, key: String, value: Value, line: usize) -> Result<(), TomlError> {
    let Value::Object(entries) = table else {
        return err(line, "expected a table");
    };
    if entries.iter().any(|(k, _)| *k == key) {
        return err(line, format!("duplicate key `{key}`"));
    }
    entries.push((key, value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Value parsing
// ---------------------------------------------------------------------------

fn parse_value_text(text: &str, line: usize) -> Result<Value, TomlError> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let v = parse_value(&chars, &mut pos, line)?;
    skip_spaces(&chars, &mut pos);
    if pos != chars.len() {
        return err(line, format!("trailing characters after value in `{text}`"));
    }
    Ok(v)
}

fn skip_spaces(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && (chars[*pos] == ' ' || chars[*pos] == '\t') {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize, line: usize) -> Result<Value, TomlError> {
    skip_spaces(chars, pos);
    let Some(&c) = chars.get(*pos) else {
        return err(line, "missing value");
    };
    match c {
        '"' => parse_basic_string(chars, pos, line).map(Value::String),
        '\'' => parse_literal_string(chars, pos, line).map(Value::String),
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_spaces(chars, pos);
                if chars.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                items.push(parse_value(chars, pos, line)?);
                skip_spaces(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return err(line, "expected `,` or `]` in array"),
                }
            }
        }
        '{' => {
            *pos += 1;
            let mut entries: Vec<(String, Value)> = Vec::new();
            loop {
                skip_spaces(chars, pos);
                if chars.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                let key = parse_inline_key(chars, pos, line)?;
                skip_spaces(chars, pos);
                if chars.get(*pos) != Some(&'=') {
                    return err(line, "expected `=` in inline table");
                }
                *pos += 1;
                let value = parse_value(chars, pos, line)?;
                if entries.iter().any(|(k, _)| *k == key) {
                    return err(line, format!("duplicate key `{key}` in inline table"));
                }
                entries.push((key, value));
                skip_spaces(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return err(line, "expected `,` or `}` in inline table"),
                }
            }
        }
        _ => parse_scalar(chars, pos, line),
    }
}

fn parse_inline_key(chars: &[char], pos: &mut usize, line: usize) -> Result<String, TomlError> {
    skip_spaces(chars, pos);
    match chars.get(*pos) {
        Some('"') => parse_basic_string(chars, pos, line),
        Some('\'') => parse_literal_string(chars, pos, line),
        _ => {
            let start = *pos;
            while *pos < chars.len()
                && (chars[*pos].is_alphanumeric() || chars[*pos] == '_' || chars[*pos] == '-')
            {
                *pos += 1;
            }
            if *pos == start {
                return err(line, "expected key in inline table");
            }
            Ok(chars[start..*pos].iter().collect())
        }
    }
}

fn parse_basic_string(chars: &[char], pos: &mut usize, line: usize) -> Result<String, TomlError> {
    debug_assert_eq!(chars.get(*pos), Some(&'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return err(line, "unterminated escape in string");
                };
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    other => return err(line, format!("unsupported escape `\\{other}`")),
                }
            }
            c => out.push(c),
        }
    }
    err(line, "unterminated string")
}

fn parse_literal_string(chars: &[char], pos: &mut usize, line: usize) -> Result<String, TomlError> {
    debug_assert_eq!(chars.get(*pos), Some(&'\''));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        if c == '\'' {
            return Ok(out);
        }
        out.push(c);
    }
    err(line, "unterminated literal string")
}

fn parse_scalar(chars: &[char], pos: &mut usize, line: usize) -> Result<Value, TomlError> {
    let start = *pos;
    while *pos < chars.len() && !matches!(chars[*pos], ',' | ']' | '}' | ' ' | '\t') {
        *pos += 1;
    }
    let raw: String = chars[start..*pos].iter().collect();
    match raw.as_str() {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "inf" | "+inf" => return Ok(Value::Float(f64::INFINITY)),
        "-inf" => return Ok(Value::Float(f64::NEG_INFINITY)),
        "nan" | "+nan" | "-nan" => return Ok(Value::Float(f64::NAN)),
        _ => {}
    }
    let cleaned: String = raw.replace('_', "");
    if !cleaned.contains('.') && !cleaned.contains('e') && !cleaned.contains('E') {
        if let Ok(i) = cleaned.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = cleaned.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    err(line, format!("cannot parse value `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_scalars() {
        let doc = r#"
            # campaign header
            [campaign]
            name = "sweep"   # trailing comment
            threads = 4
            ratio = 0.5
            on = true

            [campaign.nested]
            path = 'C:\raw'
        "#;
        let v = parse(doc).unwrap();
        let c = v.get("campaign").unwrap();
        assert_eq!(c.get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(c.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(c.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(c.get("on").unwrap().as_bool(), Some(true));
        assert_eq!(
            c.get("nested").unwrap().get("path").unwrap().as_str(),
            Some("C:\\raw")
        );
    }

    #[test]
    fn parses_arrays_of_tables_and_inline_tables() {
        let doc = r#"
            [[scenario]]
            name = "a"
            graph = { family = "gnp_connected", n = [16, 32], p = [0.1, 0.2] }
            seeds = [1, 2,
                     3]

            [[scenario]]
            name = "b"
        "#;
        let v = parse(doc).unwrap();
        let scenarios = v.get("scenario").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        let g = scenarios[0].get("graph").unwrap();
        assert_eq!(g.get("family").unwrap().as_str(), Some("gnp_connected"));
        assert_eq!(g.get("n").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            scenarios[0].get("seeds").unwrap().as_array().unwrap().len(),
            3
        );
        assert_eq!(scenarios[1].get("name").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("key").is_err());
        assert!(parse("[unclosed").is_err());
        assert!(parse("a.b = 1").is_err());
        assert!(parse("x = ").is_err());
        assert!(parse("x = [1, 2").is_err());
        assert!(parse("x = \"unterminated").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let v = parse("a = -3\nb = 1_000\nc = 2.5e3").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(1000));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(2500.0));
    }
}
