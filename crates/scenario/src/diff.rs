//! Campaign report diffing: `scenario diff a.json b.json`.
//!
//! Compares two [`CampaignReport`]s produced by the *same spec* at different
//! code revisions and classifies every matched run pair, so CI can gate on
//! quality regressions the way it already gates on absolute bound violations.
//! Runs are matched on their full configuration key — scenario, graph,
//! initial tree, delay, start, faults, executor, batch (when swept) and seed
//! — which is exactly the identity of one cell of the sweep matrix.
//!
//! A **regression** (candidate worse than baseline) is any of:
//!
//! * the outcome degrades along `quiesced-correct → quiesced-partial →
//!   event-limit-abort / aborted → failed`;
//! * the paper degree-bound verdict flips from respected to violated;
//! * the final tree degree increases;
//! * a run that used to succeed now records an error.
//!
//! The mirror conditions count as **improvements**; changed message or round
//! counts with an unchanged verdict are reported as informational **drift**.
//! Run sets that do not match (runs only in one report) make the diff
//! non-comparable — a spec mismatch is an answer, not a pass.
//!
//! Wall time is ignored by default (it varies run to run), but an explicit
//! tolerance ([`DiffOptions::wall_ms_tolerance`], the CLI's
//! `--wall-ms-tolerance <pct>`) turns timing blowups beyond that percentage
//! into regressions instead of invisible drift. Findings render as plain
//! text ([`ReportDiff::render`]) or as GitHub-flavored markdown tables for
//! PR comments ([`ReportDiff::render_markdown`], the CLI's `--markdown`).

use crate::runner::{CampaignReport, RunOutcome, RunRecord};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Knobs of [`diff_reports_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffOptions {
    /// Wall-time regression threshold in percent: a matched run whose
    /// `exec_wall_ms` exceeds the baseline by more than this percentage
    /// (and by at least [`WALL_MS_FLOOR`] absolute, so micro-run jitter
    /// cannot trip it) is a regression; the mirror direction is an
    /// improvement. `None` (the default) ignores wall time entirely.
    pub wall_ms_tolerance: Option<f64>,
    /// Cost-model accuracy threshold in percent: when both matched runs
    /// carry a scheduler prediction (`predicted_wall_ms` set by `scenario
    /// serve`), a run whose relative prediction error grew by more than this
    /// many percentage points over the baseline is reported as **drift** —
    /// the cost model got worse at predicting this cell, worth a line but
    /// never an exit code. `None` (the default) ignores predictions.
    pub prediction_tolerance: Option<f64>,
}

/// Absolute wall-time slack (milliseconds) under which timing changes are
/// never flagged, whatever the percentage says — sub-millisecond runs jitter
/// by integer factors without meaning anything.
pub const WALL_MS_FLOOR: f64 = 1.0;

/// One classified difference between a matched pair of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// The run's configuration key, e.g.
    /// `suite / file(data/sample.mtx.gz) / greedy_hub / sim / seed 1`.
    pub key: String,
    /// Which quantity changed.
    pub what: String,
    /// Value in the baseline report.
    pub baseline: String,
    /// Value in the candidate report.
    pub candidate: String,
}

impl DiffFinding {
    fn new(
        key: &str,
        what: impl Into<String>,
        baseline: impl ToString,
        candidate: impl ToString,
    ) -> DiffFinding {
        DiffFinding {
            key: key.to_string(),
            what: what.into(),
            baseline: baseline.to_string(),
            candidate: candidate.to_string(),
        }
    }
}

/// The classified comparison of two campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Baseline campaign name.
    pub baseline_name: String,
    /// Candidate campaign name.
    pub candidate_name: String,
    /// Matched run pairs.
    pub matched: usize,
    /// Keys present only in the baseline (spec mismatch).
    pub only_in_baseline: Vec<String>,
    /// Keys present only in the candidate (spec mismatch).
    pub only_in_candidate: Vec<String>,
    /// Candidate-worse findings (outcome, bound verdict, degree, errors).
    pub regressions: Vec<DiffFinding>,
    /// Candidate-better findings.
    pub improvements: Vec<DiffFinding>,
    /// Verdict-neutral changes (message/round counts), informational only.
    pub drift: Vec<DiffFinding>,
}

impl ReportDiff {
    /// Whether the two reports cover the same run set.
    pub fn is_comparable(&self) -> bool {
        self.only_in_baseline.is_empty() && self.only_in_candidate.is_empty()
    }

    /// Whether the candidate regressed anywhere (or the run sets diverge,
    /// which makes "no regressions" unprovable).
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty() || !self.is_comparable()
    }

    /// Human-readable summary, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff `{}` (baseline) vs `{}` (candidate): {} matched runs, \
             {} regressions, {} improvements, {} drifted",
            self.baseline_name,
            self.candidate_name,
            self.matched,
            self.regressions.len(),
            self.improvements.len(),
            self.drift.len(),
        );
        for (label, keys) in [
            ("only in baseline", &self.only_in_baseline),
            ("only in candidate", &self.only_in_candidate),
        ] {
            if !keys.is_empty() {
                let _ = writeln!(
                    out,
                    "  {label}: {} runs (spec mismatch — reports are not comparable)",
                    keys.len()
                );
                for key in keys.iter().take(5) {
                    let _ = writeln!(out, "    {key}");
                }
                if keys.len() > 5 {
                    let _ = writeln!(out, "    … and {} more", keys.len() - 5);
                }
            }
        }
        for (label, findings) in [
            ("REGRESSION", &self.regressions),
            ("improvement", &self.improvements),
            ("drift", &self.drift),
        ] {
            for f in findings {
                let _ = writeln!(
                    out,
                    "  {label}: {} — {}: {} -> {}",
                    f.key, f.what, f.baseline, f.candidate
                );
            }
        }
        out
    }

    /// GitHub-flavored markdown rendering of the same findings, one table
    /// per section, for posting as a PR comment.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let verdict = if self.has_regressions() {
            "❌ regressions"
        } else {
            "✅ clean"
        };
        let _ = writeln!(
            out,
            "### scenario diff: `{}` (baseline) vs `{}` (candidate) — {verdict}\n",
            self.baseline_name, self.candidate_name
        );
        let _ = writeln!(
            out,
            "{} matched runs · {} regressions · {} improvements · {} drifted\n",
            self.matched,
            self.regressions.len(),
            self.improvements.len(),
            self.drift.len()
        );
        for (label, keys) in [
            ("Only in baseline", &self.only_in_baseline),
            ("Only in candidate", &self.only_in_candidate),
        ] {
            if !keys.is_empty() {
                let _ = writeln!(
                    out,
                    "**{label}** ({} runs — spec mismatch, reports are not comparable):\n",
                    keys.len()
                );
                for key in keys {
                    let _ = writeln!(out, "- `{}`", md_escape(key));
                }
                let _ = writeln!(out);
            }
        }
        for (title, findings) in [
            ("Regressions", &self.regressions),
            ("Improvements", &self.improvements),
            ("Drift (informational)", &self.drift),
        ] {
            if findings.is_empty() {
                continue;
            }
            let _ = writeln!(out, "**{title}** ({})\n", findings.len());
            let _ = writeln!(out, "| run | what | baseline | candidate |");
            let _ = writeln!(out, "|---|---|---|---|");
            for f in findings {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {} | {} |",
                    md_escape(&f.key),
                    md_escape(&f.what),
                    md_escape(&f.baseline),
                    md_escape(&f.candidate)
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Escapes the one character that breaks a GFM table cell.
fn md_escape(text: &str) -> String {
    text.replace('|', "\\|")
}

/// Severity rank of an outcome: higher is worse. An operator-cancelled run
/// ([`RunOutcome::Aborted`]) ranks with the event-limit abort — both ended
/// before quiescence by external decision, which is worse than any finished
/// tree but better than a setup failure.
fn outcome_rank(outcome: RunOutcome) -> u8 {
    match outcome {
        RunOutcome::QuiescedCorrect => 0,
        RunOutcome::QuiescedPartial => 1,
        RunOutcome::EventLimitAbort | RunOutcome::Aborted => 2,
        RunOutcome::Failed => 3,
    }
}

fn run_key(run: &RunRecord) -> String {
    // Delegates to the shared [`crate::runner::run_key`] so diff matching,
    // progress lines and the serve event stream all agree on one identity
    // per sweep-matrix cell (including the omitted default-batch segment
    // that keeps pre-batch baselines byte-identical).
    run.key()
}

/// Diffs `candidate` against `baseline` with the default options (wall time
/// ignored). See the module docs for the classification rules.
pub fn diff_reports(baseline: &CampaignReport, candidate: &CampaignReport) -> ReportDiff {
    diff_reports_with(baseline, candidate, &DiffOptions::default())
}

/// Diffs `candidate` against `baseline`. See the module docs for the
/// classification rules.
///
/// Keys are matched as a multiset: a spec can legitimately expand several
/// runs with identical configuration labels (e.g. a repeated seed), and
/// those pair up in expansion order instead of collapsing onto one entry —
/// a report diffed against itself is always clean.
pub fn diff_reports_with(
    baseline: &CampaignReport,
    candidate: &CampaignReport,
    options: &DiffOptions,
) -> ReportDiff {
    let mut base_by_key: BTreeMap<String, VecDeque<&RunRecord>> = BTreeMap::new();
    for run in &baseline.runs {
        base_by_key.entry(run_key(run)).or_default().push_back(run);
    }
    let mut diff = ReportDiff {
        baseline_name: baseline.name.clone(),
        candidate_name: candidate.name.clone(),
        matched: 0,
        only_in_baseline: Vec::new(),
        only_in_candidate: Vec::new(),
        regressions: Vec::new(),
        improvements: Vec::new(),
        drift: Vec::new(),
    };
    for cand in &candidate.runs {
        let key = run_key(cand);
        let Some(base) = base_by_key.get_mut(&key).and_then(VecDeque::pop_front) else {
            diff.only_in_candidate.push(key);
            continue;
        };
        diff.matched += 1;
        compare_pair(&key, base, cand, options, &mut diff);
    }
    diff.only_in_baseline = base_by_key
        .into_iter()
        .flat_map(|(key, leftovers)| std::iter::repeat_n(key, leftovers.len()))
        .collect();
    diff
}

fn compare_pair(
    key: &str,
    base: &RunRecord,
    cand: &RunRecord,
    options: &DiffOptions,
    diff: &mut ReportDiff,
) {
    let base_rank = outcome_rank(base.outcome);
    let cand_rank = outcome_rank(cand.outcome);
    if cand_rank != base_rank {
        let finding = DiffFinding::new(key, "outcome", base.outcome.label(), cand.outcome.label());
        if cand_rank > base_rank {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    if base.within_bound != cand.within_bound {
        let finding = DiffFinding::new(
            key,
            "degree-bound verdict",
            if base.within_bound {
                "within"
            } else {
                "violated"
            },
            if cand.within_bound {
                "within"
            } else {
                "violated"
            },
        );
        if base.within_bound {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    if base.final_degree != cand.final_degree {
        let finding = DiffFinding::new(key, "final degree", base.final_degree, cand.final_degree);
        if cand.final_degree > base.final_degree {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    match (&base.error, &cand.error) {
        (None, Some(e)) => diff
            .regressions
            .push(DiffFinding::new(key, "error", "none", e.clone())),
        (Some(e), None) => {
            diff.improvements
                .push(DiffFinding::new(key, "error", e.clone(), "none"))
        }
        _ => {}
    }
    // Verdict-neutral performance drift, worth a line but never an exit code.
    if base.messages != cand.messages {
        diff.drift.push(DiffFinding::new(
            key,
            "messages",
            base.messages,
            cand.messages,
        ));
    }
    if base.rounds != cand.rounds {
        diff.drift
            .push(DiffFinding::new(key, "rounds", base.rounds, cand.rounds));
    }
    // Wall time only speaks when the caller set a tolerance: a percentage
    // blowup past it (and past the absolute floor) is a regression, the
    // mirror a genuine improvement; within tolerance it stays silent (wall
    // times never match exactly, so reporting them as drift is pure noise).
    // And it only compares like with like — when the outcome changed or
    // either run errored, the timing of the two runs measures different
    // work (a fixed baseline failure is not a timing regression).
    let wall_comparable =
        base.outcome == cand.outcome && base.error.is_none() && cand.error.is_none();
    if let Some(pct) = options.wall_ms_tolerance.filter(|_| wall_comparable) {
        let fmt = |ms: f64| format!("{ms:.3} ms");
        let slack = pct.max(0.0) / 100.0;
        if cand.exec_wall_ms > base.exec_wall_ms * (1.0 + slack)
            && cand.exec_wall_ms - base.exec_wall_ms > WALL_MS_FLOOR
        {
            diff.regressions.push(DiffFinding::new(
                key,
                format!("exec wall time (+{pct}% tolerance)"),
                fmt(base.exec_wall_ms),
                fmt(cand.exec_wall_ms),
            ));
        } else if base.exec_wall_ms > cand.exec_wall_ms * (1.0 + slack)
            && base.exec_wall_ms - cand.exec_wall_ms > WALL_MS_FLOOR
        {
            diff.improvements.push(DiffFinding::new(
                key,
                format!("exec wall time (+{pct}% tolerance)"),
                fmt(base.exec_wall_ms),
                fmt(cand.exec_wall_ms),
            ));
        }
    }
    // Cost-model accuracy: only when both sides were scheduled under a
    // prediction and measured comparable work. A growing relative error
    // means the serve scheduler's model regressed on this cell — that is a
    // scheduling-quality signal, not a protocol verdict, so it lands in
    // drift.
    if let Some(pts) = options.prediction_tolerance.filter(|_| wall_comparable) {
        let err = |run: &RunRecord| -> Option<f64> {
            if !run.predicted_wall_ms.is_set() || run.exec_wall_ms <= WALL_MS_FLOOR {
                return None;
            }
            Some(((run.exec_wall_ms - run.predicted_wall_ms.0) / run.exec_wall_ms).abs() * 100.0)
        };
        if let (Some(base_err), Some(cand_err)) = (err(base), err(cand)) {
            if cand_err > base_err + pts.max(0.0) {
                diff.drift.push(DiffFinding::new(
                    key,
                    format!("prediction error (+{pts} pt tolerance)"),
                    format!("{base_err:.1}%"),
                    format!("{cand_err:.1}%"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::ScenarioMatrix;

    fn report() -> CampaignReport {
        let spec = r#"
            [[scenario]]
            name = "mini"
            graph = { family = "star_with_leaf_edges", n = [8, 10] }
            seeds = [1, 2]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn identical_reports_diff_clean() {
        let a = report();
        let diff = diff_reports(&a, &a.clone());
        assert_eq!(diff.matched, a.runs.len());
        assert!(diff.is_comparable());
        assert!(!diff.has_regressions());
        assert!(diff.regressions.is_empty());
        assert!(diff.improvements.is_empty());
        assert!(diff.drift.is_empty());
        assert!(diff.render().contains("0 regressions"));
    }

    #[test]
    fn degraded_outcome_and_degree_are_regressions() {
        let base = report();
        let mut cand = base.clone();
        cand.runs[0].outcome = RunOutcome::QuiescedPartial;
        cand.runs[1].final_degree += 1;
        cand.runs[2].within_bound = false;
        cand.runs[3].error = Some("boom".to_string());
        let diff = diff_reports(&base, &cand);
        assert!(diff.has_regressions());
        assert_eq!(diff.regressions.len(), 4);
        assert!(diff.improvements.is_empty());
        let rendered = diff.render();
        assert!(rendered.contains("REGRESSION"), "{rendered}");
        assert!(rendered.contains("outcome"), "{rendered}");
        assert!(rendered.contains("final degree"), "{rendered}");
        assert!(rendered.contains("degree-bound verdict"), "{rendered}");
        // The mirror direction counts as improvements, not regressions.
        let mirror = diff_reports(&cand, &base);
        assert!(!mirror.has_regressions());
        assert_eq!(mirror.improvements.len(), 4);
    }

    #[test]
    fn duplicate_run_keys_match_as_a_multiset() {
        // A spec can expand several runs with identical configuration labels
        // (e.g. seeds = [1, 1]); self-diffing such a report must stay clean
        // instead of collapsing the duplicates into a phantom mismatch.
        let spec = r#"
            [[scenario]]
            name = "dup"
            graph = { family = "path", n = 6 }
            seeds = [1, 1]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let report = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2);
        let diff = diff_reports(&report, &report.clone());
        assert_eq!(diff.matched, 2);
        assert!(diff.is_comparable());
        assert!(!diff.has_regressions());
        // Dropping one duplicate is still detected as a mismatch.
        let mut shorter = report.clone();
        shorter.runs.pop();
        let diff = diff_reports(&report, &shorter);
        assert_eq!(diff.only_in_baseline.len(), 1);
        assert!(diff.has_regressions());
    }

    #[test]
    fn wall_time_is_ignored_without_a_tolerance_and_gated_with_one() {
        let base = report();
        let mut cand = base.clone();
        // Blow up one run's improvement wall time by 10x (and well past the
        // absolute floor).
        cand.runs[0].exec_wall_ms = base.runs[0].exec_wall_ms * 10.0 + 50.0;
        // Default: invisible.
        let diff = diff_reports(&base, &cand);
        assert!(!diff.has_regressions());
        assert!(diff.regressions.is_empty() && diff.drift.is_empty());
        // With a 20% tolerance: a regression.
        let opts = DiffOptions {
            wall_ms_tolerance: Some(20.0),
            ..Default::default()
        };
        let diff = diff_reports_with(&base, &cand, &opts);
        assert!(diff.has_regressions());
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.regressions[0].what.contains("wall time"));
        // The mirror direction is an improvement, not a regression.
        let mirror = diff_reports_with(&cand, &base, &opts);
        assert!(!mirror.has_regressions());
        assert_eq!(mirror.improvements.len(), 1);
        // Sub-floor jitter never trips, whatever the percentage.
        let mut jitter = base.clone();
        jitter.runs[0].exec_wall_ms = base.runs[0].exec_wall_ms + 0.5;
        let diff = diff_reports_with(
            &base,
            &jitter,
            &DiffOptions {
                wall_ms_tolerance: Some(0.0),
                ..Default::default()
            },
        );
        assert!(!diff.has_regressions(), "{:?}", diff.regressions);
    }

    #[test]
    fn wall_time_is_not_compared_across_different_outcomes_or_errors() {
        // A baseline run that failed (exec_wall_ms left at 0) and now
        // succeeds must count as an improvement, not a timing regression.
        let cand = report();
        let mut base = cand.clone();
        base.runs[0].outcome = RunOutcome::Failed;
        base.runs[0].error = Some("boom".to_string());
        base.runs[0].exec_wall_ms = 0.0;
        let diff = diff_reports_with(
            &base,
            &cand,
            &DiffOptions {
                wall_ms_tolerance: Some(50.0),
                ..Default::default()
            },
        );
        assert!(!diff.has_regressions(), "{:?}", diff.regressions);
        assert!(
            diff.regressions.iter().all(|f| !f.what.contains("wall")),
            "{:?}",
            diff.regressions
        );
        // Outcome improvements are still reported as such.
        assert!(diff.improvements.iter().any(|f| f.what == "outcome"));
    }

    #[test]
    fn prediction_error_drift_is_gated_by_tolerance() {
        use crate::runner::PredictedMs;
        let seed = report();
        let mut base = seed.clone();
        let mut cand = seed.clone();
        // Same execution time on both sides; the baseline predicted within
        // 10%, the candidate missed by 100%.
        base.runs[0].exec_wall_ms = 100.0;
        base.runs[0].predicted_wall_ms = PredictedMs(90.0);
        cand.runs[0].exec_wall_ms = 100.0;
        cand.runs[0].predicted_wall_ms = PredictedMs(200.0);
        // Default: the knob is off and prediction error is invisible.
        let diff = diff_reports(&base, &cand);
        assert!(diff.drift.iter().all(|f| !f.what.contains("prediction")));
        // +90 points of error against a 20-point tolerance: drift, never a
        // regression (a worse model is telemetry, not a protocol bug).
        let opts = DiffOptions {
            prediction_tolerance: Some(20.0),
            ..Default::default()
        };
        let diff = diff_reports_with(&base, &cand, &opts);
        assert!(!diff.has_regressions(), "{:?}", diff.regressions);
        assert!(
            diff.drift
                .iter()
                .any(|f| f.what.contains("prediction error")),
            "{:?}",
            diff.drift
        );
        // A tolerance wider than the delta stays quiet.
        let opts = DiffOptions {
            prediction_tolerance: Some(95.0),
            ..Default::default()
        };
        let diff = diff_reports_with(&base, &cand, &opts);
        assert!(diff.drift.iter().all(|f| !f.what.contains("prediction")));
        // Unset predictions (pre-serve baselines deserialize to 0) are
        // never compared, whatever the candidate recorded.
        let mut unset = base.clone();
        unset.runs[0].predicted_wall_ms = PredictedMs(0.0);
        let opts = DiffOptions {
            prediction_tolerance: Some(0.0),
            ..Default::default()
        };
        let diff = diff_reports_with(&unset, &cand, &opts);
        assert!(
            diff.drift.iter().all(|f| !f.what.contains("prediction")),
            "{:?}",
            diff.drift
        );
    }

    #[test]
    fn markdown_rendering_tables_the_findings() {
        let base = report();
        let mut cand = base.clone();
        cand.runs[0].outcome = RunOutcome::QuiescedPartial;
        cand.runs[1].messages += 7;
        let diff = diff_reports(&base, &cand);
        let md = diff.render_markdown();
        assert!(md.contains("### scenario diff"), "{md}");
        assert!(md.contains("❌ regressions"), "{md}");
        assert!(md.contains("| run | what | baseline | candidate |"), "{md}");
        assert!(md.contains("**Regressions** (1)"), "{md}");
        assert!(md.contains("**Drift (informational)** (1)"), "{md}");
        assert!(md.contains("quiesced-partial"), "{md}");
        // A clean diff renders a clean verdict and no tables.
        let clean = diff_reports(&base, &base.clone()).render_markdown();
        assert!(clean.contains("✅ clean"), "{clean}");
        assert!(!clean.contains("| run |"), "{clean}");
    }

    #[test]
    fn message_drift_is_informational_only() {
        let base = report();
        let mut cand = base.clone();
        cand.runs[0].messages += 100;
        cand.runs[0].rounds += 1;
        let diff = diff_reports(&base, &cand);
        assert!(!diff.has_regressions());
        assert_eq!(diff.drift.len(), 2);
    }

    #[test]
    fn mismatched_run_sets_are_not_comparable() {
        let base = report();
        let mut cand = base.clone();
        let moved = cand.runs.pop().unwrap();
        let diff = diff_reports(&base, &cand);
        assert!(!diff.is_comparable());
        assert!(
            diff.has_regressions(),
            "mismatch cannot certify no-regression"
        );
        assert_eq!(diff.only_in_baseline.len(), 1);
        assert!(diff.only_in_baseline[0].contains(&moved.scenario));
        assert!(diff.render().contains("spec mismatch"));
    }
}
