//! Campaign report diffing: `scenario diff a.json b.json`.
//!
//! Compares two [`CampaignReport`]s produced by the *same spec* at different
//! code revisions and classifies every matched run pair, so CI can gate on
//! quality regressions the way it already gates on absolute bound violations.
//! Runs are matched on their full configuration key — scenario, graph,
//! initial tree, delay, start, faults, executor and seed — which is exactly
//! the identity of one cell of the sweep matrix.
//!
//! A **regression** (candidate worse than baseline) is any of:
//!
//! * the outcome degrades along `quiesced-correct → quiesced-partial →
//!   event-limit-abort → failed`;
//! * the paper degree-bound verdict flips from respected to violated;
//! * the final tree degree increases;
//! * a run that used to succeed now records an error.
//!
//! The mirror conditions count as **improvements**; changed message or round
//! counts with an unchanged verdict are reported as informational **drift**.
//! Run sets that do not match (runs only in one report) make the diff
//! non-comparable — a spec mismatch is an answer, not a pass.

use crate::runner::{CampaignReport, RunOutcome, RunRecord};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// One classified difference between a matched pair of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// The run's configuration key, e.g.
    /// `suite / file(data/sample.mtx.gz) / greedy_hub / sim / seed 1`.
    pub key: String,
    /// Which quantity changed.
    pub what: String,
    /// Value in the baseline report.
    pub baseline: String,
    /// Value in the candidate report.
    pub candidate: String,
}

impl DiffFinding {
    fn new(
        key: &str,
        what: impl Into<String>,
        baseline: impl ToString,
        candidate: impl ToString,
    ) -> DiffFinding {
        DiffFinding {
            key: key.to_string(),
            what: what.into(),
            baseline: baseline.to_string(),
            candidate: candidate.to_string(),
        }
    }
}

/// The classified comparison of two campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Baseline campaign name.
    pub baseline_name: String,
    /// Candidate campaign name.
    pub candidate_name: String,
    /// Matched run pairs.
    pub matched: usize,
    /// Keys present only in the baseline (spec mismatch).
    pub only_in_baseline: Vec<String>,
    /// Keys present only in the candidate (spec mismatch).
    pub only_in_candidate: Vec<String>,
    /// Candidate-worse findings (outcome, bound verdict, degree, errors).
    pub regressions: Vec<DiffFinding>,
    /// Candidate-better findings.
    pub improvements: Vec<DiffFinding>,
    /// Verdict-neutral changes (message/round counts), informational only.
    pub drift: Vec<DiffFinding>,
}

impl ReportDiff {
    /// Whether the two reports cover the same run set.
    pub fn is_comparable(&self) -> bool {
        self.only_in_baseline.is_empty() && self.only_in_candidate.is_empty()
    }

    /// Whether the candidate regressed anywhere (or the run sets diverge,
    /// which makes "no regressions" unprovable).
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty() || !self.is_comparable()
    }

    /// Human-readable summary, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff `{}` (baseline) vs `{}` (candidate): {} matched runs, \
             {} regressions, {} improvements, {} drifted",
            self.baseline_name,
            self.candidate_name,
            self.matched,
            self.regressions.len(),
            self.improvements.len(),
            self.drift.len(),
        );
        for (label, keys) in [
            ("only in baseline", &self.only_in_baseline),
            ("only in candidate", &self.only_in_candidate),
        ] {
            if !keys.is_empty() {
                let _ = writeln!(
                    out,
                    "  {label}: {} runs (spec mismatch — reports are not comparable)",
                    keys.len()
                );
                for key in keys.iter().take(5) {
                    let _ = writeln!(out, "    {key}");
                }
                if keys.len() > 5 {
                    let _ = writeln!(out, "    … and {} more", keys.len() - 5);
                }
            }
        }
        for (label, findings) in [
            ("REGRESSION", &self.regressions),
            ("improvement", &self.improvements),
            ("drift", &self.drift),
        ] {
            for f in findings {
                let _ = writeln!(
                    out,
                    "  {label}: {} — {}: {} -> {}",
                    f.key, f.what, f.baseline, f.candidate
                );
            }
        }
        out
    }
}

/// Severity rank of an outcome: higher is worse.
fn outcome_rank(outcome: RunOutcome) -> u8 {
    match outcome {
        RunOutcome::QuiescedCorrect => 0,
        RunOutcome::QuiescedPartial => 1,
        RunOutcome::EventLimitAbort => 2,
        RunOutcome::Failed => 3,
    }
}

fn run_key(run: &RunRecord) -> String {
    format!(
        "{} / {} / {} / {} / {} / {} / {} / seed {}",
        run.scenario,
        run.graph,
        run.initial,
        run.delay,
        run.start,
        run.faults,
        run.executor,
        run.seed
    )
}

/// Diffs `candidate` against `baseline`. See the module docs for the
/// classification rules.
///
/// Keys are matched as a multiset: a spec can legitimately expand several
/// runs with identical configuration labels (e.g. a repeated seed), and
/// those pair up in expansion order instead of collapsing onto one entry —
/// a report diffed against itself is always clean.
pub fn diff_reports(baseline: &CampaignReport, candidate: &CampaignReport) -> ReportDiff {
    let mut base_by_key: BTreeMap<String, VecDeque<&RunRecord>> = BTreeMap::new();
    for run in &baseline.runs {
        base_by_key.entry(run_key(run)).or_default().push_back(run);
    }
    let mut diff = ReportDiff {
        baseline_name: baseline.name.clone(),
        candidate_name: candidate.name.clone(),
        matched: 0,
        only_in_baseline: Vec::new(),
        only_in_candidate: Vec::new(),
        regressions: Vec::new(),
        improvements: Vec::new(),
        drift: Vec::new(),
    };
    for cand in &candidate.runs {
        let key = run_key(cand);
        let Some(base) = base_by_key.get_mut(&key).and_then(VecDeque::pop_front) else {
            diff.only_in_candidate.push(key);
            continue;
        };
        diff.matched += 1;
        compare_pair(&key, base, cand, &mut diff);
    }
    diff.only_in_baseline = base_by_key
        .into_iter()
        .flat_map(|(key, leftovers)| std::iter::repeat_n(key, leftovers.len()))
        .collect();
    diff
}

fn compare_pair(key: &str, base: &RunRecord, cand: &RunRecord, diff: &mut ReportDiff) {
    let base_rank = outcome_rank(base.outcome);
    let cand_rank = outcome_rank(cand.outcome);
    if cand_rank != base_rank {
        let finding = DiffFinding::new(key, "outcome", base.outcome.label(), cand.outcome.label());
        if cand_rank > base_rank {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    if base.within_bound != cand.within_bound {
        let finding = DiffFinding::new(
            key,
            "degree-bound verdict",
            if base.within_bound {
                "within"
            } else {
                "violated"
            },
            if cand.within_bound {
                "within"
            } else {
                "violated"
            },
        );
        if base.within_bound {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    if base.final_degree != cand.final_degree {
        let finding = DiffFinding::new(key, "final degree", base.final_degree, cand.final_degree);
        if cand.final_degree > base.final_degree {
            diff.regressions.push(finding);
        } else {
            diff.improvements.push(finding);
        }
    }
    match (&base.error, &cand.error) {
        (None, Some(e)) => diff
            .regressions
            .push(DiffFinding::new(key, "error", "none", e.clone())),
        (Some(e), None) => {
            diff.improvements
                .push(DiffFinding::new(key, "error", e.clone(), "none"))
        }
        _ => {}
    }
    // Verdict-neutral performance drift, worth a line but never an exit code.
    if base.messages != cand.messages {
        diff.drift.push(DiffFinding::new(
            key,
            "messages",
            base.messages,
            cand.messages,
        ));
    }
    if base.rounds != cand.rounds {
        diff.drift
            .push(DiffFinding::new(key, "rounds", base.rounds, cand.rounds));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::ScenarioMatrix;

    fn report() -> CampaignReport {
        let spec = r#"
            [[scenario]]
            name = "mini"
            graph = { family = "star_with_leaf_edges", n = [8, 10] }
            seeds = [1, 2]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn identical_reports_diff_clean() {
        let a = report();
        let diff = diff_reports(&a, &a.clone());
        assert_eq!(diff.matched, a.runs.len());
        assert!(diff.is_comparable());
        assert!(!diff.has_regressions());
        assert!(diff.regressions.is_empty());
        assert!(diff.improvements.is_empty());
        assert!(diff.drift.is_empty());
        assert!(diff.render().contains("0 regressions"));
    }

    #[test]
    fn degraded_outcome_and_degree_are_regressions() {
        let base = report();
        let mut cand = base.clone();
        cand.runs[0].outcome = RunOutcome::QuiescedPartial;
        cand.runs[1].final_degree += 1;
        cand.runs[2].within_bound = false;
        cand.runs[3].error = Some("boom".to_string());
        let diff = diff_reports(&base, &cand);
        assert!(diff.has_regressions());
        assert_eq!(diff.regressions.len(), 4);
        assert!(diff.improvements.is_empty());
        let rendered = diff.render();
        assert!(rendered.contains("REGRESSION"), "{rendered}");
        assert!(rendered.contains("outcome"), "{rendered}");
        assert!(rendered.contains("final degree"), "{rendered}");
        assert!(rendered.contains("degree-bound verdict"), "{rendered}");
        // The mirror direction counts as improvements, not regressions.
        let mirror = diff_reports(&cand, &base);
        assert!(!mirror.has_regressions());
        assert_eq!(mirror.improvements.len(), 4);
    }

    #[test]
    fn duplicate_run_keys_match_as_a_multiset() {
        // A spec can expand several runs with identical configuration labels
        // (e.g. seeds = [1, 1]); self-diffing such a report must stay clean
        // instead of collapsing the duplicates into a phantom mismatch.
        let spec = r#"
            [[scenario]]
            name = "dup"
            graph = { family = "path", n = 6 }
            seeds = [1, 1]
        "#;
        let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
        let report = run_campaign(
            &matrix,
            &RunnerConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2);
        let diff = diff_reports(&report, &report.clone());
        assert_eq!(diff.matched, 2);
        assert!(diff.is_comparable());
        assert!(!diff.has_regressions());
        // Dropping one duplicate is still detected as a mismatch.
        let mut shorter = report.clone();
        shorter.runs.pop();
        let diff = diff_reports(&report, &shorter);
        assert_eq!(diff.only_in_baseline.len(), 1);
        assert!(diff.has_regressions());
    }

    #[test]
    fn message_drift_is_informational_only() {
        let base = report();
        let mut cand = base.clone();
        cand.runs[0].messages += 100;
        cand.runs[0].rounds += 1;
        let diff = diff_reports(&base, &cand);
        assert!(!diff.has_regressions());
        assert_eq!(diff.drift.len(), 2);
    }

    #[test]
    fn mismatched_run_sets_are_not_comparable() {
        let base = report();
        let mut cand = base.clone();
        let moved = cand.runs.pop().unwrap();
        let diff = diff_reports(&base, &cand);
        assert!(!diff.is_comparable());
        assert!(
            diff.has_regressions(),
            "mismatch cannot certify no-regression"
        );
        assert_eq!(diff.only_in_baseline.len(), 1);
        assert!(diff.only_in_baseline[0].contains(&moved.scenario));
        assert!(diff.render().contains("spec mismatch"));
    }
}
