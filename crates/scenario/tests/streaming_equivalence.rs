//! Property tests pinning the streaming two-pass loader to the legacy
//! in-memory [`GraphBuilder`] semantics: for generated edge-list, METIS and
//! MatrixMarket files — plain and gzipped, with comments, blank lines,
//! isolated nodes, duplicate entries and shuffled edge order — `load_graph`
//! must produce exactly the graph a `GraphBuilder` fed the same edges would.

use mdst_graph::{Graph, GraphBuilder, NodeId};
use mdst_scenario::io::{load_graph, GraphFormat};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// SplitMix64, so edge sets, shuffles and comment placement are all
/// seed-deterministic (the vendored proptest shim has no collection
/// strategies — the seed carries the randomness instead).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// A raw workload: a declared node count, an edge-multiset size and a seed
/// driving edge endpoints, shuffles and comment injection.
fn workload() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..40, 1usize..80, any::<u64>())
}

/// The seeded edge multiset: `count` loop-free pairs with endpoints below
/// `n`, duplicates welcome, and nothing forcing every node to appear — so
/// interior (and, for header-declared formats, trailing) nodes stay isolated.
fn gen_edges(n: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut state = seed;
    let mut edges = Vec::with_capacity(count);
    while edges.len() < count {
        let u = (splitmix64(&mut state) % n as u64) as usize;
        let v = (splitmix64(&mut state) % n as u64) as usize;
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    edges
}

/// The reference semantics: every edge through
/// [`GraphBuilder::add_edge_idempotent`] on an `n`-node builder.
fn reference(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))
            .expect("generated edges are in range and loop-free");
    }
    b.build()
}

/// Removes the twin files when the case ends — pass or panic alike.
struct Cleanup(PathBuf, PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(&self.1);
    }
}

/// Writes `text` under a case-unique name plus a gzip twin and returns both
/// paths with a cleanup guard.
fn write_twins(text: &str, ext: &str) -> (PathBuf, PathBuf, Cleanup) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let plain = std::env::temp_dir().join(format!(
        "mdst_stream_eq_{}_{case}.{ext}",
        std::process::id()
    ));
    let gz = plain.with_extension(format!("{ext}.gz"));
    std::fs::write(&plain, text).expect("temp dir is writable");
    let mut enc = flate2::write::GzEncoder::new(Vec::new(), flate2::Compression::fast());
    enc.write_all(text.as_bytes()).expect("in-memory gzip");
    std::fs::write(&gz, enc.finish().expect("in-memory gzip")).expect("temp dir is writable");
    let guard = Cleanup(plain.clone(), gz.clone());
    (plain, gz, guard)
}

/// Renders the edge multiset as a hostile edge-list file: shuffled order,
/// interleaved `#`/`%` comment lines, blank lines and inline comments.
fn render_edge_list(edges: &[(usize, usize)], seed: u64) -> String {
    let mut order: Vec<(usize, usize)> = edges.to_vec();
    shuffle(&mut order, seed);
    let mut state = seed ^ 0xdead_beef;
    let mut out = String::from("# generated workload\n");
    for (u, v) in order {
        match splitmix64(&mut state) % 5 {
            0 => out.push_str("% interleaved comment\n"),
            1 => out.push('\n'),
            _ => {}
        }
        if splitmix64(&mut state).is_multiple_of(4) {
            out.push_str(&format!("{u} {v} # inline note\n"));
        } else {
            out.push_str(&format!("{u} {v}\n"));
        }
    }
    out
}

/// Renders the reference graph as a METIS file with shuffled neighbour order
/// inside each adjacency line and `%` comment lines sprinkled between lines
/// (comments vanish; blank data lines are positional, so isolated nodes show
/// up as exactly that — empty adjacency lines).
fn render_metis_shuffled(graph: &Graph, seed: u64) -> String {
    let mut state = seed;
    let mut out = String::from("% generated workload\n");
    out.push_str(&format!("{} {}\n", graph.node_count(), graph.edge_count()));
    for u in graph.nodes() {
        if splitmix64(&mut state).is_multiple_of(4) {
            out.push_str("% between vertex lines\n");
        }
        let mut row: Vec<usize> = graph.neighbors(u).map(|v| v.index() + 1).collect();
        shuffle(&mut row, splitmix64(&mut state));
        let row: Vec<String> = row.iter().map(usize::to_string).collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

/// Renders the edge multiset as a MatrixMarket coordinate file: shuffled
/// entry order, random orientation per entry, duplicate entries kept (the
/// declared `nnz` counts data lines, and duplicates collapse onto one
/// undirected edge exactly like `add_edge_idempotent`), `%` comments and
/// blank lines.
fn render_matrix_market(n: usize, edges: &[(usize, usize)], seed: u64) -> String {
    let mut order: Vec<(usize, usize)> = edges.to_vec();
    shuffle(&mut order, seed);
    let mut state = seed ^ 0x5eed;
    let mut out = String::from("%%MatrixMarket matrix coordinate pattern symmetric\n");
    out.push_str("% generated workload\n");
    out.push_str(&format!("{n} {n} {}\n", order.len()));
    for (u, v) in order {
        match splitmix64(&mut state) % 6 {
            0 => out.push_str("% interleaved comment\n"),
            1 => out.push('\n'),
            _ => {}
        }
        if splitmix64(&mut state).is_multiple_of(2) {
            out.push_str(&format!("{} {}\n", u + 1, v + 1));
        } else {
            out.push_str(&format!("{} {}\n", v + 1, u + 1));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streaming_edge_list_matches_graph_builder((n, count, seed) in workload()) {
        let edges = gen_edges(n, count, seed);
        // An edge list cannot declare trailing isolated nodes: the loader
        // discovers `max(endpoint) + 1`, so the reference builder must too.
        let top = edges.iter().map(|&(u, v)| u.max(v)).max().unwrap();
        let expected = reference(top + 1, &edges);
        let text = render_edge_list(&edges, seed);
        let (plain, gz, _guard) = write_twins(&text, "el");
        let streamed = load_graph(&plain, Some(GraphFormat::EdgeList)).expect("plain file loads");
        prop_assert_eq!(&streamed, &expected);
        let inflated = load_graph(&gz, Some(GraphFormat::EdgeList)).expect("gzip twin loads");
        prop_assert_eq!(&inflated, &expected);
    }

    #[test]
    fn streaming_metis_matches_graph_builder((n, count, seed) in workload()) {
        let edges = gen_edges(n, count, seed);
        let expected = reference(n, &edges);
        let text = render_metis_shuffled(&expected, seed);
        let (plain, gz, _guard) = write_twins(&text, "graph");
        let streamed = load_graph(&plain, Some(GraphFormat::Metis)).expect("plain file loads");
        prop_assert_eq!(&streamed, &expected);
        let inflated = load_graph(&gz, Some(GraphFormat::Metis)).expect("gzip twin loads");
        prop_assert_eq!(&inflated, &expected);
    }

    #[test]
    fn streaming_matrix_market_matches_graph_builder((n, count, seed) in workload()) {
        let edges = gen_edges(n, count, seed);
        let expected = reference(n, &edges);
        let text = render_matrix_market(n, &edges, seed);
        let (plain, gz, _guard) = write_twins(&text, "mtx");
        let streamed =
            load_graph(&plain, Some(GraphFormat::MatrixMarket)).expect("plain file loads");
        prop_assert_eq!(&streamed, &expected);
        let inflated = load_graph(&gz, Some(GraphFormat::MatrixMarket)).expect("gzip twin loads");
        prop_assert_eq!(&inflated, &expected);
    }
}
