//! End-to-end benchmark-suite ingestion: gzipped MatrixMarket and METIS
//! files sweeping through a campaign via the `graph_files` axis, with the
//! campaign-wide topology cache sharing one `Arc<Graph>` per source.

use mdst_scenario::prelude::*;
use mdst_scenario::runner::TopologyCache;
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn create(name: &str, graph: &mdst_graph::Graph) -> TempFile {
        let mut path = std::env::temp_dir();
        path.push(format!("mdst-suite-{}-{name}", std::process::id()));
        save_graph(&path, graph, None).expect("temp dir is writable");
        TempFile(path)
    }

    fn path_str(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn gzipped_mtx_and_metis_files_sweep_end_to_end() {
    let graph = mdst_graph::generators::gnp_connected(24, 0.2, 5).unwrap();
    let mtx = TempFile::create("suite.mtx.gz", &graph);
    let metis = TempFile::create("suite.graph", &graph);

    let spec = format!(
        r#"
        [campaign]
        name = "suite-e2e"

        [[scenario]]
        name = "files"
        graph_files = ["{}", "{}"]
        initial = ["greedy_hub", "bfs"]
        executor = ["sim", "pool"]
        workers = 2
        seeds = [1, 2]
        "#,
        mtx.path_str(),
        metis.path_str(),
    );
    let matrix = ScenarioMatrix::from_toml_str(&spec).unwrap();
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();

    // 2 files × 2 initial × 2 executors × 2 seeds.
    assert_eq!(report.total.runs, 16);
    assert_eq!(report.total.failures, 0, "{:?}", report.runs[0].error);
    assert_eq!(report.total.bound_violations, 0);
    let mtx_rows: Vec<&RunRecord> = report
        .runs
        .iter()
        .filter(|r| r.graph.contains(".mtx.gz"))
        .collect();
    let metis_rows: Vec<&RunRecord> = report
        .runs
        .iter()
        .filter(|r| r.graph.contains(".graph"))
        .collect();
    assert_eq!(mtx_rows.len(), 8, "gzipped MatrixMarket rows in the report");
    assert_eq!(metis_rows.len(), 8, "METIS rows in the report");
    // Same underlying graph, whatever the encoding: every measured quantity
    // that only depends on the topology must agree pairwise.
    for (a, b) in mtx_rows.iter().zip(&metis_rows) {
        assert_eq!(a.outcome, RunOutcome::QuiescedCorrect);
        assert_eq!((a.n, a.m), (24, graph.edge_count()));
        assert_eq!((a.n, a.m), (b.n, b.m));
        assert_eq!(a.final_degree, b.final_degree);
        assert_eq!(a.degree_upper_bound, b.degree_upper_bound);
        assert_eq!(a.messages, b.messages);
    }
}

#[test]
fn topology_cache_shares_one_arc_per_source() {
    let graph = mdst_graph::generators::gnp_connected(16, 0.3, 9).unwrap();
    let file = TempFile::create("cache.el.gz", &graph);
    let source = mdst_scenario::spec::ResolvedGraph::File {
        path: file.path_str().to_string(),
        format: None,
    };
    let cache = TopologyCache::new();
    assert!(cache.is_empty());
    let a = cache.get(&source, 1).unwrap();
    // Different run seeds of a file source resolve to the *same* Arc: the
    // file is parsed once for the whole campaign.
    let b = cache.get(&source, 2).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(cache.len(), 1);
    assert_eq!(*a, graph);

    // Seeded families cache per seed and stay pointer-stable per key.
    let family = mdst_scenario::spec::ResolvedGraph::Family {
        family: "gnp_connected".to_string(),
        params: vec![
            ("n".to_string(), mdst_scenario::spec::ParamValue::Int(12)),
            ("p".to_string(), mdst_scenario::spec::ParamValue::Float(0.4)),
        ],
    };
    let s1 = cache.get(&family, 1).unwrap();
    let s1_again = cache.get(&family, 1).unwrap();
    let s2 = cache.get(&family, 2).unwrap();
    assert!(Arc::ptr_eq(&s1, &s1_again));
    assert!(!Arc::ptr_eq(&s1, &s2));
    assert_ne!(*s1, *s2, "different seeds generate different graphs");

    // Build errors are cached per key, not silently retried into panics.
    let missing = mdst_scenario::spec::ResolvedGraph::File {
        path: "/nonexistent/mdst-suite-missing.el".to_string(),
        format: None,
    };
    assert!(cache.get(&missing, 1).is_err());
    assert!(cache.get(&missing, 7).is_err());
}
