//! Property tests for the graph I/O formats: writing and re-reading a graph
//! must preserve node count, edge set and connectivity, for both edge-list
//! and DIMACS encodings.

use mdst_graph::{algorithms, generators, Graph};
use mdst_scenario::io::{
    parse_dimacs, parse_edge_list, parse_graph, parse_matrix_market, parse_metis, render_graph,
    to_dimacs, to_edge_list, to_matrix_market, to_metis, GraphFormat,
};
use proptest::prelude::*;

fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0usize..60, any::<u64>()).prop_map(|(n, extra, seed)| {
        generators::random_connected(n, extra, seed).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_list_round_trip_preserves_the_graph(graph in connected_graph()) {
        let text = to_edge_list(&graph);
        let back = parse_edge_list(&text).expect("canonical output parses");
        prop_assert_eq!(back.node_count(), graph.node_count());
        prop_assert_eq!(back.edge_count(), graph.edge_count());
        let a: Vec<_> = graph.edges().collect();
        let b: Vec<_> = back.edges().collect();
        prop_assert_eq!(a, b);
        prop_assert!(algorithms::is_connected(&back));
        prop_assert_eq!(&back, &graph);
    }

    #[test]
    fn dimacs_round_trip_preserves_the_graph(graph in connected_graph()) {
        let text = to_dimacs(&graph);
        let back = parse_dimacs(&text).expect("canonical output parses");
        prop_assert_eq!(back.node_count(), graph.node_count());
        prop_assert_eq!(back.edge_count(), graph.edge_count());
        let a: Vec<_> = graph.edges().collect();
        let b: Vec<_> = back.edges().collect();
        prop_assert_eq!(a, b);
        prop_assert!(algorithms::is_connected(&back));
        prop_assert_eq!(&back, &graph);
    }

    #[test]
    fn metis_round_trip_preserves_the_graph(graph in connected_graph()) {
        let text = to_metis(&graph);
        let back = parse_metis(&text).expect("canonical output parses");
        prop_assert_eq!(&back, &graph);
        prop_assert!(algorithms::is_connected(&back));
    }

    #[test]
    fn matrix_market_round_trip_preserves_the_graph(graph in connected_graph()) {
        let text = to_matrix_market(&graph);
        let back = parse_matrix_market(&text).expect("canonical output parses");
        prop_assert_eq!(&back, &graph);
        prop_assert!(algorithms::is_connected(&back));
    }

    #[test]
    fn cross_format_conversion_is_lossless(graph in connected_graph()) {
        // Chaining every renderer/parser pair must reproduce the graph: the
        // four formats are different encodings of one structure.
        let mut current = graph.clone();
        for format in [
            GraphFormat::EdgeList,
            GraphFormat::Metis,
            GraphFormat::MatrixMarket,
            GraphFormat::Dimacs,
        ] {
            current = parse_graph(&render_graph(&current, format), format).unwrap();
        }
        prop_assert_eq!(&current, &graph);
    }

    #[test]
    fn truncated_metis_bodies_are_rejected(graph in connected_graph()) {
        // Dropping the last vertex line must trip the vertex-count check.
        let text = to_metis(&graph);
        let lines: Vec<&str> = text.lines().collect();
        let truncated = lines[..lines.len() - 1].join("\n");
        prop_assert!(parse_metis(&truncated).is_err());
    }

    #[test]
    fn truncated_matrix_market_bodies_are_rejected(graph in connected_graph()) {
        let text = to_matrix_market(&graph);
        let lines: Vec<&str> = text.lines().collect();
        let truncated = lines[..lines.len() - 1].join("\n");
        prop_assert!(parse_matrix_market(&truncated).is_err());
    }

    #[test]
    fn truncated_dimacs_is_rejected(graph in connected_graph(), cut in 1usize..8) {
        // Dropping edge lines must be caught by the declared-count check.
        let text = to_dimacs(&graph);
        let lines: Vec<&str> = text.lines().collect();
        if graph.edge_count() >= cut {
            let truncated = lines[..lines.len() - cut].join("\n");
            prop_assert!(parse_dimacs(&truncated).is_err());
        }
    }
}

#[test]
fn malformed_files_produce_line_numbered_errors() {
    let err = parse_edge_list("0 1\nnot numbers\n").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    let err = parse_dimacs("p edge 4 2\ne 1 2\ne 9 1\n").unwrap_err();
    assert!(
        err.to_string().contains("line 3") || err.to_string().contains("out of range"),
        "{err}"
    );
}

#[test]
fn format_labels_are_stable() {
    assert_eq!(GraphFormat::EdgeList.label(), "edge-list");
    assert_eq!(GraphFormat::Dimacs.label(), "dimacs");
    assert_eq!(GraphFormat::Metis.label(), "metis");
    assert_eq!(GraphFormat::MatrixMarket.label(), "matrix-market");
}
