//! End-to-end fault-campaign tests: the benign-faults bit-identity guarantee,
//! the outcome taxonomy under real faults, and spec validation of fault axes.

use mdst_scenario::prelude::*;
use std::path::PathBuf;

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn new(name: &str, content: &str) -> TempFile {
        let mut path = std::env::temp_dir();
        path.push(format!("mdst-faults-{}-{name}", std::process::id()));
        std::fs::write(&path, content).expect("temp dir is writable");
        TempFile(path)
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const BASE: &str = r#"
    [campaign]
    name = "fault-identity"

    [[scenario]]
    name = "gnp"
    graph = { family = "gnp_connected", n = [12, 16], p = 0.3 }
    initial = ["greedy_hub", "bfs"]
    seeds = [1, 2]
"#;

#[test]
fn benign_fault_axis_is_bit_identical_to_no_fault_axis() {
    // The same campaign, once without a `faults` key and once with the
    // explicit benign axis: every run record must match bit for bit (wall
    // time aside — it is the one field that measures the host, not the run).
    let with_faults = format!("{BASE}    faults = [ \"none\" ]\n");
    let without = ScenarioMatrix::from_toml_str(BASE).unwrap();
    let with = ScenarioMatrix::from_toml_str(&with_faults).unwrap();
    let a = run_campaign(
        &without,
        &RunnerConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let b = run_campaign(
        &with,
        &RunnerConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        let mut y = y.clone();
        y.wall_ms = x.wall_ms;
        y.exec_wall_ms = x.exec_wall_ms;
        assert_eq!(*x, y, "benign fault axis changed a run record");
    }
    // `{ loss = 0.0 }` is the same benign entry spelled differently.
    let zero_loss = format!("{BASE}    faults = [ {{ loss = 0.0 }} ]\n");
    let zero = ScenarioMatrix::from_toml_str(&zero_loss).unwrap();
    let c = run_campaign(
        &zero,
        &RunnerConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    for (x, y) in a.runs.iter().zip(&c.runs) {
        let mut y = y.clone();
        y.wall_ms = x.wall_ms;
        y.exec_wall_ms = x.exec_wall_ms;
        assert_eq!(*x, y, "loss = 0.0 changed a run record");
    }
}

#[test]
fn faulty_campaign_classifies_and_reproduces() {
    let spec = r#"
        [campaign]
        name = "fault-sweep"

        [[scenario]]
        name = "lossy"
        graph = { family = "gnp_connected", n = 14, p = 0.35 }
        faults = [ "none", { loss = 0.4 }, { loss = 0.1, crashes = [[3, 5]] } ]
        seeds = [1, 2, 3]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 9);
    // Every run carries a classification and the counts add up.
    let classified: usize = report.total.outcomes.values().sum();
    assert_eq!(classified, report.total.runs);
    // Fault-free slice: healthy.
    for run in report.runs.iter().filter(|r| r.faults == "none") {
        assert_eq!(run.outcome, RunOutcome::QuiescedCorrect);
        assert_eq!(run.dropped_messages, 0);
        assert_eq!(run.survivors, run.n);
        assert!(run.error.is_none());
    }
    // Lossy slice: drops observed somewhere, runs still not failures.
    let lossy: Vec<_> = report
        .runs
        .iter()
        .filter(|r| r.faults == "loss(0.4)")
        .collect();
    assert!(lossy.iter().any(|r| r.dropped_messages > 0));
    assert!(lossy.iter().all(|r| r.error.is_none()));
    // Crash slice: exactly one crash each, survivors shrink.
    for run in report.runs.iter().filter(|r| r.faults.contains("crashes")) {
        assert_eq!(run.crashed_nodes, 1);
        assert!(run.survivors < run.n);
    }
    // Seed-reproducible: run the whole campaign again and compare the fault
    // accounting of every run.
    let again = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    for (x, y) in report.runs.iter().zip(&again.runs) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.dropped_messages, y.dropped_messages);
        assert_eq!(x.crashed_nodes, y.crashed_nodes);
        assert_eq!(x.final_degree, y.final_degree);
    }
    // The JSON report round-trips with the new fields.
    let json = campaign_to_json(&report);
    use serde::Deserialize;
    let value = serde::from_json_str(&json).unwrap();
    let back = CampaignReport::from_value(&value).unwrap();
    assert_eq!(back, report);
    // And the CSV carries the fault columns.
    let csv = campaign_to_csv(&report);
    let header = csv.lines().next().unwrap();
    for column in [
        "faults",
        "outcome",
        "dropped_messages",
        "crashed_nodes",
        "survivors",
    ] {
        assert!(header.contains(column), "missing CSV column {column}");
    }
}

#[test]
fn validate_rejects_malformed_fault_axes_in_spec_files() {
    // The same path the `scenario validate` CLI takes: load from disk, then
    // expand. Malformed fault axes must be rejected at load time.
    let good = TempFile::new(
        "good.toml",
        "[[scenario]]\nname = \"x\"\ngraph = { family = \"path\", n = 6 }\n\
         faults = [ \"none\", { loss = 0.2, crashes = [[1, 9]] } ]\n",
    );
    let matrix = ScenarioMatrix::from_path(&good.0).unwrap();
    assert_eq!(matrix.expand().unwrap().len(), 2);

    for (name, faults) in [
        ("loss-range.toml", "faults = { loss = 2.0 }"),
        ("loss-type.toml", "faults = { loss = \"heavy\" }"),
        ("crash-shape.toml", "faults = { crashes = [[1, 2, 3]] }"),
        ("cut-shape.toml", "faults = { cuts = [[1, 2]] }"),
        ("unknown-key.toml", "faults = { lozz = 0.1 }"),
        ("unknown-string.toml", "faults = \"mayhem\""),
    ] {
        let file = TempFile::new(
            name,
            &format!(
                "[[scenario]]\nname = \"x\"\ngraph = {{ family = \"path\", n = 6 }}\n{faults}\n"
            ),
        );
        let err = ScenarioMatrix::from_path(&file.0);
        assert!(err.is_err(), "{name}: malformed fault axis was accepted");
    }
}

#[test]
fn out_of_range_fault_targets_fail_the_run_not_the_campaign() {
    // Node 40 does not exist in a 6-node path: the simulator rejects the
    // config, the run records the error, the campaign completes.
    let spec = r#"
        [[scenario]]
        name = "bad-target"
        graph = { family = "path", n = 6 }
        faults = { crashes = [[40, 1]] }
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 1);
    assert_eq!(report.total.failures, 1);
    let error = report.runs[0].error.as_deref().unwrap();
    assert!(error.contains("crash"), "{error}");
}
