//! End-to-end tests of the `executor` sweep axis: cross-backend agreement on
//! the paper's degree-bound verdicts, the new report columns, run-order
//! shuffling and the `parallelism` campaign key.

use mdst_scenario::prelude::*;
use std::collections::BTreeMap;

const CROSS_BACKEND: &str = r#"
    [campaign]
    name = "executor-agreement"

    [[scenario]]
    name = "worst-case"
    graph = { family = "star_with_leaf_edges", n = [10, 14] }
    initial = ["greedy_hub"]
    executor = ["sim", "pool"]
    seeds = [1]

    [[scenario]]
    name = "gnp"
    graph = { family = "gnp_connected", n = 18, p = 0.25 }
    initial = ["greedy_hub", "bfs"]
    executor = ["sim", "pool"]
    seeds = [1, 2]
"#;

#[test]
fn sim_and_pool_agree_on_degree_bound_verdicts() {
    let matrix = ScenarioMatrix::from_toml_str(CROSS_BACKEND).unwrap();
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    // 2 graphs × 2 executors + 2 initials × 2 seeds × 2 executors = 12 runs.
    assert_eq!(report.total.runs, 12);
    assert_eq!(report.total.failures, 0);
    assert_eq!(report.total.bound_violations, 0);

    // Group the records by everything except the executor: each group must
    // contain one sim run and one pool run, and the two must agree on the
    // outcome and on the paper degree-bound verdict. The improvement
    // protocol is message-deterministic, so the final degrees agree too.
    let mut groups: BTreeMap<(String, String, String, u64), Vec<&RunRecord>> = BTreeMap::new();
    for run in &report.runs {
        assert_eq!(run.outcome, RunOutcome::QuiescedCorrect, "{run:?}");
        assert!(run.within_bound, "{run:?}");
        groups
            .entry((
                run.scenario.clone(),
                run.graph.clone(),
                run.initial.clone(),
                run.seed,
            ))
            .or_default()
            .push(run);
    }
    assert_eq!(groups.len(), 6);
    for (key, pair) in &groups {
        assert_eq!(pair.len(), 2, "{key:?}");
        let executors: Vec<&str> = pair.iter().map(|r| r.executor.as_str()).collect();
        assert!(executors.contains(&"sim"), "{key:?}");
        assert!(executors.contains(&"pool"), "{key:?}");
        let (a, b) = (pair[0], pair[1]);
        assert_eq!(a.within_bound, b.within_bound, "{key:?}");
        assert_eq!(a.final_degree, b.final_degree, "{key:?}");
        assert_eq!(a.degree_upper_bound, b.degree_upper_bound, "{key:?}");
        assert_eq!(a.messages, b.messages, "{key:?}");
    }
}

#[test]
fn executor_and_exec_wall_time_appear_in_reports() {
    let matrix = ScenarioMatrix::from_toml_str(CROSS_BACKEND).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    for run in &report.runs {
        assert!(run.exec_wall_ms >= 0.0);
    }
    assert!(
        report.runs.iter().any(|r| r.exec_wall_ms > 0.0),
        "at least the pool runs take measurable wall time"
    );
    // CSV carries the new columns...
    let csv = campaign_to_csv(&report);
    let header = csv.lines().next().unwrap();
    assert!(header.contains(",executor,"), "{header}");
    assert!(header.contains(",exec_wall_ms,"), "{header}");
    assert!(csv
        .lines()
        .skip(1)
        .all(|l| l.contains(",pool,") || l.contains(",sim,")));
    // ...and the JSON round-trips them.
    let json = campaign_to_json(&report);
    let value = serde::from_json_str(&json).unwrap();
    use serde::Deserialize;
    let back = CampaignReport::from_value(&value).unwrap();
    assert_eq!(back, report);
}

#[test]
fn threaded_executor_also_sweeps() {
    let spec = r#"
        [[scenario]]
        name = "tri"
        graph = { family = "star_with_leaf_edges", n = 10 }
        executor = ["sim", "threaded", "pool"]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 3);
    assert_eq!(report.total.failures, 0);
    let degrees: Vec<usize> = report.runs.iter().map(|r| r.final_degree).collect();
    assert!(degrees.windows(2).all(|w| w[0] == w[1]), "{degrees:?}");
}

#[test]
fn executor_axis_rejects_sim_only_combinations() {
    let bad_delay = r#"
        [[scenario]]
        name = "x"
        graph = { family = "path", n = 6 }
        delay = { model = "uniform", min = 1, max = 5 }
        executor = ["pool"]
    "#;
    let err = ScenarioMatrix::from_toml_str(bad_delay).unwrap_err();
    assert!(err.to_string().contains("delay"), "{err}");

    let bad_faults = r#"
        [[scenario]]
        name = "x"
        graph = { family = "path", n = 6 }
        faults = [{ loss = 0.1 }]
        executor = ["sim", "pool"]
    "#;
    let err = ScenarioMatrix::from_toml_str(bad_faults).unwrap_err();
    assert!(err.to_string().contains("faults"), "{err}");

    let bad_start = r#"
        [[scenario]]
        name = "x"
        graph = { family = "path", n = 6 }
        start = { model = "staggered", max_offset = 9 }
        executor = ["threaded"]
    "#;
    let err = ScenarioMatrix::from_toml_str(bad_start).unwrap_err();
    assert!(err.to_string().contains("start"), "{err}");

    let typo = r#"
        [[scenario]]
        name = "x"
        graph = { family = "path", n = 6 }
        executor = "quantum"
    "#;
    let err = ScenarioMatrix::from_toml_str(typo).unwrap_err();
    assert!(err.to_string().contains("quantum"), "{err}");

    // All of those are fine on the sim-only (default) axis.
    let fine = r#"
        [[scenario]]
        name = "x"
        graph = { family = "path", n = 6 }
        delay = { model = "uniform", min = 1, max = 5 }
        faults = [{ loss = 0.1 }]
        start = { model = "staggered", max_offset = 9 }
    "#;
    ScenarioMatrix::from_toml_str(fine).unwrap();
}

#[test]
fn shuffled_campaigns_reproduce_and_keep_expansion_order() {
    let spec = r#"
        [[scenario]]
        name = "mini"
        graph = { family = "gnp_connected", n = [10, 12, 14], p = 0.3 }
        seeds = [1, 2]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    let plain = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let shuffled = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            shuffle: Some(7),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(plain.shuffle_seed, None);
    assert_eq!(shuffled.shuffle_seed, Some(7));
    // Shuffling only changes the claim order: the records come back in
    // expansion order with identical measurements.
    assert_eq!(plain.runs.len(), shuffled.runs.len());
    for (a, b) in plain.runs.iter().zip(&shuffled.runs) {
        let mut b = b.clone();
        b.wall_ms = a.wall_ms;
        b.exec_wall_ms = a.exec_wall_ms;
        assert_eq!(*a, b);
    }
}

#[test]
fn campaign_parallelism_key_caps_the_runner() {
    let spec = r#"
        [campaign]
        name = "capped"
        parallelism = 2

        [[scenario]]
        name = "mini"
        graph = { family = "path", n = 8 }
        seeds = [1, 2, 3, 4]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    assert_eq!(matrix.parallelism, Some(2));
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.threads, 2, "the spec default applies");
    // An explicit --jobs wins over the spec.
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.threads, 1);
    // parallelism = 0 is rejected at parse time.
    let zero = spec.replace("parallelism = 2", "parallelism = 0");
    assert!(ScenarioMatrix::from_toml_str(&zero).is_err());
}
