//! End-to-end tests of the `audit` campaign axis (the `scenario audit` CLI
//! subcommand is exercised in `crates/serve/tests/cli_audit.rs`, next to the
//! binary).

use mdst_scenario::prelude::*;

const AUDITED: &str = r#"
    [campaign]
    name = "audited"

    [[scenario]]
    name = "tri-backend"
    graph = { family = "gnp_connected", n = 16, p = 0.3 }
    executor = ["sim", "threaded", "pool"]
    audit = true
    seeds = [3]
"#;

#[test]
fn audited_runs_are_clean_on_every_backend() {
    let matrix = ScenarioMatrix::from_toml_str(AUDITED).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 3);
    assert_eq!(report.total.failures, 0);
    assert_eq!(report.total.audited, 3);
    assert_eq!(report.total.audit_violations, 0);
    for run in &report.runs {
        assert!(run.audit);
        assert_eq!(
            run.audit_findings, 0,
            "{}: rules {}",
            run.executor, run.audit_rules
        );
        assert!(run.audit_rules.is_empty());
    }
}

#[test]
fn the_audit_axis_sweeps_both_values() {
    let spec = r#"
        [[scenario]]
        name = "both"
        graph = { family = "star_with_leaf_edges", n = 10 }
        audit = [false, true]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 2);
    assert_eq!(report.total.audited, 1);
    let audited: Vec<bool> = report.runs.iter().map(|r| r.audit).collect();
    assert!(audited.contains(&true) && audited.contains(&false));
    // The audit observer must not perturb the measured protocol numbers.
    let (a, b) = (&report.runs[0], &report.runs[1]);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.final_degree, b.final_degree);
}

#[test]
fn audit_fields_survive_json_and_csv_round_trips() {
    let matrix = ScenarioMatrix::from_toml_str(AUDITED).unwrap();
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let json = campaign_to_json(&report);
    let value = serde::from_json_str(&json).unwrap();
    use serde::Deserialize;
    let back = CampaignReport::from_value(&value).unwrap();
    assert_eq!(back, report);
    let csv = campaign_to_csv(&report);
    let header = csv.lines().next().unwrap();
    assert!(header.contains(",audit,"), "{header}");
    assert!(header.contains(",audit_findings,"), "{header}");
    assert!(header.contains(",audit_rules,"), "{header}");
    assert!(csv.lines().skip(1).all(|l| l.contains(",true,")));
}

#[test]
fn a_non_boolean_audit_axis_is_rejected() {
    let spec = r#"
        [[scenario]]
        name = "bad"
        graph = { family = "path", n = 4 }
        audit = [1, 2]
    "#;
    let err = ScenarioMatrix::from_toml_str(spec).unwrap_err();
    assert!(err.to_string().contains("audit"), "{err}");
}

#[test]
fn batched_pool_traces_audit_clean_and_match_sim_link_counts_across_batch_sizes() {
    use mdst_analysis::audit::audit;
    use mdst_graph::{generators, NodeId};
    use mdst_netsim::{
        Context, ExecStatus, NetMessage, PoolConfig, PoolRuntime, Protocol, SimConfig, Simulator,
    };
    use std::sync::Arc;

    /// Hop-bounded echo flood: every delivery's fan-out is a local function
    /// of the arriving token, so the multiset of `from → to` messages — and
    /// with it every per-link count — is schedule independent. That makes
    /// the per-link audit statistics comparable *exactly* between the
    /// simulator and the pool, whatever the worker interleaving.
    #[derive(Debug, Clone)]
    struct Echo(u8);
    impl NetMessage for Echo {
        fn kind(&self) -> &'static str {
            "Echo"
        }
        fn encoded_bits(&self) -> usize {
            8
        }
    }
    struct EchoSt(NodeId);
    impl Protocol for EchoSt {
        type Message = Echo;
        fn on_start(&mut self, ctx: &mut dyn Context<Echo>) {
            if self.0 == NodeId(0) {
                for i in 0..ctx.neighbors().len() {
                    let to = ctx.neighbors()[i];
                    ctx.send(to, Echo(3));
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Echo, ctx: &mut dyn Context<Echo>) {
            if msg.0 > 0 {
                for i in 0..ctx.neighbors().len() {
                    let to = ctx.neighbors()[i];
                    if to != from {
                        ctx.send(to, Echo(msg.0 - 1));
                    }
                }
            }
        }
    }

    let graph = Arc::new(generators::random_connected(60, 120, 13).unwrap());
    let sim_config = SimConfig {
        record_trace: true,
        ..Default::default()
    };
    let mut sim = Simulator::new(&graph, sim_config, |id, _| EchoSt(id)).unwrap();
    sim.run().unwrap();
    let sim_audit = audit(sim.trace());
    assert!(sim_audit.is_clean(), "{}", sim_audit.to_markdown());
    assert!(sim_audit.sends > 0);

    // Every swept batch size must audit clean *and* agree with the simulator
    // link by link — the coalesced flush regroups sends per destination, but
    // the messages each directed link carries are invariant.
    for batch in [1usize, 2, 7, 64, 256] {
        let run = PoolRuntime::run(
            &graph,
            |id, _| EchoSt(id),
            &PoolConfig {
                record_trace: true,
                batch,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.status, ExecStatus::Quiesced, "batch {batch}");
        let pool_audit = audit(&run.trace);
        assert!(
            pool_audit.is_clean(),
            "batch {batch}:\n{}",
            pool_audit.to_markdown()
        );
        assert_eq!(pool_audit.sends, sim_audit.sends, "batch {batch}");
        assert_eq!(pool_audit.delivers, sim_audit.delivers, "batch {batch}");
        assert_eq!(pool_audit.links, sim_audit.links, "batch {batch}");
    }
}
