//! End-to-end campaign tests: external graph files through the full
//! pipeline, the checked-in `examples/sweep.toml` matrix, and JSON report
//! round-trips.

use mdst_core::bounds;
use mdst_graph::generators;
use mdst_scenario::prelude::*;
use serde::Deserialize;
use std::path::PathBuf;

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn new(name: &str, content: &str) -> TempFile {
        let mut path = std::env::temp_dir();
        path.push(format!("mdst-scenario-{}-{name}", std::process::id()));
        std::fs::write(&path, content).expect("temp dir is writable");
        TempFile(path)
    }

    fn path_str(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn dimacs_file_runs_through_the_full_pipeline() {
    // A DIMACS file on disk becomes a first-class pipeline input.
    let graph = generators::gnp_connected(18, 0.25, 11).unwrap();
    let file = TempFile::new("pipeline.col", &render_graph(&graph, GraphFormat::Dimacs));

    let spec = format!(
        r#"
        [[scenario]]
        name = "external-dimacs"
        graph = {{ path = '{}' }}
        initial = ["greedy_hub", "bfs"]
        seeds = [1]
        "#,
        file.path_str()
    );
    let matrix = ScenarioMatrix::from_toml_str(&spec).unwrap();
    let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
    assert_eq!(report.total.runs, 2);
    assert_eq!(report.total.failures, 0);
    for run in &report.runs {
        assert_eq!(run.n, graph.node_count());
        assert_eq!(run.m, graph.edge_count());
        assert!(run.within_bound);
        assert!(run.messages > 0);
        assert!(bounds::within_paper_degree_bound(&graph, run.final_degree));
    }
}

#[test]
fn edge_list_file_runs_through_the_full_pipeline() {
    let graph = generators::random_connected(15, 12, 3).unwrap();
    let file = TempFile::new(
        "pipeline.edges",
        &render_graph(&graph, GraphFormat::EdgeList),
    );

    // Load through the io module directly, then through a campaign.
    let loaded = load_graph(file.path_str(), None).unwrap();
    assert_eq!(loaded, graph);

    let spec = format!(
        r#"
        [[scenario]]
        name = "external-edges"
        graph = {{ path = '{}', format = "edge_list" }}
        seeds = [1, 2]
        "#,
        file.path_str()
    );
    let matrix = ScenarioMatrix::from_toml_str(&spec).unwrap();
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.total.runs, 2);
    assert_eq!(report.total.failures, 0);
    assert_eq!(report.total.bound_violations, 0);
}

#[test]
fn checked_in_sweep_example_runs_in_parallel_within_the_paper_bound() {
    // The acceptance campaign: ≥ 20 runs across ≥ 2 graph families, executed
    // in parallel, every per-run final degree within the O(Δ* + log n) check.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/sweep.toml");
    let matrix = ScenarioMatrix::from_path(path).unwrap();
    let runs = matrix.expand().unwrap();
    assert!(
        runs.len() >= 20,
        "sweep.toml expands to {} runs",
        runs.len()
    );
    let families: std::collections::BTreeSet<String> = runs
        .iter()
        .filter_map(|r| match &r.graph {
            ResolvedGraph::Family { family, .. } => Some(family.clone()),
            ResolvedGraph::File { .. } => None,
        })
        .collect();
    assert!(families.len() >= 2, "sweep must cover ≥ 2 graph families");
    let seeds: std::collections::BTreeSet<u64> = runs.iter().map(|r| r.seed).collect();
    assert!(seeds.len() >= 2, "sweep must cover ≥ 2 seeds");

    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.threads > 1, "campaign must actually run in parallel");
    assert_eq!(report.total.runs, runs.len());
    assert_eq!(report.total.failures, 0);
    for run in &report.runs {
        assert!(
            run.within_bound,
            "{}/{} degree {} above bound {}",
            run.scenario, run.graph, run.final_degree, run.degree_upper_bound
        );
    }

    // The JSON campaign report is written and parses back losslessly.
    let json = campaign_to_json(&report);
    let value = serde::from_json_str(&json).unwrap();
    let back = CampaignReport::from_value(&value).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.total.bound_violations, 0);
}

#[test]
fn validate_reports_problems_without_running() {
    let good = r#"
        [[scenario]]
        name = "ok"
        graph = { family = "petersen" }
    "#;
    let matrix = ScenarioMatrix::from_toml_str(good).unwrap();
    let runs = matrix.expand().unwrap();
    assert_eq!(runs.len(), 1);
    runs[0].graph.build(runs[0].seed).unwrap();

    let bad = r#"
        [[scenario]]
        name = "broken"
        graph = { family = "cycle", n = 2 }
    "#;
    let matrix = ScenarioMatrix::from_toml_str(bad).unwrap();
    let runs = matrix.expand().unwrap();
    assert!(runs[0].graph.build(runs[0].seed).is_err());
}
