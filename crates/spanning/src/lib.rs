//! # mdst-spanning
//!
//! Spanning-tree construction substrates.
//!
//! Blin & Butelle's algorithm "supposes a spanning tree already constructed"
//! and explicitly defers to the literature (MST algorithms à la
//! Gallager–Humblet–Spira, DFS trees, …) for that startup step, only requiring
//! that the construction *terminates by process* — every node knows when it is
//! finished and knows its parent and children. This crate provides that
//! substrate in several flavours so the experiments can study how the quality
//! of the initial tree (its maximum degree `k`) drives the number of
//! improvement rounds:
//!
//! * [`flooding::FloodingSt`] — an asynchronous Propagation-of-Information-
//!   with-Feedback (PIF) wave: `2m` probe/echo messages plus an `n − 1`
//!   message "done" broadcast. Under unit delays the result is a BFS tree.
//! * [`dfs_token::DfsTokenSt`] — the classic distributed token traversal
//!   (Tarry's algorithm, as presented in Tel's book which the paper cites),
//!   producing a traversal tree with `2m` token messages.
//! * [`seeds`] — centralized constructions (star-greedy, BFS, DFS, random,
//!   …) used to seed experiments with initial trees of controlled degree,
//!   including the `k = n − 1` worst case of the complexity analysis.
//!
//! All distributed protocols implement [`mdst_netsim::Protocol`] and expose a
//! common [`tree_state::TreeState`] view so the resulting tree can be
//! collected and validated uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfs_token;
pub mod flooding;
pub mod seeds;
pub mod tree_state;

pub use dfs_token::DfsTokenSt;
pub use flooding::FloodingSt;
pub use seeds::{build_initial_tree, InitialTreeKind};
pub use tree_state::{collect_tree, TreeState};
