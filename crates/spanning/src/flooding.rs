//! Flooding (PIF) spanning-tree construction.
//!
//! The root launches a probe wave; every node adopts the sender of the first
//! probe it sees as its parent and echoes back once all of its other links
//! have answered (with either an echo — a child — or a crossing probe — a
//! non-tree link). When the feedback reaches the root the tree is complete and
//! a final "done" broadcast gives every node the termination-by-process
//! knowledge the MDegST algorithm requires.
//!
//! Message cost: every link carries exactly two wave messages (probe/probe on
//! non-tree links, probe/echo on tree links) plus one done message per tree
//! edge — `2m + (n − 1)` in total. Under unit delays the tree is a BFS tree of
//! the root; under arbitrary delays it is some spanning tree, which is all the
//! MDegST algorithm needs.

use crate::tree_state::TreeState;
use mdst_graph::{Graph, GraphError, NodeId, RootedTree};
use mdst_netsim::message::bits::message_bits;
use mdst_netsim::{Context, Metrics, NetMessage, Protocol, SimConfig, Simulator};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Messages of the flooding construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloodMsg {
    /// Wave propagation.
    Probe {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
    /// Feedback: the sender is a child of the receiver and its subtree is
    /// complete.
    Echo {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
    /// Termination broadcast down the finished tree.
    Done {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
}

impl NetMessage for FloodMsg {
    fn kind(&self) -> &'static str {
        match self {
            FloodMsg::Probe { .. } => "Probe",
            FloodMsg::Echo { .. } => "Echo",
            FloodMsg::Done { .. } => "Done",
        }
    }
    fn encoded_bits(&self) -> usize {
        // A probe/echo/done carries no payload beyond its tag; the root
        // identity is implicit in the wave.
        let n = match self {
            FloodMsg::Probe { n } | FloodMsg::Echo { n } | FloodMsg::Done { n } => *n,
        };
        message_bits(n, 0)
    }
}

/// Per-node state of the flooding construction.
#[derive(Debug, Clone)]
pub struct FloodingSt {
    id: NodeId,
    root: NodeId,
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    /// Neighbours whose wave answer (echo or crossing probe) is still missing.
    expected: BTreeSet<NodeId>,
    /// Whether this node has joined the wave (received its first probe or is
    /// the root and has started).
    in_wave: bool,
    /// Whether the feedback of this node's subtree has been sent upward.
    reported: bool,
    done: bool,
}

impl FloodingSt {
    /// Creates the node automaton for `id`, with `root` as the designated
    /// initiator of the construction.
    pub fn new(id: NodeId, root: NodeId) -> Self {
        FloodingSt {
            id,
            root,
            parent: None,
            children: BTreeSet::new(),
            expected: BTreeSet::new(),
            in_wave: false,
            reported: false,
            done: false,
        }
    }

    fn is_root(&self) -> bool {
        self.id == self.root
    }

    fn join_wave(&mut self, parent: Option<NodeId>, ctx: &mut dyn Context<FloodMsg>) {
        self.in_wave = true;
        self.parent = parent;
        self.expected = ctx
            .neighbors()
            .iter()
            .copied()
            .filter(|&v| Some(v) != parent)
            .collect();
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.expected.iter().copied().collect();
        for v in targets {
            ctx.send(v, FloodMsg::Probe { n });
        }
        self.maybe_report(ctx);
    }

    fn maybe_report(&mut self, ctx: &mut dyn Context<FloodMsg>) {
        if !self.in_wave || self.reported || !self.expected.is_empty() {
            return;
        }
        self.reported = true;
        let n = ctx.network_size();
        match self.parent {
            Some(p) => ctx.send(p, FloodMsg::Echo { n }),
            None => {
                // Root: the whole tree is built; tell everyone.
                self.done = true;
                let children: Vec<NodeId> = self.children.iter().copied().collect();
                for c in children {
                    ctx.send(c, FloodMsg::Done { n });
                }
            }
        }
    }
}

impl Protocol for FloodingSt {
    type Message = FloodMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<FloodMsg>) {
        if self.is_root() && !self.in_wave {
            self.join_wave(None, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: FloodMsg, ctx: &mut dyn Context<FloodMsg>) {
        match msg {
            FloodMsg::Probe { .. } => {
                if !self.in_wave && !self.is_root() {
                    self.join_wave(Some(from), ctx);
                } else {
                    // A crossing probe on a non-tree link: counts as `from`'s
                    // answer to our own probe on that link.
                    self.expected.remove(&from);
                    self.maybe_report(ctx);
                }
            }
            FloodMsg::Echo { .. } => {
                self.children.insert(from);
                self.expected.remove(&from);
                self.maybe_report(ctx);
            }
            FloodMsg::Done { n } => {
                if !self.done {
                    self.done = true;
                    let children: Vec<NodeId> = self.children.iter().copied().collect();
                    for c in children {
                        ctx.send(c, FloodMsg::Done { n });
                    }
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

impl TreeState for FloodingSt {
    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }
    fn tree_children(&self) -> &BTreeSet<NodeId> {
        &self.children
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the flooding construction on `graph` under `config` and returns the
/// resulting tree plus the metrics of the run.
pub fn build_flooding_tree(
    graph: &Arc<Graph>,
    root: NodeId,
    config: SimConfig,
) -> Result<(RootedTree, Metrics), GraphError> {
    graph.check_node(root)?;
    let mut sim = Simulator::new(graph, config, |id, _| FloodingSt::new(id, root))
        .map_err(|e| GraphError::InvalidParameter(e.to_string()))?;
    sim.run()
        .map_err(|e| GraphError::NotASpanningTree(format!("construction did not quiesce: {e}")))?;
    let (nodes, metrics, _) = sim.into_parts();
    let tree = crate::tree_state::collect_tree(&nodes)?;
    tree.validate_against(graph)?;
    Ok((tree, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;
    use mdst_netsim::{DelayModel, StartModel};

    fn unit(graph: &Arc<Graph>, root: NodeId) -> (RootedTree, Metrics) {
        build_flooding_tree(graph, root, SimConfig::default()).unwrap()
    }

    #[test]
    fn builds_bfs_tree_under_unit_delays() {
        let g = Arc::new(generators::grid(4, 5).unwrap());
        let (t, _) = unit(&g, NodeId(0));
        assert!(t.is_spanning_tree_of(&g));
        assert_eq!(t.root(), NodeId(0));
        // Unit delays make the wave a BFS wave, so depths equal BFS distances.
        let dist = mdst_graph::algorithms::bfs_distances(&g, NodeId(0));
        for u in g.nodes() {
            assert_eq!(t.depth(u), dist[u.index()].unwrap());
        }
    }

    #[test]
    fn message_count_is_2m_plus_tree_edges() {
        let g = Arc::new(generators::gnp_connected(30, 0.2, 11).unwrap());
        let (t, metrics) = unit(&g, NodeId(3));
        assert!(t.is_spanning_tree_of(&g));
        let m = g.edge_count() as u64;
        let n = g.node_count() as u64;
        assert_eq!(metrics.messages_total, 2 * m + (n - 1));
        assert_eq!(metrics.count_of("Done"), n - 1);
        assert_eq!(metrics.count_of("Probe") + metrics.count_of("Echo"), 2 * m);
    }

    #[test]
    fn every_node_terminates_by_process() {
        let g = Arc::new(generators::hypercube(4).unwrap());
        let mut sim = Simulator::new(&g, SimConfig::default(), |id, _| {
            FloodingSt::new(id, NodeId(5))
        })
        .unwrap();
        sim.run().unwrap();
        assert!(sim.all_terminated());
    }

    #[test]
    fn works_under_adversarial_delays_and_staggered_starts() {
        let g = Arc::new(generators::gnp_connected(40, 0.1, 2).unwrap());
        for seed in 0..5u64 {
            let cfg = SimConfig {
                delay: DelayModel::PerLinkFixed {
                    min: 1,
                    max: 17,
                    seed,
                },
                start: StartModel::Staggered {
                    max_offset: 23,
                    seed,
                },
                ..Default::default()
            };
            let (t, _) = build_flooding_tree(&g, NodeId(7), cfg).unwrap();
            assert!(t.is_spanning_tree_of(&g), "seed {seed}");
            assert_eq!(t.root(), NodeId(7));
        }
    }

    #[test]
    fn single_node_network_terminates_immediately() {
        let g = Arc::new(Graph::empty(1));
        let (t, metrics) = unit(&g, NodeId(0));
        assert_eq!(t.node_count(), 1);
        assert_eq!(metrics.messages_total, 0);
    }

    #[test]
    fn star_root_produces_degree_n_minus_one_tree() {
        let g = Arc::new(generators::star(9).unwrap());
        let (t, _) = unit(&g, NodeId(0));
        assert_eq!(t.max_degree(), 8);
    }

    #[test]
    fn message_size_is_logarithmic() {
        let g = Arc::new(generators::complete(64).unwrap());
        let (_, metrics) = unit(&g, NodeId(0));
        // Tag only: 4 bits.
        assert!(metrics.bits_max <= 8);
    }

    #[test]
    fn rejects_out_of_range_root() {
        let g = Arc::new(generators::path(4).unwrap());
        assert!(build_flooding_tree(&g, NodeId(9), SimConfig::default()).is_err());
    }
}
