//! Initial spanning trees of controlled quality.
//!
//! The number of improvement rounds of the MDegST algorithm is `k − k* + 1`
//! where `k` is the maximum degree of the *initial* tree (§4.2). The
//! experiments therefore need initial trees across the whole quality spectrum,
//! from the `k = n − 1` star worst case the analysis mentions down to trees a
//! sensible construction would produce. [`InitialTreeKind`] enumerates the
//! available constructions and [`build_initial_tree`] dispatches to either a
//! centralized extraction (star-greedy, BFS, DFS, random) or a genuinely
//! distributed construction (flooding PIF, token traversal) run on the
//! simulator.

use crate::dfs_token::build_token_tree;
use crate::flooding::build_flooding_tree;
use mdst_graph::{algorithms, Graph, GraphError, NodeId, RootedTree};
use mdst_netsim::{Metrics, SimConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which initial spanning-tree construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialTreeKind {
    /// Centralized greedy construction that concentrates degree on hubs —
    /// the worst case (`k` close to `n − 1` on dense graphs).
    GreedyHub,
    /// Centralized breadth-first search tree.
    Bfs,
    /// Centralized depth-first search tree.
    Dfs,
    /// Centralized random spanning tree (randomised Kruskal) with the given
    /// seed.
    Random(u64),
    /// Distributed flooding (PIF) construction, run on the simulator under
    /// unit delays.
    DistributedFlooding,
    /// Distributed token traversal (Tarry), run on the simulator under unit
    /// delays.
    DistributedToken,
}

impl InitialTreeKind {
    /// All constructions, in the order used by experiment tables.
    pub fn all(seed: u64) -> Vec<InitialTreeKind> {
        vec![
            InitialTreeKind::GreedyHub,
            InitialTreeKind::Bfs,
            InitialTreeKind::Dfs,
            InitialTreeKind::Random(seed),
            InitialTreeKind::DistributedFlooding,
            InitialTreeKind::DistributedToken,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            InitialTreeKind::GreedyHub => "greedy-hub".to_string(),
            InitialTreeKind::Bfs => "bfs".to_string(),
            InitialTreeKind::Dfs => "dfs".to_string(),
            InitialTreeKind::Random(seed) => format!("random({seed})"),
            InitialTreeKind::DistributedFlooding => "dist-flooding".to_string(),
            InitialTreeKind::DistributedToken => "dist-token".to_string(),
        }
    }
}

/// Builds the requested initial spanning tree of `graph` rooted at `root`.
///
/// Returns the tree and, for the distributed constructions, the metrics of the
/// construction run (`None` for centralized extractions, which exchange no
/// messages).
pub fn build_initial_tree(
    graph: &Arc<Graph>,
    root: NodeId,
    kind: InitialTreeKind,
) -> Result<(RootedTree, Option<Metrics>), GraphError> {
    match kind {
        InitialTreeKind::GreedyHub => {
            algorithms::greedy_high_degree_tree(graph, root).map(|t| (t, None))
        }
        InitialTreeKind::Bfs => algorithms::bfs_tree(graph, root).map(|t| (t, None)),
        InitialTreeKind::Dfs => algorithms::dfs_tree(graph, root).map(|t| (t, None)),
        InitialTreeKind::Random(seed) => {
            algorithms::random_spanning_tree(graph, root, seed).map(|t| (t, None))
        }
        InitialTreeKind::DistributedFlooding => {
            build_flooding_tree(graph, root, SimConfig::default()).map(|(t, m)| (t, Some(m)))
        }
        InitialTreeKind::DistributedToken => {
            build_token_tree(graph, root, SimConfig::default()).map(|(t, m)| (t, Some(m)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn every_kind_builds_a_valid_spanning_tree() {
        let g = Arc::new(generators::gnp_connected(30, 0.2, 17).unwrap());
        for kind in InitialTreeKind::all(3) {
            let (t, _) = build_initial_tree(&g, NodeId(0), kind).unwrap();
            assert!(t.is_spanning_tree_of(&g), "{}", kind.label());
            assert_eq!(t.root(), NodeId(0), "{}", kind.label());
        }
    }

    #[test]
    fn greedy_hub_is_the_worst_seed_on_a_complete_graph() {
        let g = Arc::new(generators::complete(10).unwrap());
        let (hub, _) = build_initial_tree(&g, NodeId(0), InitialTreeKind::GreedyHub).unwrap();
        assert_eq!(hub.max_degree(), 9);
        let (dfs, _) = build_initial_tree(&g, NodeId(0), InitialTreeKind::Dfs).unwrap();
        assert!(dfs.max_degree() <= hub.max_degree());
    }

    #[test]
    fn distributed_kinds_report_metrics() {
        let g = Arc::new(generators::grid(4, 4).unwrap());
        let (_, m) =
            build_initial_tree(&g, NodeId(0), InitialTreeKind::DistributedFlooding).unwrap();
        assert!(m.unwrap().messages_total > 0);
        let (_, m) = build_initial_tree(&g, NodeId(0), InitialTreeKind::Bfs).unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> = InitialTreeKind::all(1)
            .into_iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn disconnected_graphs_are_rejected_by_every_kind() {
        let g = Arc::new(mdst_graph::graph::graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap());
        for kind in InitialTreeKind::all(0) {
            assert!(
                build_initial_tree(&g, NodeId(0), kind).is_err(),
                "{}",
                kind.label()
            );
        }
    }
}
