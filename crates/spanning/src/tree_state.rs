//! Common view over the per-node result of a spanning-tree construction.
//!
//! The MDegST algorithm starts from the local state the construction left
//! behind: every node knows its parent, its children and the fact that the
//! construction is finished. [`TreeState`] is that local state; [`collect_tree`]
//! assembles the global [`RootedTree`] from it (a purely observational step
//! used for seeding the next protocol, validation and reporting — the nodes
//! themselves never see the global tree).

use mdst_graph::{GraphError, NodeId, RootedTree};
use std::collections::BTreeSet;

/// Local spanning-tree knowledge of one node after a construction protocol
/// has terminated.
pub trait TreeState {
    /// Parent in the constructed tree (`None` for the root).
    fn tree_parent(&self) -> Option<NodeId>;

    /// Children in the constructed tree.
    fn tree_children(&self) -> &BTreeSet<NodeId>;

    /// Whether this node knows the construction has terminated
    /// ("termination by process", required by §3.2 of the paper).
    fn is_done(&self) -> bool;
}

/// Assembles the global rooted tree from per-node [`TreeState`]s.
///
/// Checks mutual consistency: every child's parent pointer must agree with the
/// parent's children set, exactly one root must exist, and every node must
/// report termination.
pub fn collect_tree<S: TreeState>(states: &[S]) -> Result<RootedTree, GraphError> {
    let n = states.len();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut root = None;
    let mut parents = vec![None; n];
    for (u, state) in states.iter().enumerate() {
        if !state.is_done() {
            return Err(GraphError::NotASpanningTree(format!(
                "node v{u} has not terminated"
            )));
        }
        match state.tree_parent() {
            None => {
                if let Some(r) = root {
                    return Err(GraphError::NotASpanningTree(format!(
                        "two roots: {r} and v{u}"
                    )));
                }
                root = Some(NodeId::new(u));
            }
            Some(p) => {
                if !states[p.index()].tree_children().contains(&NodeId::new(u)) {
                    return Err(GraphError::NotASpanningTree(format!(
                        "v{u} claims parent {p} but {p} does not list it as a child"
                    )));
                }
                parents[u] = Some(p);
            }
        }
        for &c in state.tree_children() {
            if states[c.index()].tree_parent() != Some(NodeId::new(u)) {
                return Err(GraphError::NotASpanningTree(format!(
                    "v{u} lists child {c} but {c} points elsewhere"
                )));
            }
        }
    }
    let root = root.ok_or_else(|| GraphError::NotASpanningTree("no root".to_string()))?;
    RootedTree::from_parents(root, parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        parent: Option<NodeId>,
        children: BTreeSet<NodeId>,
        done: bool,
    }

    impl TreeState for Fake {
        fn tree_parent(&self) -> Option<NodeId> {
            self.parent
        }
        fn tree_children(&self) -> &BTreeSet<NodeId> {
            &self.children
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn node(parent: Option<usize>, children: &[usize], done: bool) -> Fake {
        Fake {
            parent: parent.map(NodeId::new),
            children: children.iter().map(|&c| NodeId::new(c)).collect(),
            done,
        }
    }

    #[test]
    fn consistent_states_assemble_into_a_tree() {
        let states = vec![
            node(None, &[1, 2], true),
            node(Some(0), &[], true),
            node(Some(0), &[3], true),
            node(Some(2), &[], true),
        ];
        let t = collect_tree(&states).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
    }

    #[test]
    fn unterminated_node_is_rejected() {
        let states = vec![node(None, &[1], true), node(Some(0), &[], false)];
        assert!(collect_tree(&states).is_err());
    }

    #[test]
    fn inconsistent_parent_child_is_rejected() {
        let states = vec![
            node(None, &[], true), // root does not list 1 as a child
            node(Some(0), &[], true),
        ];
        assert!(collect_tree(&states).is_err());
    }

    #[test]
    fn two_roots_are_rejected() {
        let states = vec![node(None, &[], true), node(None, &[], true)];
        assert!(collect_tree(&states).is_err());
    }

    #[test]
    fn empty_network_is_rejected() {
        let states: Vec<Fake> = Vec::new();
        assert!(collect_tree(&states).is_err());
    }
}
