//! Token-traversal spanning-tree construction (Tarry's algorithm).
//!
//! A single token performs a traversal of the network: a node never forwards
//! the token twice over the same link and forwards it to its parent only when
//! no other link is available. The sender of the first token a node sees
//! becomes its parent. The token traverses every link exactly once in each
//! direction (`2m` token messages) and ends at the initiator, which then
//! broadcasts "done" down the tree. An extra `Child` notification per non-root
//! node lets parents learn their children (the MDegST algorithm needs both
//! directions of the tree relation).
//!
//! The resulting tree is a traversal tree — typically deep and of low degree,
//! a useful contrast to the flooding construction (shallow, higher degree) in
//! the initial-tree-sensitivity experiment (E7).

use crate::tree_state::TreeState;
use mdst_graph::{Graph, GraphError, NodeId, RootedTree};
use mdst_netsim::message::bits::message_bits;
use mdst_netsim::{Context, Metrics, NetMessage, Protocol, SimConfig, Simulator};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Messages of the token construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenMsg {
    /// The traversal token.
    Token {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
    /// Child notification: the sender adopted the receiver as its parent.
    Child {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
    /// Termination broadcast down the finished tree.
    Done {
        /// Network size, carried only for bit accounting.
        n: usize,
    },
}

impl NetMessage for TokenMsg {
    fn kind(&self) -> &'static str {
        match self {
            TokenMsg::Token { .. } => "Token",
            TokenMsg::Child { .. } => "Child",
            TokenMsg::Done { .. } => "Done",
        }
    }
    fn encoded_bits(&self) -> usize {
        let n = match self {
            TokenMsg::Token { n } | TokenMsg::Child { n } | TokenMsg::Done { n } => *n,
        };
        message_bits(n, 0)
    }
}

/// Per-node state of the token construction.
#[derive(Debug, Clone)]
pub struct DfsTokenSt {
    id: NodeId,
    root: NodeId,
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    /// Links over which this node has already forwarded the token.
    forwarded: BTreeSet<NodeId>,
    visited: bool,
    done: bool,
}

impl DfsTokenSt {
    /// Creates the node automaton for `id` with `root` as the traversal
    /// initiator.
    pub fn new(id: NodeId, root: NodeId) -> Self {
        DfsTokenSt {
            id,
            root,
            parent: None,
            children: BTreeSet::new(),
            forwarded: BTreeSet::new(),
            visited: false,
            done: false,
        }
    }

    fn is_root(&self) -> bool {
        self.id == self.root
    }

    /// Tarry's forwarding rule: any unused link except the parent link, the
    /// parent link only as a last resort.
    fn forward_token(&mut self, ctx: &mut dyn Context<TokenMsg>) {
        let n = ctx.network_size();
        let next_non_parent = ctx
            .neighbors()
            .iter()
            .copied()
            .find(|v| !self.forwarded.contains(v) && Some(*v) != self.parent);
        let next = next_non_parent.or_else(|| self.parent.filter(|p| !self.forwarded.contains(p)));
        match next {
            Some(v) => {
                self.forwarded.insert(v);
                ctx.send(v, TokenMsg::Token { n });
            }
            None => {
                // No link left. By Tarry's theorem this only happens at the
                // initiator, once the traversal is complete.
                debug_assert!(
                    self.is_root(),
                    "token stranded at non-initiator {}",
                    self.id
                );
                self.done = true;
                let children: Vec<NodeId> = self.children.iter().copied().collect();
                for c in children {
                    ctx.send(c, TokenMsg::Done { n });
                }
            }
        }
    }
}

impl Protocol for DfsTokenSt {
    type Message = TokenMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<TokenMsg>) {
        if self.is_root() && !self.visited {
            self.visited = true;
            if ctx.neighbors().is_empty() {
                // Degenerate single-node network.
                self.done = true;
            } else {
                self.forward_token(ctx);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: TokenMsg, ctx: &mut dyn Context<TokenMsg>) {
        match msg {
            TokenMsg::Token { n } => {
                if !self.visited {
                    self.visited = true;
                    if !self.is_root() {
                        self.parent = Some(from);
                        ctx.send(from, TokenMsg::Child { n });
                    }
                }
                self.forward_token(ctx);
            }
            TokenMsg::Child { .. } => {
                self.children.insert(from);
            }
            TokenMsg::Done { n } => {
                if !self.done {
                    self.done = true;
                    let children: Vec<NodeId> = self.children.iter().copied().collect();
                    for c in children {
                        ctx.send(c, TokenMsg::Done { n });
                    }
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

impl TreeState for DfsTokenSt {
    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }
    fn tree_children(&self) -> &BTreeSet<NodeId> {
        &self.children
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the token construction on `graph` under `config` and returns the
/// resulting tree plus the metrics of the run.
pub fn build_token_tree(
    graph: &Arc<Graph>,
    root: NodeId,
    config: SimConfig,
) -> Result<(RootedTree, Metrics), GraphError> {
    graph.check_node(root)?;
    let mut sim = Simulator::new(graph, config, |id, _| DfsTokenSt::new(id, root))
        .map_err(|e| GraphError::InvalidParameter(e.to_string()))?;
    sim.run()
        .map_err(|e| GraphError::NotASpanningTree(format!("construction did not quiesce: {e}")))?;
    let (nodes, metrics, _) = sim.into_parts();
    let tree = crate::tree_state::collect_tree(&nodes)?;
    tree.validate_against(graph)?;
    Ok((tree, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;
    use mdst_netsim::DelayModel;

    fn unit(graph: &Arc<Graph>, root: NodeId) -> (RootedTree, Metrics) {
        build_token_tree(graph, root, SimConfig::default()).unwrap()
    }

    #[test]
    fn traversal_builds_a_spanning_tree() {
        let g = Arc::new(generators::gnp_connected(25, 0.2, 8).unwrap());
        let (t, _) = unit(&g, NodeId(0));
        assert!(t.is_spanning_tree_of(&g));
        assert_eq!(t.root(), NodeId(0));
    }

    #[test]
    fn token_crosses_every_link_twice() {
        let g = Arc::new(generators::gnp_connected(20, 0.25, 5).unwrap());
        let (_, metrics) = unit(&g, NodeId(2));
        let m = g.edge_count() as u64;
        let n = g.node_count() as u64;
        assert_eq!(metrics.count_of("Token"), 2 * m);
        assert_eq!(metrics.count_of("Child"), n - 1);
        assert_eq!(metrics.count_of("Done"), n - 1);
    }

    #[test]
    fn traversal_tree_on_complete_graph_has_low_degree() {
        // Tarry's traversal on K_n follows a deep path-like structure, a useful
        // low-degree seed compared to flooding.
        let g = Arc::new(generators::complete(12).unwrap());
        let (t, _) = unit(&g, NodeId(0));
        assert!(t.is_spanning_tree_of(&g));
        assert!(
            t.max_degree() < 11,
            "token traversal should not produce the star (got degree {})",
            t.max_degree()
        );
    }

    #[test]
    fn works_under_random_delays() {
        let g = Arc::new(generators::grid(5, 5).unwrap());
        for seed in 0..4u64 {
            let cfg = SimConfig {
                delay: DelayModel::UniformRandom {
                    min: 1,
                    max: 13,
                    seed,
                },
                ..Default::default()
            };
            let (t, _) = build_token_tree(&g, NodeId(12), cfg).unwrap();
            assert!(t.is_spanning_tree_of(&g), "seed {seed}");
        }
    }

    #[test]
    fn single_node_and_single_edge_networks() {
        let g1 = Arc::new(Graph::empty(1));
        let (t1, m1) = unit(&g1, NodeId(0));
        assert_eq!(t1.node_count(), 1);
        assert_eq!(m1.messages_total, 0);

        let g2 = Arc::new(generators::path(2).unwrap());
        let (t2, m2) = unit(&g2, NodeId(1));
        assert_eq!(t2.root(), NodeId(1));
        assert_eq!(t2.parent(NodeId(0)), Some(NodeId(1)));
        assert_eq!(m2.count_of("Token"), 2);
    }

    #[test]
    fn all_nodes_terminate() {
        let g = Arc::new(generators::petersen().unwrap());
        let mut sim = Simulator::new(&g, SimConfig::default(), |id, _| {
            DfsTokenSt::new(id, NodeId(3))
        })
        .unwrap();
        sim.run().unwrap();
        assert!(sim.all_terminated());
    }
}
