//! # mdst — distributed Minimum Degree Spanning Tree
//!
//! Facade crate of the reproduction of Blin & Butelle, *"The First
//! Approximated Distributed Algorithm for the Minimum Degree Spanning Tree
//! Problem on General Graphs"* (IPPS 2003 / IJFCS 2004). It re-exports the
//! public API of the four implementation crates and hosts the workspace-level
//! examples and integration tests.
//!
//! ## Quick start
//!
//! ```
//! use mdst::prelude::*;
//!
//! // A network: a star whose leaves also form a path (the paper's worst case
//! // for an initial spanning tree of degree n − 1). Topologies are shared
//! // behind an `Arc` so campaigns can reuse one CSR graph across runs.
//! let graph = Arc::new(generators::star_with_leaf_edges(10).unwrap());
//!
//! // Full pipeline: build an initial spanning tree with the greedy-hub
//! // construction, then run the distributed improvement protocol.
//! let report = run_pipeline(&graph, &PipelineConfig::default()).unwrap();
//!
//! assert_eq!(report.initial_degree, 9);
//! assert!(report.final_degree <= 3);
//! assert!(report.final_tree.is_spanning_tree_of(&graph));
//! println!(
//!     "degree {} -> {} in {} rounds, {} messages",
//!     report.initial_degree,
//!     report.final_degree,
//!     report.rounds,
//!     report.improvement_metrics.messages_total
//! );
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`mdst_graph`] | graphs, rooted trees, generators, classic algorithms |
//! | [`mdst_netsim`] | asynchronous message-passing executors: discrete-event simulator, thread-per-node runtime, work-stealing pool |
//! | [`mdst_spanning`] | distributed spanning-tree constructions (the startup step) |
//! | [`mdst_core`] | the distributed MDegST protocol, baselines, bounds, verification |
//! | [`mdst_scenario`] | declarative scenario harness: graph I/O, parallel campaigns, JSON reports |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mdst_core as core;
pub use mdst_graph as graph;
pub use mdst_netsim as netsim;
pub use mdst_scenario as scenario;
pub use mdst_spanning as spanning;

/// Everything a typical user or experiment needs in scope.
pub mod prelude {
    pub use mdst_core::bounds::{
        degree_lower_bound, kmz_message_lower_bound, kmz_ratio, paper_degree_upper_bound,
        within_paper_degree_bound,
    };
    pub use mdst_core::distributed::{Candidate, MdstMsg, MdstNode};
    pub use mdst_core::driver::{
        run_distributed_mdst, run_distributed_mdst_on, run_pipeline, run_pipeline_with_faults,
        FaultPipelineReport, MdstRun, PipelineConfig, PipelineReport, RunStatus,
    };
    pub use mdst_core::sequential::{
        exact_min_degree, furer_raghavachari, paper_local_search, spanning_tree_with_max_degree,
    };
    pub use mdst_core::verify::{
        blocked_max_degree_nodes, is_locally_optimal_for, survivor_report, verify_spanning_tree,
        verify_termination_certificate, SurvivorReport,
    };
    pub use mdst_graph::{algorithms, degree::DegreeStats, dot, generators};
    pub use mdst_graph::{Graph, GraphBuilder, GraphError, NodeId, RootedTree};
    pub use mdst_netsim::{
        Context, CrashAt, CutAt, DelayModel, ExecConfig, ExecRun, ExecStatus, Executor,
        ExecutorKind, FaultPlan, Metrics, NetMessage, PoolConfig, PoolRun, PoolRuntime, Protocol,
        SimConfig, SimError, Simulator, StartModel, ThreadedRun, ThreadedRuntime,
    };
    pub use mdst_scenario::{
        run_campaign, CampaignReport, FaultSpec, GraphFormat, RunOutcome, RunRecord, RunnerConfig,
        ScenarioMatrix,
    };
    pub use mdst_spanning::{build_initial_tree, collect_tree, InitialTreeKind, TreeState};
    // Topologies are shared across executors and campaign runs behind an
    // `Arc<Graph>`; re-exported so every example and doc test has it in scope.
    pub use std::sync::Arc;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let graph = Arc::new(generators::complete(8).unwrap());
        let report = run_pipeline(&graph, &PipelineConfig::default()).unwrap();
        assert!(report.final_degree <= 3);
        assert!(verify_termination_certificate(&graph, &report.final_tree));
    }
}
