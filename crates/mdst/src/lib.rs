//! # mdst — distributed Minimum Degree Spanning Tree
//!
//! Facade crate of the reproduction of Blin & Butelle, *"The First
//! Approximated Distributed Algorithm for the Minimum Degree Spanning Tree
//! Problem on General Graphs"* (IPPS 2003 / IJFCS 2004). It re-exports the
//! public API of the implementation crates and hosts the workspace-level
//! examples and integration tests.
//!
//! ## Quick start
//!
//! One builder, one report: a [`Pipeline`](mdst_core::Pipeline) session
//! builds an initial spanning tree, runs the distributed improvement
//! protocol on the chosen executor backend, and returns a single
//! [`RunReport`](mdst_core::RunReport) whose
//! [`Outcome`](mdst_core::Outcome) says how it ended.
//!
//! ```
//! use mdst::prelude::*;
//!
//! // A network: a star whose leaves also form a path (the paper's worst case
//! // for an initial spanning tree of degree n − 1). Topologies are shared
//! // behind an `Arc` so campaigns can reuse one CSR graph across runs.
//! let graph = Arc::new(generators::star_with_leaf_edges(10).unwrap());
//!
//! // Full pipeline: build an initial spanning tree with the greedy-hub
//! // construction, then run the distributed improvement protocol.
//! let report = Pipeline::on(&graph).run().unwrap();
//!
//! assert_eq!(report.outcome, Outcome::Optimal);
//! assert_eq!(report.initial_degree, 9);
//! assert!(report.final_degree <= 3);
//! assert!(report.tree().is_spanning_tree_of(&graph));
//! println!(
//!     "degree {} -> {} in {} rounds, {} messages",
//!     report.initial_degree,
//!     report.final_degree,
//!     report.rounds,
//!     report.improvement_metrics.messages_total
//! );
//! ```
//!
//! Every knob chains off the builder, and degraded endings (faults,
//! event-limit aborts) are outcomes rather than errors:
//!
//! ```
//! use mdst::prelude::*;
//!
//! let graph = Arc::new(generators::gnp_connected(32, 0.15, 7).unwrap());
//! let report = Pipeline::on(&graph)
//!     .initial(InitialTreeKind::Bfs)        // which construction seeds the run
//!     .root(NodeId(0))                      // construction initiator
//!     .executor(ExecutorKind::Pool)         // sim | threaded | pool
//!     .workers(4)                           // pool width (0 = auto)
//!     .run()
//!     .unwrap();
//! assert!(report.outcome.is_optimal());
//! ```
//!
//! Progress streams to any [`Observer`](mdst_core::Observer) registered on
//! the builder — construction-done, per-round, per-exchange, per-fault and
//! finish events — so campaigns, benches and dashboards follow a run without
//! parsing traces:
//!
//! ```
//! use mdst::prelude::*;
//!
//! let graph = Arc::new(generators::wheel(12).unwrap());
//! let mut counts = CountingObserver::default();
//! let report = Pipeline::on(&graph).observer(&mut counts).run().unwrap();
//! assert_eq!(counts.rounds as u32, report.rounds);
//! assert_eq!(counts.finishes, 1);
//! ```
//!
//! ## Migrating from the pre-session API
//!
//! The forked entry points survive as `#[deprecated]` wrappers with
//! bit-identical results (proven by the `api_equivalence` property test):
//!
//! | old call | new chain |
//! |---|---|
//! | `run_pipeline(&g, &config)?` | `Pipeline::on(&g).config(config.clone()).run()?` (check `report.outcome`) |
//! | `run_pipeline_with_faults(&g, &config)?` | same chain — faults are just another outcome |
//! | `PipelineReport { final_tree, .. }` | `RunReport { final_tree: Option<_>, .. }` / `report.tree()` |
//! | `FaultPipelineReport { status, correct_tree, survivor, .. }` | `RunReport { outcome, survivor, .. }` |
//! | `RunStatus::Quiesced` + `correct_tree` | `Outcome::Optimal` |
//! | `RunStatus::Quiesced` + `!correct_tree` | `Outcome::PartialTree` |
//! | `RunStatus::EventLimitExceeded` | `Outcome::EventLimitAborted` |
//! | `GraphError::InvalidParameter(stringly)` | typed `PipelineError::{Graph, Exec}` |
//!
//! The improvement-only entry points `run_distributed_mdst(_on)` remain for
//! benches that construct initial trees explicitly; they now return the
//! typed [`PipelineError`](mdst_core::PipelineError) but deliberately skip
//! the session extras (survivor grading, observer replay), so measured
//! loops pay exactly the protocol's cost.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`mdst_graph`] | graphs, rooted trees, generators, classic algorithms |
//! | [`mdst_netsim`] | asynchronous message-passing executors: discrete-event simulator, thread-per-node runtime, work-stealing pool |
//! | [`mdst_spanning`] | distributed spanning-tree constructions (the startup step) |
//! | [`mdst_core`] | the distributed MDegST protocol, the `Pipeline` session API, baselines, bounds, verification |
//! | [`mdst_check`] | exhaustive small-state model checker: every schedule on every ≤6-node topology, minimized counterexamples |
//! | [`mdst_scenario`] | declarative scenario harness: graph I/O, parallel campaigns, JSON reports, report diffing |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mdst_check as check;
pub use mdst_core as core;
pub use mdst_graph as graph;
pub use mdst_netsim as netsim;
pub use mdst_scenario as scenario;
pub use mdst_spanning as spanning;

/// Everything a typical user or experiment needs in scope.
pub mod prelude {
    pub use mdst_check::check as model_check;
    pub use mdst_check::{
        check_with_suite, sweep_connected, CheckConfig, CheckReport, Counterexample,
        InvariantSuite, MdstInvariants, QuiescentOutcome, SweepReport, Violation,
    };
    pub use mdst_core::bounds::{
        degree_lower_bound, kmz_message_lower_bound, kmz_ratio, paper_degree_upper_bound,
        within_paper_degree_bound,
    };
    pub use mdst_core::distributed::{Candidate, MdstMsg, MdstNode};
    pub use mdst_core::driver::{
        run_distributed_mdst, run_distributed_mdst_on, MdstRun, Outcome, Pipeline, PipelineConfig,
        PipelineError, RunReport,
    };
    #[allow(deprecated)]
    pub use mdst_core::driver::{
        run_pipeline, run_pipeline_with_faults, FaultPipelineReport, PipelineReport, RunStatus,
    };
    pub use mdst_core::observer::{
        ConstructionEvent, CountingObserver, ExchangeEvent, FaultEvent, Observer, RoundEvent,
    };
    pub use mdst_core::sequential::{
        exact_min_degree, furer_raghavachari, paper_local_search, spanning_tree_with_max_degree,
    };
    pub use mdst_core::verify::{
        blocked_max_degree_nodes, is_locally_optimal_for, survivor_report, verify_spanning_tree,
        verify_termination_certificate, SurvivorReport,
    };
    pub use mdst_graph::{algorithms, degree::DegreeStats, dot, generators};
    pub use mdst_graph::{Graph, GraphBuilder, GraphError, NodeId, RootedTree, StreamingBuilder};
    pub use mdst_netsim::{
        Context, ControlledEvent, ControlledNet, CrashAt, CutAt, DelayModel, ExecConfig, ExecRun,
        ExecStatus, Executor, ExecutorKind, FaultPlan, Metrics, NetMessage, PoolConfig, PoolRun,
        PoolRuntime, Protocol, SimConfig, SimError, Simulator, StartDiscipline, StartModel,
        ThreadedRun, ThreadedRuntime, UnknownExecutor,
    };
    pub use mdst_scenario::{
        diff_reports, diff_reports_with, run_campaign, CampaignReport, DiffOptions, FaultSpec,
        GraphFormat, RunOutcome, RunRecord, RunnerConfig, ScenarioMatrix,
    };
    pub use mdst_spanning::{build_initial_tree, collect_tree, InitialTreeKind, TreeState};
    // Topologies are shared across executors and campaign runs behind an
    // `Arc<Graph>`; re-exported so every example and doc test has it in scope.
    pub use std::sync::Arc;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let graph = Arc::new(generators::complete(8).unwrap());
        let report = Pipeline::on(&graph).run().unwrap();
        assert_eq!(report.outcome, Outcome::Optimal);
        assert!(report.final_degree <= 3);
        assert!(verify_termination_certificate(&graph, report.tree()));
    }

    #[test]
    #[allow(deprecated)]
    fn prelude_keeps_the_deprecated_wrappers_callable() {
        let graph = Arc::new(generators::complete(8).unwrap());
        let old = run_pipeline(&graph, &PipelineConfig::default()).unwrap();
        let new = Pipeline::on(&graph).run().unwrap();
        assert_eq!(old.final_degree, new.final_degree);
        assert_eq!(old.improvement_metrics, new.improvement_metrics);
    }
}
