//! End-to-end audits of real executions.
//!
//! Three layers of evidence that the happens-before auditor separates
//! healthy runs from corrupted ones:
//!
//! * property tests: every trace recorded by the discrete-event simulator
//!   (across graphs, seeds and random delay models) and by the
//!   step-controlled net (across random schedules, including drops and
//!   crashes) audits clean;
//! * mutation tests: corrupting a *real* clean trace — swapping two
//!   deliveries on a link, deleting a send, forging a duplicate delivery —
//!   is flagged with the matching rule label;
//! * cross-backend agreement: the same seed/topology run on the simulator,
//!   the thread-per-node runtime and the work-stealing pool all audit clean
//!   and agree on the per-link message counts.

use mdst_analysis::{audit, audit_events, AuditReport, Rule};
use mdst_core::{Pipeline, PipelineConfig};
use mdst_graph::{generators, NodeId};
use mdst_netsim::{
    Context, ControlledEvent, ControlledNet, DelayModel, ExecutorKind, NetMessage, Protocol,
    SimConfig, StartDiscipline, TraceEvent, TraceEventKind,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn traced_config(executor: ExecutorKind) -> PipelineConfig {
    PipelineConfig {
        sim: SimConfig {
            record_trace: true,
            ..Default::default()
        },
        executor,
        ..Default::default()
    }
}

/// A traced improvement-phase run of the full MDST pipeline.
fn pipeline_trace(executor: ExecutorKind, n: usize, p: f64, seed: u64) -> Vec<TraceEvent> {
    let graph = Arc::new(generators::gnp_connected(n, p, seed).unwrap());
    let report = Pipeline::on(&graph)
        .config(traced_config(executor))
        .run()
        .unwrap();
    report.trace.events().to_vec()
}

// ---------------------------------------------------------------------------
// Property tests: clean executions audit clean
// ---------------------------------------------------------------------------

/// The flooding broadcast: the smallest protocol that exercises sends,
/// wake-ups and multi-hop causality on the controlled net.
#[derive(Debug, Clone)]
struct Token;

impl NetMessage for Token {
    fn kind(&self) -> &'static str {
        "Token"
    }
    fn encoded_bits(&self) -> usize {
        64
    }
}

struct Flood {
    id: NodeId,
    seen: bool,
}

impl Protocol for Flood {
    type Message = Token;
    fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
        if self.id == NodeId(0) {
            self.seen = true;
            for t in ctx.neighbors().to_vec() {
                ctx.send(t, Token);
            }
        }
    }
    fn on_message(&mut self, from: NodeId, _msg: Token, ctx: &mut dyn Context<Token>) {
        if !self.seen {
            self.seen = true;
            let targets: Vec<NodeId> = ctx
                .neighbors()
                .iter()
                .copied()
                .filter(|&x| x != from)
                .collect();
            for t in targets {
                ctx.send(t, Token);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.seen
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_sim_trace_audits_clean(
        n in 6usize..24,
        seed in 0u64..10_000,
        delayed in any::<bool>(),
    ) {
        let graph = Arc::new(generators::gnp_connected(n, 0.3, seed).unwrap());
        let mut config = traced_config(ExecutorKind::Sim);
        if delayed {
            // Random per-message delays reorder deliveries across links but
            // must never produce an intra-link inversion or a causal cycle.
            config.sim.delay = DelayModel::UniformRandom { min: 1, max: 5, seed };
        }
        let report = Pipeline::on(&graph).config(config).run().unwrap();
        let verdict = audit(&report.trace);
        prop_assert!(verdict.is_clean(), "{:#?}", verdict.findings);
        prop_assert!(verdict.sends > 0);
        prop_assert_eq!(verdict.sends, verdict.delivers);
    }

    #[test]
    fn every_controlled_schedule_audits_clean(
        n in 3usize..7,
        seed in 0u64..10_000,
        sched in any::<u64>(),
    ) {
        let graph = Arc::new(generators::gnp_connected(n, 0.5, seed).unwrap());
        let mut net =
            ControlledNet::new_traced(&graph, StartDiscipline::Lazy, true, |id, _| Flood {
                id,
                seen: false,
            });
        let mut budget_drops = 2usize;
        let mut budget_crashes = 1usize;
        // Derive the schedule choices from one xorshift stream (the vendored
        // proptest shim has no collection strategies).
        let mut state = sched | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize % 64
        };
        for _ in 0..300 {
            let c = next();
            let enabled = net.enabled_events();
            if enabled.is_empty() {
                break;
            }
            // Mostly protocol events; occasionally spend the fault budget on
            // a drop or a crash so those trace paths are audited too.
            let event = if c % 11 == 0 && (budget_drops > 0 || budget_crashes > 0) {
                let faults = net.fault_events();
                let fault = faults[c % faults.len()];
                match fault {
                    ControlledEvent::Drop { .. } if budget_drops > 0 => {
                        budget_drops -= 1;
                        fault
                    }
                    ControlledEvent::Crash { .. } if budget_crashes > 0 => {
                        budget_crashes -= 1;
                        fault
                    }
                    _ => enabled[c % enabled.len()],
                }
            } else {
                enabled[c % enabled.len()]
            };
            net.apply(event).unwrap();
        }
        let verdict = audit(net.trace());
        prop_assert!(verdict.is_clean(), "{:#?}", verdict.findings);
    }
}

// ---------------------------------------------------------------------------
// Mutation tests: corrupted traces are flagged with the right rule
// ---------------------------------------------------------------------------

/// A clean sim trace with at least two deliveries on one directed link.
fn trace_with_busy_link() -> (Vec<TraceEvent>, usize, usize) {
    let events = pipeline_trace(ExecutorKind::Sim, 12, 0.35, 42);
    assert!(audit_events(&events).is_clean());
    let mut last: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind != TraceEventKind::Deliver {
            continue;
        }
        if let Some(&prev) = last.get(&(e.from, e.to)) {
            return (events, prev, i);
        }
        last.insert((e.from, e.to), i);
    }
    panic!("no link carried two deliveries; pick a busier topology");
}

#[test]
fn swapping_two_deliveries_is_a_fifo_inversion() {
    let (mut events, first, second) = trace_with_busy_link();
    // Swap the message identities of the two deliveries: the earlier slot
    // now claims the later sequence number.
    let (a_id, a_seq) = (events[first].msg_id, events[first].seq);
    let (b_id, b_seq) = (events[second].msg_id, events[second].seq);
    events[first].msg_id = b_id;
    events[first].seq = b_seq;
    events[second].msg_id = a_id;
    events[second].seq = a_seq;
    let verdict = audit_events(&events);
    assert!(!verdict.is_clean());
    assert!(
        verdict.count(Rule::FifoInversion) >= 1,
        "{:#?}",
        verdict.findings
    );
}

#[test]
fn deleting_a_send_is_an_orphan_delivery() {
    let events = pipeline_trace(ExecutorKind::Sim, 10, 0.4, 7);
    assert!(audit_events(&events).is_clean());
    let victim = events
        .iter()
        .position(|e| e.kind == TraceEventKind::Send)
        .unwrap();
    let msg = events[victim].msg_id;
    let mutated: Vec<TraceEvent> = events
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, e)| e.clone())
        .collect();
    let verdict = audit_events(&mutated);
    let orphans: Vec<_> = verdict
        .findings
        .iter()
        .filter(|f| f.rule == Rule::OrphanDelivery)
        .collect();
    assert_eq!(orphans.len(), 1, "{:#?}", verdict.findings);
    assert_eq!(orphans[0].msg_id, msg);
}

#[test]
fn forging_a_second_delivery_is_a_duplicate() {
    let events = pipeline_trace(ExecutorKind::Sim, 10, 0.4, 9);
    assert!(audit_events(&events).is_clean());
    let mut mutated = events.clone();
    let forged = events
        .iter()
        .find(|e| e.kind == TraceEventKind::Deliver)
        .unwrap()
        .clone();
    mutated.push(forged.clone());
    let verdict = audit_events(&mutated);
    assert!(
        verdict
            .findings
            .iter()
            .any(|f| f.rule == Rule::DuplicateDelivery && f.msg_id == forged.msg_id),
        "{:#?}",
        verdict.findings
    );
}

// ---------------------------------------------------------------------------
// Cross-backend agreement
// ---------------------------------------------------------------------------

fn link_counts(report: &AuditReport) -> BTreeMap<(NodeId, NodeId), (u64, u64, u64)> {
    report
        .links
        .iter()
        .map(|l| ((l.from, l.to), (l.sends, l.delivers, l.drops)))
        .collect()
}

#[test]
fn all_backends_audit_clean_and_agree_on_per_link_counts() {
    // The improvement protocol is message-deterministic, so whatever the
    // scheduling backend, the multiset of (link, message) events must match
    // — and each backend's interleaving must independently satisfy the
    // happens-before discipline.
    for (n, p, seed) in [(14, 0.3, 1u64), (20, 0.25, 2), (9, 0.5, 3)] {
        let graph = Arc::new(generators::gnp_connected(n, p, seed).unwrap());
        let mut verdicts = Vec::new();
        for executor in [
            ExecutorKind::Sim,
            ExecutorKind::Threaded,
            ExecutorKind::Pool,
        ] {
            let report = Pipeline::on(&graph)
                .config(traced_config(executor))
                .run()
                .unwrap();
            let verdict = audit(&report.trace);
            assert!(verdict.is_clean(), "{executor}: {:#?}", verdict.findings);
            verdicts.push((executor, verdict));
        }
        let baseline = link_counts(&verdicts[0].1);
        assert!(!baseline.is_empty());
        for (executor, verdict) in &verdicts[1..] {
            assert_eq!(
                link_counts(verdict),
                baseline,
                "{executor} disagrees with sim on per-link message counts (n={n}, seed={seed})"
            );
        }
    }
}
