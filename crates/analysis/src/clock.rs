//! Vector clocks over node indices.
//!
//! The auditor reconstructs the happens-before partial order of a recorded
//! run with the textbook vector-clock algorithm: every node carries one
//! counter per node, ticks its own component on each local event, and joins
//! (componentwise max) the sender's snapshot into its own clock when a
//! message is delivered. Two events are then causally ordered iff their
//! snapshots are componentwise ordered, and *concurrent* (racing) iff the
//! snapshots are incomparable.

/// A vector clock over `n` node components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock over `n` components.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no components (a trace with no nodes).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component for node `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Advances node `i`'s own component by one (a local event at `i`).
    pub fn tick(&mut self, i: usize) {
        if let Some(c) = self.0.get_mut(i) {
            *c += 1;
        }
    }

    /// Joins `other` into `self` (componentwise max) — the receiver's side
    /// of a delivery.
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether the event stamped `self` happens-before the event stamped
    /// `other`: componentwise `≤` with at least one strict component.
    pub fn precedes(&self, other: &VectorClock) -> bool {
        let mut strict = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a > b {
                return false;
            }
            if a < b {
                strict = true;
            }
        }
        strict
    }

    /// Whether the two stamps are causally incomparable — the events *race*.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self != other && !self.precedes(other) && !other.precedes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_join_build_the_partial_order() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0); // a = [1,0,0]
        let send = a.clone();
        b.tick(1); // b = [0,1,0]  — concurrent with the send
        assert!(send.concurrent(&b));
        b.join(&send);
        b.tick(1); // b = [1,2,0]  — now causally after the send
        assert!(send.precedes(&b));
        assert!(!b.precedes(&send));
        assert!(!send.concurrent(&b));
    }

    #[test]
    fn equal_clocks_neither_precede_nor_race() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(2);
        assert!(!a.precedes(&b));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn same_node_events_are_totally_ordered() {
        let mut c = VectorClock::new(2);
        c.tick(0);
        let first = c.clone();
        c.tick(0);
        assert!(first.precedes(&c));
    }
}
