//! The happens-before auditor.
//!
//! [`audit`] replays a recorded trace once, reconstructing the causal
//! partial order with per-node [`VectorClock`]s, and statically checks the
//! delivery discipline every backend promises:
//!
//! * **`fifo-inversion`** — per directed link, delivered sequence numbers
//!   must be strictly increasing (a lost message consumes its slot, so gaps
//!   are legal; inversions never are).
//! * **`deliver-before-send`** — a delivery recorded before its own send.
//! * **`orphan-delivery`** — a delivery whose message id matches no send.
//! * **`duplicate-delivery`** — the same message id delivered twice.
//! * **`delivery-to-crashed`** — a delivery to a node after its crash.
//! * **`causal-precedes-own-send`** — the sender's snapshot knows more of
//!   the receiver's history than the receiver itself has executed: the
//!   message would causally precede its own send.
//! * **`coordinator-race`** — two `SearchInit` broadcasts whose starts are
//!   not ordered by happens-before: two coordinators drove the improvement
//!   concurrently.
//! * **`concurrent-exchange`** — two `Cut` cascades whose starts are not
//!   ordered by happens-before: two edge exchanges ran concurrently on the
//!   fragment.
//!
//! The protocol-level rules exploit the paper's single-coordinator
//! discipline: every MDegST round is serialised through the current root, so
//! in a correct run the first `SearchInit` (respectively `Cut`) send of each
//! round is causally after the previous round's — the set of
//! happens-before-minimal initiations has size ≤ 1. Forwarded copies inside
//! one broadcast are causally after the initiation and therefore never
//! minimal, so sibling forwards (which genuinely race each other) do not
//! trip the rule.
//!
//! The auditor assumes the trace is listed in recording order (simulated
//! time on the simulator, the atomic global stamp on the concurrent
//! backends); causality can then only point backwards, which is what lets
//! the minimality scan keep just the current minima.

use crate::clock::VectorClock;
use mdst_graph::NodeId;
use mdst_netsim::{TraceEvent, TraceEventKind, TraceRecorder};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The audited delivery-discipline rules. Labels are stable kebab-case
/// strings used in findings, JSON reports and CLI output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Per-link FIFO order violated: a delivery's sequence number did not
    /// exceed the link's previous delivery.
    FifoInversion,
    /// A delivery recorded before its matching send.
    DeliverBeforeSend,
    /// A delivery whose message id matches no recorded send.
    OrphanDelivery,
    /// A message id delivered more than once.
    DuplicateDelivery,
    /// A delivery to a node that had already crash-stopped.
    DeliveryToCrashed,
    /// A delivery carrying a causal snapshot ahead of its own receiver.
    CausalPrecedesOwnSend,
    /// Two causally unordered `SearchInit` broadcasts (two coordinators).
    CoordinatorRace,
    /// Two causally unordered `Cut` cascades (two concurrent exchanges).
    ConcurrentExchange,
}

impl Rule {
    /// Every rule, in severity-agnostic declaration order.
    pub const ALL: [Rule; 8] = [
        Rule::FifoInversion,
        Rule::DeliverBeforeSend,
        Rule::OrphanDelivery,
        Rule::DuplicateDelivery,
        Rule::DeliveryToCrashed,
        Rule::CausalPrecedesOwnSend,
        Rule::CoordinatorRace,
        Rule::ConcurrentExchange,
    ];

    /// The stable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            Rule::FifoInversion => "fifo-inversion",
            Rule::DeliverBeforeSend => "deliver-before-send",
            Rule::OrphanDelivery => "orphan-delivery",
            Rule::DuplicateDelivery => "duplicate-delivery",
            Rule::DeliveryToCrashed => "delivery-to-crashed",
            Rule::CausalPrecedesOwnSend => "causal-precedes-own-send",
            Rule::CoordinatorRace => "coordinator-race",
            Rule::ConcurrentExchange => "concurrent-exchange",
        }
    }

    /// Parses a kebab-case label back into a rule.
    pub fn from_label(label: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.label() == label)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// Hand-written so serialized findings carry the kebab-case labels instead of
// the derive's PascalCase variant names.
impl Serialize for Rule {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for Rule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_str()
            .and_then(Rule::from_label)
            .ok_or_else(|| serde::Error::custom("expected an audit rule label"))
    }
}

/// One rule violation, anchored to the offending trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Which rule was violated.
    pub rule: Rule,
    /// Index (into the audited event slice) of the offending event.
    pub event_index: usize,
    /// Index of the earlier event it conflicts with, when there is one
    /// (the inverted predecessor, the duplicate's first delivery, the crash,
    /// the racing initiation, …).
    pub related_index: Option<usize>,
    /// Sender side of the offending event.
    pub from: NodeId,
    /// Receiver side of the offending event.
    pub to: NodeId,
    /// Message kind label of the offending event.
    pub message_kind: String,
    /// Message id of the offending event (`0` when it carries none).
    pub msg_id: u64,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// Per-directed-link message statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStat {
    /// Sender endpoint.
    pub from: NodeId,
    /// Receiver endpoint.
    pub to: NodeId,
    /// Messages handed to the link.
    pub sends: u64,
    /// Messages delivered by the link.
    pub delivers: u64,
    /// Messages the link lost.
    pub drops: u64,
}

/// The auditor's verdict over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Number of audited trace events.
    pub events: usize,
    /// Number of distinct node indices the trace mentions.
    pub nodes: usize,
    /// Send events seen.
    pub sends: u64,
    /// Deliver events seen.
    pub delivers: u64,
    /// Drop events seen.
    pub drops: u64,
    /// Crash events seen.
    pub crashes: u64,
    /// Per-directed-link statistics, sorted by `(from, to)`.
    pub links: Vec<LinkStat>,
    /// Every rule violation found, in trace order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Whether the trace satisfies every rule.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Renders the report as a small Markdown document (the `scenario
    /// audit --markdown` output).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Trace audit\n\n");
        out.push_str(&format!(
            "- events: {} ({} sends, {} delivers, {} drops, {} crashes)\n",
            self.events, self.sends, self.delivers, self.drops, self.crashes
        ));
        out.push_str(&format!(
            "- nodes: {}, directed links used: {}\n",
            self.nodes,
            self.links.len()
        ));
        if self.is_clean() {
            out.push_str("- verdict: **clean** — every rule holds\n");
            return out;
        }
        out.push_str(&format!(
            "- verdict: **{} violation{}**\n\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" }
        ));
        out.push_str("| # | rule | event | link | kind | msg | detail |\n");
        out.push_str("|---|------|-------|------|------|-----|--------|\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "| {} | `{}` | {} | {}→{} | {} | {} | {} |\n",
                i + 1,
                f.rule,
                f.event_index,
                f.from,
                f.to,
                f.message_kind,
                f.msg_id,
                f.detail
            ));
        }
        out
    }
}

/// Message kind whose causally unordered initiations mean two coordinators.
const COORDINATOR_KIND: &str = "SearchInit";
/// Message kind whose causally unordered initiations mean two exchanges.
const EXCHANGE_KIND: &str = "Cut";

/// Audits the events of a [`TraceRecorder`] (see [`audit_events`]).
pub fn audit(trace: &TraceRecorder) -> AuditReport {
    audit_events(trace.events())
}

/// Replays `events` once and returns the full verdict. The slice must be in
/// recording order — how every backend publishes it.
pub fn audit_events(events: &[TraceEvent]) -> AuditReport {
    let n = events
        .iter()
        .map(|e| e.from.index().max(e.to.index()) + 1)
        .max()
        .unwrap_or(0);

    // Pass 1: where was each message sent?
    let mut send_index: HashMap<u64, usize> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind == TraceEventKind::Send && e.msg_id != 0 {
            send_index.entry(e.msg_id).or_insert(i);
        }
    }

    // Pass 2: vector-clock replay.
    let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
    let mut in_flight: HashMap<u64, VectorClock> = HashMap::new();
    // Deliveries that preceded their own send in the trace: msg id →
    // (delivery index, receiver, the receiver's own event count at the
    // delivery). If the eventual send turns out to causally know that
    // receiver event, the message happens-before its own send — a cycle.
    let mut early_delivery: HashMap<u64, (usize, usize, u64)> = HashMap::new();
    let mut delivered: HashMap<u64, usize> = HashMap::new();
    let mut crashed_at: HashMap<usize, usize> = HashMap::new();
    let mut fifo_watermark: HashMap<(usize, usize), (u64, usize)> = HashMap::new();
    let mut links: BTreeMap<(usize, usize), LinkStat> = BTreeMap::new();
    // Happens-before-minimal initiations seen so far, per protocol rule.
    let mut coordinator_minima: Vec<(usize, VectorClock)> = Vec::new();
    let mut exchange_minima: Vec<(usize, VectorClock)> = Vec::new();

    let mut findings: Vec<Finding> = Vec::new();
    let (mut sends, mut delivers, mut drops, mut crashes) = (0u64, 0u64, 0u64, 0u64);

    let finding =
        |rule: Rule, i: usize, related: Option<usize>, e: &TraceEvent, detail: String| Finding {
            rule,
            event_index: i,
            related_index: related,
            from: e.from,
            to: e.to,
            message_kind: e.message_kind.to_string(),
            msg_id: e.msg_id,
            detail,
        };

    for (i, e) in events.iter().enumerate() {
        let (u, v) = (e.from.index(), e.to.index());
        let link = links.entry((u, v)).or_insert(LinkStat {
            from: e.from,
            to: e.to,
            sends: 0,
            delivers: 0,
            drops: 0,
        });
        match e.kind {
            TraceEventKind::Send => {
                sends += 1;
                link.sends += 1;
                clocks[u].tick(u);
                let snapshot = clocks[u].clone();
                // Protocol-level mutual exclusion: keep the send only if no
                // already-known minimal initiation happens-before it.
                for (kind, minima, rule) in [
                    (
                        COORDINATOR_KIND,
                        &mut coordinator_minima,
                        Rule::CoordinatorRace,
                    ),
                    (
                        EXCHANGE_KIND,
                        &mut exchange_minima,
                        Rule::ConcurrentExchange,
                    ),
                ] {
                    if e.message_kind != kind {
                        continue;
                    }
                    let dominated = minima.iter().any(|(_, vc)| vc.precedes(&snapshot));
                    if !dominated {
                        if let Some((first, vc)) = minima.first() {
                            if vc.concurrent(&snapshot) {
                                let what = if rule == Rule::CoordinatorRace {
                                    "coordinator broadcasts"
                                } else {
                                    "exchange cascades"
                                };
                                findings.push(finding(
                                    rule,
                                    i,
                                    Some(*first),
                                    e,
                                    format!(
                                        "{kind} initiation at node {} races the one at event {first}: \
                                         two {what} are not ordered by happens-before",
                                        e.from
                                    ),
                                ));
                            }
                        }
                        minima.push((i, snapshot.clone()));
                    }
                }
                if let Some(&(d, v, count)) = early_delivery.get(&e.msg_id) {
                    // The message was delivered before this send; if the
                    // sender's snapshot causally includes the delivery event
                    // at the receiver, the delivery fed back into its own
                    // send: a happens-before cycle.
                    if snapshot.get(v) >= count {
                        findings.push(finding(
                            Rule::CausalPrecedesOwnSend,
                            i,
                            Some(d),
                            e,
                            format!(
                                "msg {} causally precedes its own send: its delivery \
                                 (event {d}) reached back into the sender",
                                e.msg_id
                            ),
                        ));
                    }
                }
                if e.msg_id != 0 {
                    in_flight.insert(e.msg_id, snapshot);
                }
            }
            TraceEventKind::Deliver => {
                delivers += 1;
                link.delivers += 1;
                match send_index.get(&e.msg_id) {
                    None => findings.push(finding(
                        Rule::OrphanDelivery,
                        i,
                        None,
                        e,
                        format!("delivery of msg {} which no event sent", e.msg_id),
                    )),
                    Some(&j) if j > i => findings.push(finding(
                        Rule::DeliverBeforeSend,
                        i,
                        Some(j),
                        e,
                        format!("msg {} delivered before its send at event {j}", e.msg_id),
                    )),
                    _ => {}
                }
                if let Some(&first) = delivered.get(&e.msg_id) {
                    findings.push(finding(
                        Rule::DuplicateDelivery,
                        i,
                        Some(first),
                        e,
                        format!("msg {} already delivered at event {first}", e.msg_id),
                    ));
                } else {
                    delivered.insert(e.msg_id, i);
                }
                if let Some(&crash) = crashed_at.get(&v) {
                    findings.push(finding(
                        Rule::DeliveryToCrashed,
                        i,
                        Some(crash),
                        e,
                        format!("node {} crash-stopped at event {crash}", e.to),
                    ));
                }
                match fifo_watermark.get(&(u, v)) {
                    Some(&(seq, prev)) if e.seq <= seq => findings.push(finding(
                        Rule::FifoInversion,
                        i,
                        Some(prev),
                        e,
                        format!(
                            "seq {} delivered after seq {seq} (event {prev}) on link {}→{}",
                            e.seq, e.from, e.to
                        ),
                    )),
                    _ => {
                        fifo_watermark.insert((u, v), (e.seq, i));
                    }
                }
                if let Some(send_vc) = in_flight.remove(&e.msg_id) {
                    clocks[v].join(&send_vc);
                } else if e.msg_id != 0 && send_index.get(&e.msg_id).is_some_and(|&j| j > i) {
                    // Delivered before its send: remember the receiver's
                    // event count so the send can be checked for a causal
                    // cycle when (if) it appears.
                    early_delivery
                        .entry(e.msg_id)
                        .or_insert((i, v, clocks[v].get(v) + 1));
                }
                clocks[v].tick(v);
            }
            TraceEventKind::Drop => {
                drops += 1;
                link.drops += 1;
                in_flight.remove(&e.msg_id);
            }
            TraceEventKind::Crash => {
                crashes += 1;
                crashed_at.entry(u).or_insert(i);
            }
        }
    }

    findings.sort_by_key(|f| (f.event_index, f.rule.label()));
    AuditReport {
        events: events.len(),
        nodes: n,
        sends,
        delivers,
        drops,
        crashes,
        links: links.into_values().collect(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        time: u64,
        kind: TraceEventKind,
        from: usize,
        to: usize,
        label: &str,
        msg_id: u64,
        seq: u64,
    ) -> TraceEvent {
        TraceEvent {
            time,
            kind,
            from: NodeId::new(from),
            to: NodeId::new(to),
            message_kind: label.to_string().into(),
            msg_id,
            seq,
        }
    }

    fn send(t: u64, from: usize, to: usize, label: &str, id: u64, seq: u64) -> TraceEvent {
        ev(t, TraceEventKind::Send, from, to, label, id, seq)
    }

    fn deliver(t: u64, from: usize, to: usize, label: &str, id: u64, seq: u64) -> TraceEvent {
        ev(t, TraceEventKind::Deliver, from, to, label, id, seq)
    }

    #[test]
    fn a_clean_relay_audits_clean() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            deliver(1, 0, 1, "BFS", 1, 0),
            send(2, 1, 2, "BFS", 2, 0),
            deliver(3, 1, 2, "BFS", 2, 0),
        ]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.nodes, 3);
        assert_eq!((report.sends, report.delivers), (2, 2));
        assert_eq!(report.links.len(), 2);
    }

    #[test]
    fn swapped_deliveries_are_a_fifo_inversion() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            send(1, 0, 1, "BFS", 2, 1),
            deliver(2, 0, 1, "BFS", 2, 1),
            deliver(3, 0, 1, "BFS", 1, 0),
        ]);
        assert_eq!(report.count(Rule::FifoInversion), 1);
        let f = &report.findings[0];
        assert_eq!(f.rule, Rule::FifoInversion);
        assert_eq!(f.event_index, 3);
        assert_eq!(f.related_index, Some(2));
    }

    #[test]
    fn a_dropped_send_leaves_a_legal_gap() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            send(1, 0, 1, "BFS", 2, 1),
            ev(2, TraceEventKind::Drop, 0, 1, "BFS", 1, 0),
            deliver(3, 0, 1, "BFS", 2, 1),
        ]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.drops, 1);
    }

    #[test]
    fn missing_send_is_an_orphan_delivery() {
        let report = audit_events(&[deliver(0, 0, 1, "BFS", 9, 0)]);
        assert_eq!(report.count(Rule::OrphanDelivery), 1);
    }

    #[test]
    fn forged_duplicate_is_flagged_once() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            deliver(1, 0, 1, "BFS", 1, 0),
            deliver(2, 0, 1, "BFS", 1, 0),
        ]);
        assert_eq!(report.count(Rule::DuplicateDelivery), 1);
        // The duplicate also collides with the FIFO watermark.
        assert_eq!(report.count(Rule::FifoInversion), 1);
    }

    #[test]
    fn delivery_after_crash_is_flagged() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            ev(1, TraceEventKind::Crash, 1, 1, "crash", 0, 0),
            deliver(2, 0, 1, "BFS", 1, 0),
        ]);
        assert_eq!(report.count(Rule::DeliveryToCrashed), 1);
    }

    #[test]
    fn deliver_recorded_before_its_send_is_flagged() {
        let report = audit_events(&[deliver(0, 0, 1, "BFS", 1, 0), send(1, 0, 1, "BFS", 1, 0)]);
        assert_eq!(report.count(Rule::DeliverBeforeSend), 1);
    }

    #[test]
    fn a_message_feeding_back_into_its_own_send_is_a_causal_cycle() {
        // Msg 2 (node 1 → node 0) is delivered first; node 0 reacts with
        // msg 1 to node 1; node 1 only then sends msg 2 — causally after
        // absorbing the consequences of its own delivery. The cycle is
        // flagged on top of the raw deliver-before-send.
        let report = audit_events(&[
            deliver(0, 1, 0, "BFS", 2, 0),
            send(1, 0, 1, "BFS", 1, 0),
            deliver(2, 0, 1, "BFS", 1, 0),
            send(3, 1, 0, "BFS", 2, 0),
        ]);
        assert_eq!(
            report.count(Rule::CausalPrecedesOwnSend),
            1,
            "{:?}",
            report.findings
        );
        assert_eq!(report.count(Rule::DeliverBeforeSend), 1);
    }

    #[test]
    fn an_independent_early_delivery_is_not_a_causal_cycle() {
        // Msg 1's delivery is recorded before its send (corrupt merge), but
        // nothing about the delivery feeds back into the sender: only the
        // ordering rule fires, not the cycle rule.
        let report = audit_events(&[deliver(0, 1, 0, "BFS", 1, 0), send(1, 1, 0, "BFS", 1, 0)]);
        assert_eq!(report.count(Rule::DeliverBeforeSend), 1);
        assert_eq!(
            report.count(Rule::CausalPrecedesOwnSend),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn two_unordered_coordinators_race() {
        // Nodes 0 and 2 both broadcast SearchInit with no causal path
        // between them.
        let report = audit_events(&[
            send(0, 0, 1, "SearchInit", 1, 0),
            send(1, 2, 1, "SearchInit", 2, 0),
            deliver(2, 0, 1, "SearchInit", 1, 0),
            deliver(3, 2, 1, "SearchInit", 2, 0),
        ]);
        assert_eq!(report.count(Rule::CoordinatorRace), 1);
    }

    #[test]
    fn serialised_rounds_do_not_race() {
        // Round 2's SearchInit (from a moved root) is causally after round
        // 1's: no race. Forwarded copies inside one broadcast do not race
        // either.
        let report = audit_events(&[
            send(0, 0, 1, "SearchInit", 1, 0),
            deliver(1, 0, 1, "SearchInit", 1, 0),
            send(2, 1, 2, "SearchInit", 2, 0), // forward, causally after
            deliver(3, 1, 2, "SearchInit", 2, 0),
            send(4, 2, 1, "MoveRoot", 3, 0),
            deliver(5, 2, 1, "MoveRoot", 3, 0),
            send(6, 1, 0, "SearchInit", 4, 1), // round 2, causally after
            deliver(7, 1, 0, "SearchInit", 4, 1),
        ]);
        assert_eq!(
            report.count(Rule::CoordinatorRace),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn concurrent_cut_cascades_race() {
        let report = audit_events(&[send(0, 0, 1, "Cut", 1, 0), send(1, 2, 3, "Cut", 2, 0)]);
        assert_eq!(report.count(Rule::ConcurrentExchange), 1);
    }

    #[test]
    fn report_round_trips_through_json_and_renders_markdown() {
        let report = audit_events(&[
            send(0, 0, 1, "BFS", 1, 0),
            send(1, 0, 1, "BFS", 2, 1),
            deliver(2, 0, 1, "BFS", 2, 1),
            deliver(3, 0, 1, "BFS", 1, 0),
        ]);
        let json = report.to_value().to_json_pretty();
        let back = AuditReport::from_value(&serde::from_json_str(&json).unwrap()).unwrap();
        assert_eq!(back, report);
        let md = report.to_markdown();
        assert!(md.contains("fifo-inversion"));
        assert!(md.contains("# Trace audit"));
        let clean = audit_events(&[]).to_markdown();
        assert!(clean.contains("clean"));
    }

    #[test]
    fn rule_labels_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_label(rule.label()), Some(rule));
        }
        assert_eq!(Rule::from_label("nonsense"), None);
    }
}
