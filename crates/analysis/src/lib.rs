//! # mdst-analysis
//!
//! Static happens-before analysis of execution traces.
//!
//! Every backend of `mdst-netsim` (discrete-event simulator, thread-per-node
//! runtime, work-stealing pool, step-controlled net) can record a
//! [`mdst_netsim::TraceRecorder`] whose events carry a run-unique message id
//! and a per-directed-link sequence number. This crate replays such a trace
//! *offline*, reconstructs the causal partial order with vector clocks
//! ([`clock`]), and checks the delivery discipline the protocol's
//! correctness argument rests on ([`audit()`](audit::audit)): per-link FIFO order, no
//! orphan/duplicate deliveries, no deliveries into crashed nodes, no
//! happens-before cycles, and the paper's single-coordinator discipline
//! (causally unordered `SearchInit` broadcasts or `Cut` cascades are races).
//!
//! Three ways in:
//!
//! * [`audit()`](audit::audit) / [`audit_events()`](audit::audit_events) — audit
//!   a recorder or raw event slice, returning an [`AuditReport`].
//! * [`Auditor`] — an [`mdst_core::Observer`] that audits a pipeline
//!   session's trace when the run finishes.
//! * `scenario audit <file>` — the CLI front-end in `mdst-scenario`, which
//!   loads a trace (or a campaign report embedding one) from JSON and exits
//!   nonzero on findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod clock;
pub mod observer;

pub use audit::{audit, audit_events, AuditReport, Finding, LinkStat, Rule};
pub use clock::VectorClock;
pub use observer::Auditor;
