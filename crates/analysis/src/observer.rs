//! Live auditing of pipeline sessions.
//!
//! [`Auditor`] is an [`Observer`] that waits for the final
//! [`mdst_core::RunReport`] and, when the session recorded a trace, runs the
//! happens-before [`audit()`](crate::audit::audit) on it. Register it on a
//! [`mdst_core::Pipeline`] builder:
//!
//! ```
//! use mdst_analysis::Auditor;
//! use mdst_core::{Pipeline, PipelineConfig};
//! use mdst_graph::generators;
//! use mdst_netsim::SimConfig;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generators::star_with_leaf_edges(8).unwrap());
//! let mut auditor = Auditor::new();
//! let config = PipelineConfig {
//!     sim: SimConfig { record_trace: true, ..Default::default() },
//!     ..Default::default()
//! };
//! let _ = Pipeline::on(&graph)
//!     .config(config)
//!     .observer(&mut auditor)
//!     .run()
//!     .unwrap();
//! let report = auditor.report().expect("a trace was recorded");
//! assert!(report.is_clean());
//! ```

use crate::audit::{audit, AuditReport};
use mdst_core::{Observer, RunReport};

/// An [`Observer`] that audits the session's trace at finish.
#[derive(Debug, Default)]
pub struct Auditor {
    report: Option<AuditReport>,
}

impl Auditor {
    /// A fresh auditor with no verdict yet.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// The verdict, once the session finished with a recorded trace; `None`
    /// before `on_finish` or when the session did not record a trace.
    pub fn report(&self) -> Option<&AuditReport> {
        self.report.as_ref()
    }

    /// Consumes the auditor and returns the verdict, if any.
    pub fn into_report(self) -> Option<AuditReport> {
        self.report
    }
}

impl Observer for Auditor {
    fn on_finish(&mut self, report: &RunReport) {
        if report.trace.is_enabled() {
            self.report = Some(audit(&report.trace));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_core::{Pipeline, PipelineConfig};
    use mdst_graph::generators;
    use mdst_netsim::SimConfig;
    use std::sync::Arc;

    #[test]
    fn auditor_stays_empty_without_a_trace() {
        let graph = Arc::new(generators::cycle(6).unwrap());
        let mut auditor = Auditor::new();
        let _ = Pipeline::on(&graph).observer(&mut auditor).run().unwrap();
        assert!(auditor.report().is_none());
    }

    #[test]
    fn auditor_audits_a_traced_session_clean() {
        let graph = Arc::new(generators::star_with_leaf_edges(10).unwrap());
        let mut auditor = Auditor::new();
        let config = PipelineConfig {
            sim: SimConfig {
                record_trace: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let _ = Pipeline::on(&graph)
            .config(config)
            .observer(&mut auditor)
            .run()
            .unwrap();
        let report = auditor.into_report().expect("trace recorded");
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.sends > 0);
        assert_eq!(report.sends, report.delivers + report.drops);
    }
}
