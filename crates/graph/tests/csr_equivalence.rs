//! Property tests pinning the CSR [`Graph`] to the observational semantics of
//! the original `Vec<Vec<(NodeId, EdgeId)>>` adjacency representation: for
//! any edge set a [`GraphBuilder`] accepts, the CSR structure must present
//! sorted neighbour rows, a symmetric relation, stable lexicographic
//! [`EdgeId`]s and self-consistent degrees — the exact contract every
//! executor and protocol was written against.

use mdst_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A random simple-graph edge set over up to 40 nodes (not necessarily
/// connected — the representation contract has nothing to do with
/// connectivity), plus the node count. Described by `(n, attempts, seed)`
/// and expanded reproducibly, matching the shimmed proptest surface.
fn edge_sets() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40, 0usize..80, any::<u64>()).prop_map(|(n, attempts, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen = BTreeSet::new();
        let mut edges = Vec::new();
        for _ in 0..attempts {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && seen.insert((u.min(v), u.max(v))) {
                // Keep the *unnormalised* orientation: the builder must accept
                // either spelling and normalise internally.
                edges.push((u, v));
            }
        }
        (n, edges)
    })
}

/// The reference model: plain per-node adjacency lists built exactly the way
/// the pre-CSR `Graph` built them.
fn reference_adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<(NodeId, EdgeId)>> {
    // Edge ids are the lexicographic rank of the normalised (u, v) pair —
    // the documented stability contract of `GraphBuilder::build`.
    let mut normalised: Vec<(usize, usize)> =
        edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    normalised.sort_unstable();
    let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
    for (i, &(u, v)) in normalised.iter().enumerate() {
        adj[u].push((NodeId::new(v), EdgeId::new(i)));
        adj[v].push((NodeId::new(u), EdgeId::new(i)));
    }
    for row in &mut adj {
        row.sort_unstable_by_key(|&(v, _)| v);
    }
    adj
}

fn build(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for &(u, v) in edges {
        builder
            .add_edge(NodeId::new(u), NodeId::new(v))
            .expect("unique simple edge");
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_the_reference_adjacency((n, edges) in edge_sets()) {
        let graph = build(n, &edges);
        let reference = reference_adjacency(n, &edges);
        prop_assert_eq!(graph.node_count(), n);
        prop_assert_eq!(graph.edge_count(), edges.len());
        for (u, expected) in reference.iter().enumerate() {
            let row: Vec<(NodeId, EdgeId)> = graph.neighbors_with_edges(NodeId::new(u)).collect();
            prop_assert_eq!(&row, expected, "row of node {}", u);
            let slice: Vec<NodeId> = graph.neighbor_slice(NodeId::new(u)).to_vec();
            let iter: Vec<NodeId> = graph.neighbors(NodeId::new(u)).collect();
            prop_assert_eq!(&slice, &iter);
            prop_assert_eq!(graph.degree(NodeId::new(u)), reference[u].len());
        }
    }

    #[test]
    fn neighbours_are_sorted_and_symmetric((n, edges) in edge_sets()) {
        let graph = build(n, &edges);
        for u in graph.nodes() {
            let row = graph.neighbor_slice(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
            for &v in row {
                prop_assert!(graph.neighbor_slice(v).binary_search(&u).is_ok(),
                    "edge {}-{} must appear in both rows", u, v);
            }
        }
        prop_assert_eq!(graph.degree_sum(), 2 * graph.edge_count());
    }

    #[test]
    fn edge_ids_are_lexicographic_and_stable((n, edges) in edge_sets()) {
        let graph = build(n, &edges);
        let listed: Vec<(EdgeId, NodeId, NodeId)> = graph.edges_with_ids().collect();
        // Ids are dense 0..m in lexicographic endpoint order, u < v.
        for (i, &(id, u, v)) in listed.iter().enumerate() {
            prop_assert_eq!(id, EdgeId::new(i));
            prop_assert!(u < v);
            prop_assert_eq!(graph.endpoints(id), (u, v));
            prop_assert_eq!(graph.edge_id(u, v), Some(id));
            prop_assert_eq!(graph.edge_id(v, u), Some(id));
        }
        for window in listed.windows(2) {
            prop_assert!((window[0].1, window[0].2) < (window[1].1, window[1].2));
        }
        // Ids reachable through rows agree with the edge table.
        for u in graph.nodes() {
            for (v, id) in graph.neighbors_with_edges(u) {
                let (a, b) = graph.endpoints(id);
                prop_assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
    }

    #[test]
    fn insertion_order_never_changes_the_graph((n, edges) in edge_sets()) {
        let forward = build(n, &edges);
        let mut reversed: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        reversed.reverse();
        let backward = build(n, &reversed);
        prop_assert_eq!(forward, backward);
    }
}
