//! Undirected simple graph stored in CSR (compressed sparse row) layout.
//!
//! This is the communication graph of the paper's model: nodes are processors,
//! edges are bidirectional, non-interfering links. The structure is immutable
//! once built (networks do not change during a run), which lets the simulator
//! and every protocol share it behind a plain reference — or, at campaign
//! scale, behind one `Arc<Graph>` borrowed by thousands of runs.
//!
//! The CSR layout keeps the whole topology in four flat arrays of `u32`-wide
//! entries:
//!
//! * `offsets[u] .. offsets[u + 1]` delimits node `u`'s row,
//! * `targets[row]` holds the neighbours, sorted by identity,
//! * `edge_ids[row]` holds the connecting edge identifier in parallel,
//! * `first_edge[u]` is the identifier of the first edge whose *minimum*
//!   endpoint is `u` — the cumulative count of edges `(x, y)`, `x < y`, with
//!   `x < u`.
//!
//! The fourth array replaces the former explicit edge table `Vec<(NodeId,
//! NodeId)>`: because [`EdgeId`]s are assigned in lexicographic `(min, max)`
//! order, edge `e`'s endpoints are recoverable from the CSR rows alone — `u`
//! is the unique node with `first_edge[u] ≤ e < first_edge[u + 1]`, and `v`
//! is the `(e − first_edge[u])`-th neighbour of `u` greater than `u`. That
//! turns [`Graph::endpoints`] from one array load into two binary searches,
//! but drops 16 bytes per edge; combined with the 4-byte identities the whole
//! layout is `8·|V| + 16·|E|` bytes of payload versus the seed layout's
//! `8·|V| + 48·|E|` — about a third of the footprint at the million-node
//! scale target (observable via [`Graph::memory_bytes`]).
//!
//! Compared to the former `Vec<Vec<(NodeId, EdgeId)>>` adjacency this is one
//! allocation instead of `n + 1`, cache-linear neighbour iteration, and —
//! crucially for the executor layer — neighbour lists are borrowable as plain
//! `&[NodeId]` slices ([`Graph::neighbor_slice`]), so no runtime ever has to
//! re-materialise per-node neighbour vectors before a run.
//!
//! Graphs arrive from two builders with one shared finishing path
//! ([`GraphBuilder`] for in-memory construction, [`StreamingBuilder`] for
//! two-pass streaming ingestion of on-disk edge streams); both produce
//! byte-identical layouts for the same edge set.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeSet;

/// Stable identifier of an undirected edge: the lexicographic rank of its
/// `(min, max)` endpoint pair. Stored as `u32` — the builders reject graphs
/// whose incidence count would overflow the 32-bit layout with
/// [`GraphError::TooLarge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Constructs an identifier from a dense `usize` index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "edge index {index} overflows u32"
        );
        EdgeId(index as u32)
    }

    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable undirected simple graph (no self loops, no parallel edges) in
/// CSR layout.
///
/// Nodes are the dense range `0..node_count()`; each CSR row is kept sorted
/// by neighbour identity so iteration order is deterministic, which in turn
/// keeps the discrete-event simulator reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Row boundaries: node `u`'s neighbours live at `offsets[u]..offsets[u+1]`.
    /// Always `n + 1` entries with `offsets[0] == 0` and `offsets[n] == 2·|E|`.
    offsets: Box<[u32]>,
    /// Neighbour identities, sorted within each row. Length `2·|E|`.
    targets: Box<[NodeId]>,
    /// Edge identifier of each `(row node, target)` incidence, parallel to
    /// `targets`. Length `2·|E|`.
    edge_ids: Box<[EdgeId]>,
    /// `first_edge[u]` = number of edges whose minimum endpoint is `< u`;
    /// `n + 1` entries, `first_edge[n] == |E|`. Replaces the edge table.
    first_edge: Box<[u32]>,
}

impl Graph {
    /// Most edges a graph may hold: the incidence arrays store `2·|E|`
    /// entries indexed by `u32`, so `|E|` is capped at `⌊(2³² − 1) / 2⌋`.
    /// Both builders reject the cap with [`GraphError::TooLarge`].
    pub const MAX_EDGES: usize = (u32::MAX / 2) as usize;

    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1].into_boxed_slice(),
            targets: Box::new([]),
            edge_ids: Box::new([]),
            first_edge: vec![0; n + 1].into_boxed_slice(),
        }
    }

    /// Assembles a graph from fully placed CSR rows (each row sorted by
    /// neighbour identity, symmetric, duplicate-free). This is the single
    /// finishing path shared by [`GraphBuilder::build`] and
    /// [`StreamingBuilder`]: it derives `first_edge` from the row tails and
    /// fills `edge_ids` in one ordered sweep, so both builders produce
    /// byte-identical layouts.
    ///
    /// The sweep exploits the lexicographic identifier order twice over: row
    /// `u`'s *tail* (neighbours `> u`) lists the edges with minimum endpoint
    /// `u` in rank order, so tail identifiers are just `first_edge[u] + k`;
    /// and the *head* occurrences of a node `v` (rows `u > v` containing `v`)
    /// appear, across ascending `u`, in exactly the order of `v`'s tail — a
    /// second cursor per node replays that sequence without any search.
    fn from_sorted_rows(offsets: Vec<u32>, targets: Vec<NodeId>) -> Graph {
        let n = offsets.len() - 1;
        let mut first_edge = vec![0u32; n + 1];
        for u in 0..n {
            let row = &targets[offsets[u] as usize..offsets[u + 1] as usize];
            let tail = row.len() - row.partition_point(|&t| t.index() < u);
            first_edge[u + 1] = first_edge[u] + tail as u32;
        }
        let mut edge_ids = vec![EdgeId(0); targets.len()];
        let mut tail_cursor: Vec<u32> = first_edge[..n].to_vec();
        let mut head_cursor: Vec<u32> = first_edge[..n].to_vec();
        for u in 0..n {
            for idx in offsets[u] as usize..offsets[u + 1] as usize {
                let v = targets[idx].index();
                if v > u {
                    edge_ids[idx] = EdgeId(tail_cursor[u]);
                    tail_cursor[u] += 1;
                } else {
                    edge_ids[idx] = EdgeId(head_cursor[v]);
                    head_cursor[v] += 1;
                }
            }
        }
        Graph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            edge_ids: edge_ids.into_boxed_slice(),
            first_edge: first_edge.into_boxed_slice(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.first_edge[self.first_edge.len() - 1] as usize
    }

    /// Heap footprint of the CSR arrays in bytes: `4·(n+1)` offsets,
    /// `4·2·|E|` targets, `4·2·|E|` edge identifiers and `4·(n+1)` first-edge
    /// ranks — `8·|V| + 16·|E| + 8` in total. This is the whole per-graph
    /// payload (the struct itself is four fat pointers), so scale tests can
    /// assert bytes-per-node budgets against it.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val::<[u32]>(&self.offsets)
            + std::mem::size_of_val::<[NodeId]>(&self.targets)
            + std::mem::size_of_val::<[EdgeId]>(&self.edge_ids)
            + std::mem::size_of_val::<[u32]>(&self.first_edge)
    }

    /// Iterator over all node identities `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`, in
    /// lexicographic (= identifier) order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges_with_ids().map(|(_, u, v)| (u, v))
    }

    /// Iterator over all edges together with their stable identifiers, in
    /// identifier order. Walks the CSR row tails (neighbours greater than the
    /// row node), which enumerate exactly the `(min, max)` pairs.
    pub fn edges_with_ids(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            let end = self.offsets[u + 1] as usize;
            let tail = (self.first_edge[u + 1] - self.first_edge[u]) as usize;
            let base = self.first_edge[u];
            self.targets[end - tail..end]
                .iter()
                .enumerate()
                .map(move |(k, &v)| (EdgeId(base + k as u32), NodeId::new(u), v))
        })
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    ///
    /// Recovered from the rank structure: `u` is the node whose first-edge
    /// range contains `e`, and `v` is the corresponding entry of `u`'s row
    /// tail. Two array searches instead of the former edge-table load — the
    /// price of dropping 16 bytes per edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let rank = e.0;
        let u = self.first_edge.partition_point(|&f| f <= rank) - 1;
        let k = (rank - self.first_edge[u]) as usize;
        let end = self.offsets[u + 1] as usize;
        let tail = (self.first_edge[u + 1] - self.first_edge[u]) as usize;
        (NodeId::new(u), self.targets[end - tail + k])
    }

    /// The CSR row bounds of node `u`.
    #[inline]
    fn row(&self, u: NodeId) -> std::ops::Range<usize> {
        self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize
    }

    /// Sorted neighbours of `u` as a borrowable slice. This is the zero-copy
    /// view the executor backends hand to protocol factories: it lives as
    /// long as the graph, so a shared `Arc<Graph>` serves every run without
    /// per-run adjacency re-materialisation.
    #[inline]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.row(u)]
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbor_slice(u).iter().copied()
    }

    /// Sorted neighbours of `u` together with the connecting edge identifiers.
    pub fn neighbors_with_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let row = self.row(u);
        self.targets[row.clone()]
            .iter()
            .copied()
            .zip(self.edge_ids[row].iter().copied())
    }

    /// Degree of `u` in the graph (number of incident links).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.row(u).len()
    }

    /// Maximum degree over all nodes, `0` for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes, `0` for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// The identifier of the edge `(u, v)` if it exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        let row = self.row(u);
        self.targets[row.clone()]
            .binary_search(&v)
            .ok()
            .map(|pos| self.edge_ids[row.start + pos])
    }

    /// Checks that `u` is a valid node of this graph.
    pub fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count(),
            })
        }
    }

    /// Sum of all degrees; always `2·|E|`.
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Returns the complement set of edges (pairs of distinct nodes that are
    /// *not* linked). Used by tests and by crafted worst-case generators.
    pub fn non_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in 0..self.node_count() {
            for v in (u + 1)..self.node_count() {
                if !self.has_edge(NodeId::new(u), NodeId::new(v)) {
                    out.push((NodeId::new(u), NodeId::new(v)));
                }
            }
        }
        out
    }

    /// Builds the subgraph induced by `keep` (nodes are re-indexed densely in
    /// ascending order of their original identity). Returns the subgraph and
    /// the mapping `new index -> old identity`.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>) {
        let old_of_new: Vec<NodeId> = keep.iter().copied().collect();
        let mut new_of_old = vec![u32::MAX; self.node_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new as u32;
        }
        let mut builder = GraphBuilder::new(old_of_new.len());
        for (u, v) in self.edges() {
            if keep.contains(&u) && keep.contains(&v) {
                builder
                    .add_edge(NodeId(new_of_old[u.index()]), NodeId(new_of_old[v.index()]))
                    .expect("induced edges are valid and unique");
            }
        }
        (builder.build(), old_of_new)
    }
}

impl Serialize for Graph {
    /// Serializes as `{"n": …, "edges": [[u, v], …]}` — the logical edge
    /// list, not the physical CSR arrays, so the persisted shape is layout
    /// independent (and a third the size of dumping the incidence arrays).
    fn to_value(&self) -> Value {
        let edges: Vec<Value> = self
            .edges()
            .map(|(u, v)| Value::Array(vec![Value::UInt(u.0 as u64), Value::UInt(v.0 as u64)]))
            .collect();
        Value::Object(vec![
            ("n".to_string(), Value::UInt(self.node_count() as u64)),
            ("edges".to_string(), Value::Array(edges)),
        ])
    }
}

impl Deserialize for Graph {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected graph object"))?;
        let n: usize = serde::field(obj, "n")?;
        let edges: Vec<(u32, u32)> = serde::field(obj, "edges")?;
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v))
                .map_err(|e| serde::Error::custom(format!("invalid graph edge: {e}")))?;
        }
        Ok(b.build())
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder enforces the model's structural constraints (no self loops, no
/// parallel edges, identifiers in range, incidence count within the 32-bit
/// layout) as edges are added, so [`GraphBuilder::build`] itself cannot fail
/// and assembles the CSR arrays directly — no intermediate per-node vectors.
///
/// Duplicate-edge semantics (shared, by contract and by test, with
/// [`StreamingBuilder`]): [`GraphBuilder::add_edge`] *rejects* a repeated
/// undirected edge with [`GraphError::DuplicateEdge`], while
/// [`GraphBuilder::add_edge_idempotent`] *merges* it — repeated mentions of
/// `(u, v)` in either orientation collapse to a single edge. The streaming
/// builder's [`StreamingBuilder::finish`] implements exactly the merge
/// semantics, and its [`StreamingBuilder::finish_symmetric`] exactly the
/// reject semantics.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        debug_assert!(
            n as u64 <= u32::MAX as u64 + 1,
            "node count {n} overflows the 32-bit identity space"
        );
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes of the graph being built.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the undirected edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Errors on out-of-range endpoints, self loops, duplicates, and on the
    /// [`Graph::MAX_EDGES`] capacity of the 32-bit CSR layout.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.n,
            });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.edges.len() >= Graph::MAX_EDGES {
            return Err(GraphError::TooLarge {
                what: "edges",
                count: self.edges.len() as u64 + 1,
                limit: Graph::MAX_EDGES as u64,
            });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.edges.insert(key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        Ok(())
    }

    /// Adds the edge if it is not already present; ignores duplicates but still
    /// rejects self loops and out-of-range endpoints.
    pub fn add_edge_idempotent(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        if self.has_edge(u, v) {
            // Still validate endpoints so silent no-ops cannot hide bugs.
            if u.index() >= self.n || v.index() >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: if u.index() >= self.n { u } else { v },
                    node_count: self.n,
                });
            }
            return Ok(false);
        }
        self.add_edge(u, v)?;
        Ok(true)
    }

    /// Finalises the graph, assembling the CSR arrays in two passes: a degree
    /// count, then a single placement sweep over the lexicographically sorted
    /// edge set.
    ///
    /// Each row comes out sorted without a per-row sort: for row `w`, the
    /// neighbours `x < w` arrive from edges `(x, w)` in increasing `x` (every
    /// such edge precedes any `(w, ·)` edge lexicographically), and the
    /// neighbours `y > w` arrive from edges `(w, y)` in increasing `y`.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![NodeId(0); 2 * self.edges.len()];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (u, v) in self.edges {
            targets[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            targets[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        Graph::from_sorted_rows(offsets, targets)
    }
}

/// Two-pass streaming CSR builder: ingests an edge stream twice and places
/// every incidence directly into its pre-sized CSR row, so peak memory is the
/// finished CSR plus cursors — never an intermediate `Vec<(u, v)>` edge list
/// and never a global lexicographic sort.
///
/// Protocol (counting sort over rows):
///
/// 1. **Pass 1** — replay the stream through [`StreamingBuilder::count_edge`]
///    (or [`StreamingBuilder::count_arc`] for directed adjacency formats like
///    METIS, which mention each edge once per endpoint);
/// 2. [`StreamingBuilder::start_placement`] — prefix-sums the counts into row
///    offsets and allocates the target array;
/// 3. **Pass 2** — replay the *same* stream through
///    [`StreamingBuilder::place_edge`] / [`StreamingBuilder::place_arc`];
/// 4. [`StreamingBuilder::finish`] (undirected streams; duplicate edges are
///    merged, matching [`GraphBuilder::add_edge_idempotent`]) or
///    [`StreamingBuilder::finish_symmetric`] (arc streams; duplicates are
///    rejected like [`GraphBuilder::add_edge`], and asymmetric mentions are
///    reported) — sorts each row, applies the duplicate policy, and assembles
///    the same compact layout [`GraphBuilder::build`] produces.
///
/// The two passes must replay identical streams: a stream that counts and
/// places different incidences is reported as
/// [`GraphError::StreamingMismatch`] rather than producing a corrupt graph.
/// Misuse of the phase protocol itself (placing before counting finished,
/// counting after placement started) is reported the same way.
#[derive(Debug, Clone)]
pub struct StreamingBuilder {
    n: usize,
    /// During pass 1, `offsets[i + 1]` is node `i`'s incidence count; after
    /// [`StreamingBuilder::start_placement`], the usual CSR prefix sums.
    offsets: Vec<u32>,
    /// Placement cursor per node (pass 2 only).
    cursor: Vec<u32>,
    /// Incidence slots, placed by counting sort (pass 2 only).
    targets: Vec<NodeId>,
    /// Total incidences counted in pass 1, kept in 64 bits to detect overflow
    /// of the 32-bit layout before any array index wraps.
    incidences: u64,
    placing: bool,
}

impl StreamingBuilder {
    /// Starts a streaming build for a graph on `n` nodes.
    ///
    /// Unlike [`GraphBuilder::new`] this is fallible: streaming inputs carry
    /// their node count in-band (file headers), so an absurd count must be a
    /// typed error, not a debug assertion.
    pub fn new(n: usize) -> Result<Self> {
        if n as u64 > u32::MAX as u64 + 1 {
            return Err(GraphError::TooLarge {
                what: "nodes",
                count: n as u64,
                limit: u32::MAX as u64 + 1,
            });
        }
        Ok(StreamingBuilder {
            n,
            offsets: vec![0; n + 1],
            cursor: Vec::new(),
            targets: Vec::new(),
            incidences: 0,
            placing: false,
        })
    }

    /// Number of nodes of the graph being built.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Grows the node count to at least `n` during pass 1.
    ///
    /// Headerless formats (edge lists) carry no node count — it is
    /// `max(endpoint) + 1`, discovered while counting. Pass 2 replays the
    /// same stream, so by placement time the count is final; growing after
    /// [`StreamingBuilder::start_placement`] is a protocol violation.
    pub fn ensure_nodes(&mut self, n: usize) -> Result<()> {
        if self.placing {
            return Err(GraphError::StreamingMismatch(
                "ensure_nodes called after placement started".to_string(),
            ));
        }
        if n as u64 > u32::MAX as u64 + 1 {
            return Err(GraphError::TooLarge {
                what: "nodes",
                count: n as u64,
                limit: u32::MAX as u64 + 1,
            });
        }
        if n > self.n {
            self.n = n;
            self.offsets.resize(n + 1, 0);
        }
        Ok(())
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<()> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.n,
            });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(())
    }

    fn bump(&mut self, u: NodeId) -> Result<()> {
        if self.incidences >= u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "incidence slots",
                count: self.incidences + 1,
                limit: u32::MAX as u64,
            });
        }
        self.incidences += 1;
        self.offsets[u.index() + 1] += 1;
        Ok(())
    }

    /// Pass 1: counts the undirected edge `(u, v)` (one incidence per
    /// endpoint). Validates endpoints exactly like [`GraphBuilder::add_edge`];
    /// duplicates are *not* detected here — they are resolved at
    /// [`StreamingBuilder::finish`].
    pub fn count_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if self.placing {
            return Err(GraphError::StreamingMismatch(
                "count_edge called after placement started".to_string(),
            ));
        }
        self.check_endpoints(u, v)?;
        self.bump(u)?;
        self.bump(v)
    }

    /// Pass 1: counts the directed mention `u → v` (one incidence, in `u`'s
    /// row only). For adjacency formats that list every edge once per
    /// endpoint; pair with [`StreamingBuilder::finish_symmetric`].
    pub fn count_arc(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if self.placing {
            return Err(GraphError::StreamingMismatch(
                "count_arc called after placement started".to_string(),
            ));
        }
        self.check_endpoints(u, v)?;
        self.bump(u)
    }

    /// Ends pass 1: prefix-sums the per-node counts into CSR offsets and
    /// allocates the incidence array — the single big allocation of the
    /// build, sized exactly.
    pub fn start_placement(&mut self) -> Result<()> {
        if self.placing {
            return Err(GraphError::StreamingMismatch(
                "start_placement called twice".to_string(),
            ));
        }
        for i in 0..self.n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursor = self.offsets[..self.n].to_vec();
        self.targets = vec![NodeId(0); self.incidences as usize];
        self.placing = true;
        Ok(())
    }

    fn put(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        let c = self.cursor[u.index()];
        if c >= self.offsets[u.index() + 1] {
            return Err(GraphError::StreamingMismatch(format!(
                "pass 2 placed more incidences at {u} than pass 1 counted ({})",
                self.offsets[u.index() + 1] - self.offsets[u.index()]
            )));
        }
        self.targets[c as usize] = v;
        self.cursor[u.index()] = c + 1;
        Ok(())
    }

    /// Pass 2: places the undirected edge `(u, v)` into both endpoint rows.
    pub fn place_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if !self.placing {
            return Err(GraphError::StreamingMismatch(
                "place_edge called before start_placement".to_string(),
            ));
        }
        self.check_endpoints(u, v)?;
        self.put(u, v)?;
        self.put(v, u)
    }

    /// Pass 2: places the directed mention `u → v` into `u`'s row.
    pub fn place_arc(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if !self.placing {
            return Err(GraphError::StreamingMismatch(
                "place_arc called before start_placement".to_string(),
            ));
        }
        self.check_endpoints(u, v)?;
        self.put(u, v)
    }

    /// Finishes an undirected stream (built with
    /// [`StreamingBuilder::count_edge`] / [`StreamingBuilder::place_edge`]).
    ///
    /// Duplicate edges — repeated mentions of the same pair in either
    /// orientation — are **merged**, the exact semantics of
    /// [`GraphBuilder::add_edge_idempotent`] (pinned by a shared test). Both
    /// sides of a duplicate were placed symmetrically, so merging adjacent
    /// equal targets per sorted row keeps the graph symmetric.
    pub fn finish(self) -> Result<Graph> {
        self.into_graph(true, false)
    }

    /// Finishes a directed-mention stream (built with
    /// [`StreamingBuilder::count_arc`] / [`StreamingBuilder::place_arc`]).
    ///
    /// Duplicate mentions are **rejected** with
    /// [`GraphError::DuplicateEdge`], matching [`GraphBuilder::add_edge`],
    /// and every mention must have its reciprocal — an `u → v` without
    /// `v → u` is reported as [`GraphError::AsymmetricAdjacency`].
    pub fn finish_symmetric(self) -> Result<Graph> {
        self.into_graph(false, true)
    }

    fn into_graph(mut self, merge_duplicates: bool, check_symmetry: bool) -> Result<Graph> {
        if !self.placing {
            // A zero-pass build (no edges ever counted) is legal: finish an
            // empty placement so isolated-node graphs need no ceremony.
            self.start_placement()?;
        }
        let n = self.n;
        for i in 0..n {
            if self.cursor[i] != self.offsets[i + 1] {
                return Err(GraphError::StreamingMismatch(format!(
                    "pass 2 placed {} incidences at v{i} but pass 1 counted {}",
                    self.cursor[i] - self.offsets[i],
                    self.offsets[i + 1] - self.offsets[i]
                )));
            }
        }
        let mut offsets = self.offsets;
        let mut targets = self.targets;
        // Counting sort got every incidence into its row; a per-row sort (not
        // a global lexicographic one) establishes the layout invariant.
        for u in 0..n {
            targets[offsets[u] as usize..offsets[u + 1] as usize].sort_unstable();
        }
        if merge_duplicates {
            // Compact adjacent duplicates row by row, rebuilding offsets.
            let mut write = 0usize;
            let mut new_offsets = vec![0u32; n + 1];
            for u in 0..n {
                let mut prev: Option<NodeId> = None;
                for i in offsets[u] as usize..offsets[u + 1] as usize {
                    let t = targets[i];
                    if prev != Some(t) {
                        targets[write] = t;
                        write += 1;
                        prev = Some(t);
                    }
                }
                new_offsets[u + 1] = write as u32;
            }
            targets.truncate(write);
            offsets = new_offsets;
        } else {
            for u in 0..n {
                let row = &targets[offsets[u] as usize..offsets[u + 1] as usize];
                if let Some(w) = row.windows(2).find(|w| w[0] == w[1]) {
                    let (a, b) = (NodeId::new(u), w[0]);
                    let key = if a < b { (a, b) } else { (b, a) };
                    return Err(GraphError::DuplicateEdge(key.0, key.1));
                }
            }
        }
        if check_symmetry {
            for u in 0..n {
                for &v in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                    let back =
                        &targets[offsets[v.index()] as usize..offsets[v.index() + 1] as usize];
                    if back.binary_search(&NodeId::new(u)).is_err() {
                        return Err(GraphError::AsymmetricAdjacency(NodeId::new(u), v));
                    }
                }
            }
        }
        Ok(Graph::from_sorted_rows(offsets, targets))
    }
}

/// Builds a graph directly from an edge list over `n` nodes.
///
/// Convenience for tests and examples; duplicate edges and self loops are
/// rejected exactly as by [`GraphBuilder::add_edge`].
pub fn graph_from_edges(n: usize, edge_list: &[(usize, usize)]) -> Result<Graph> {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edge_list {
        b.add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_sum(), 0);
    }

    #[test]
    fn builder_rejects_self_loops() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn builder_rejects_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            b.add_edge(NodeId(1), NodeId(0)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn idempotent_insert_reports_novelty() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_idempotent(NodeId(0), NodeId(1)).unwrap());
        assert!(!b.add_edge_idempotent(NodeId(1), NodeId(0)).unwrap());
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = graph_from_edges(4, &[(0, 3), (0, 1), (2, 0), (1, 3)]).unwrap();
        let n0: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(n0, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.degree(NodeId(2)), 1);
        assert!(g.has_edge(NodeId(3), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn neighbor_slices_match_the_iterator_view() {
        let g = graph_from_edges(5, &[(0, 1), (0, 4), (1, 2), (2, 3), (3, 4), (1, 4)]).unwrap();
        for u in g.nodes() {
            let from_iter: Vec<NodeId> = g.neighbors(u).collect();
            assert_eq!(g.neighbor_slice(u), from_iter.as_slice());
            assert_eq!(g.neighbor_slice(u).len(), g.degree(u));
            assert!(g.neighbor_slice(u).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn edge_ids_are_stable_and_consistent() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        for (id, u, v) in g.edges_with_ids() {
            assert_eq!(g.endpoints(id), (u, v));
            assert_eq!(g.edge_id(u, v), Some(id));
            assert_eq!(g.edge_id(v, u), Some(id));
        }
    }

    #[test]
    fn edge_ids_are_lexicographic_ranks() {
        let g = graph_from_edges(5, &[(3, 4), (0, 2), (1, 2), (0, 4), (2, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted, "edges() must iterate in lexicographic order");
        for (i, (id, u, v)) in g.edges_with_ids().enumerate() {
            assert_eq!(id.index(), i);
            assert!(u < v);
            assert_eq!(g.endpoints(id), (u, v));
        }
    }

    #[test]
    fn neighbors_with_edges_agrees_with_edge_id() {
        let g = graph_from_edges(5, &[(0, 2), (2, 4), (1, 2), (0, 4)]).unwrap();
        for u in g.nodes() {
            for (v, e) in g.neighbors_with_edges(u) {
                assert_eq!(g.edge_id(u, v), Some(e));
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
    }

    #[test]
    fn non_edges_complement_edges() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let non = g.non_edges();
        assert_eq!(non.len(), 6 - 3);
        for &(u, v) in &non {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let keep: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let (sub, mapping) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(mapping, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn check_node_bounds() {
        let g = Graph::empty(2);
        assert!(g.check_node(NodeId(1)).is_ok());
        assert!(g.check_node(NodeId(2)).is_err());
    }

    #[test]
    fn memory_bytes_matches_the_layout_formula() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap();
        let (n, m) = (g.node_count(), g.edge_count());
        assert_eq!(g.memory_bytes(), 8 * n + 16 * m + 8);
        assert_eq!(Graph::empty(10).memory_bytes(), 8 * 10 + 8);
    }

    #[test]
    fn graph_serde_round_trips_via_edge_list() {
        let g = graph_from_edges(5, &[(0, 2), (2, 4), (1, 2), (0, 4)]).unwrap();
        let v = g.to_value();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        let back = Graph::from_value(&v).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn streaming_matches_in_memory_builder() {
        let edges = [(0usize, 3usize), (0, 1), (2, 0), (1, 3), (2, 4)];
        let reference = graph_from_edges(6, &edges).unwrap();
        let mut s = StreamingBuilder::new(6).unwrap();
        for &(u, v) in &edges {
            s.count_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        s.start_placement().unwrap();
        for &(u, v) in &edges {
            s.place_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let g = s.finish().unwrap();
        assert_eq!(g, reference);
    }

    #[test]
    fn streaming_and_idempotent_builder_share_dedupe_semantics() {
        // The pinned contract: a stream with duplicate mentions (in both
        // orientations) finishes to exactly the graph the in-memory builder
        // produces under `add_edge_idempotent`.
        let mentions = [(0usize, 1usize), (1, 0), (0, 1), (2, 1), (1, 2), (3, 0)];
        let mut b = GraphBuilder::new(4);
        for &(u, v) in &mentions {
            b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))
                .unwrap();
        }
        let reference = b.build();
        let mut s = StreamingBuilder::new(4).unwrap();
        for &(u, v) in &mentions {
            s.count_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        s.start_placement().unwrap();
        for &(u, v) in &mentions {
            s.place_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let g = s.finish().unwrap();
        assert_eq!(g, reference);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn streaming_symmetric_mode_accepts_reciprocal_arcs() {
        let arcs = [(0usize, 1usize), (1, 0), (1, 2), (2, 1)];
        let mut s = StreamingBuilder::new(3).unwrap();
        for &(u, v) in &arcs {
            s.count_arc(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        s.start_placement().unwrap();
        for &(u, v) in &arcs {
            s.place_arc(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let g = s.finish_symmetric().unwrap();
        assert_eq!(g, graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap());
    }

    #[test]
    fn streaming_symmetric_mode_rejects_missing_reciprocal() {
        let mut s = StreamingBuilder::new(3).unwrap();
        s.count_arc(NodeId(0), NodeId(1)).unwrap();
        s.start_placement().unwrap();
        s.place_arc(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            s.finish_symmetric(),
            Err(GraphError::AsymmetricAdjacency(NodeId(0), NodeId(1)))
        );
    }

    #[test]
    fn streaming_symmetric_mode_rejects_duplicate_mentions() {
        let mut s = StreamingBuilder::new(3).unwrap();
        for _ in 0..2 {
            s.count_arc(NodeId(0), NodeId(1)).unwrap();
        }
        s.count_arc(NodeId(1), NodeId(0)).unwrap();
        s.start_placement().unwrap();
        for _ in 0..2 {
            s.place_arc(NodeId(0), NodeId(1)).unwrap();
        }
        s.place_arc(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(
            s.finish_symmetric(),
            Err(GraphError::DuplicateEdge(NodeId(0), NodeId(1)))
        );
    }

    #[test]
    fn streaming_detects_pass_disagreement() {
        // Counted two edges, placed one: finish must refuse.
        let mut s = StreamingBuilder::new(3).unwrap();
        s.count_edge(NodeId(0), NodeId(1)).unwrap();
        s.count_edge(NodeId(1), NodeId(2)).unwrap();
        s.start_placement().unwrap();
        s.place_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(s.finish(), Err(GraphError::StreamingMismatch(_))));
        // Placed an edge never counted: the row overflows immediately.
        let mut s = StreamingBuilder::new(3).unwrap();
        s.count_edge(NodeId(0), NodeId(1)).unwrap();
        s.start_placement().unwrap();
        s.place_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            s.place_edge(NodeId(0), NodeId(2)),
            Err(GraphError::StreamingMismatch(_))
        ));
    }

    #[test]
    fn streaming_handles_isolated_nodes_and_empty_streams() {
        let s = StreamingBuilder::new(4).unwrap();
        let g = s.finish().unwrap();
        assert_eq!(g, Graph::empty(4));
        let mut s = StreamingBuilder::new(5).unwrap();
        s.count_edge(NodeId(1), NodeId(3)).unwrap();
        s.start_placement().unwrap();
        s.place_edge(NodeId(1), NodeId(3)).unwrap();
        let g = s.finish().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.degree(NodeId(4)), 0);
    }

    #[test]
    fn streaming_rejects_oversized_node_counts() {
        assert!(matches!(
            StreamingBuilder::new(u32::MAX as usize + 2),
            Err(GraphError::TooLarge { what: "nodes", .. })
        ));
    }
}
