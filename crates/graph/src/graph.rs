//! Undirected simple graph stored in CSR (compressed sparse row) layout.
//!
//! This is the communication graph of the paper's model: nodes are processors,
//! edges are bidirectional, non-interfering links. The structure is immutable
//! once built (networks do not change during a run), which lets the simulator
//! and every protocol share it behind a plain reference — or, at campaign
//! scale, behind one `Arc<Graph>` borrowed by thousands of runs.
//!
//! The CSR layout keeps the whole topology in three flat arrays:
//!
//! * `offsets[u] .. offsets[u + 1]` delimits node `u`'s row,
//! * `targets[row]` holds the neighbours, sorted by identity,
//! * `edge_ids[row]` holds the connecting edge identifier in parallel.
//!
//! Compared to the former `Vec<Vec<(NodeId, EdgeId)>>` adjacency this is one
//! allocation instead of `n + 1`, cache-linear neighbour iteration, and —
//! crucially for the executor layer — neighbour lists are borrowable as plain
//! `&[NodeId]` slices ([`Graph::neighbor_slice`]), so no runtime ever has to
//! re-materialise per-node neighbour vectors before a run.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Stable identifier of an undirected edge, a dense index into the edge table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// An immutable undirected simple graph (no self loops, no parallel edges) in
/// CSR layout.
///
/// Nodes are the dense range `0..node_count()`; each CSR row is kept sorted
/// by neighbour identity so iteration order is deterministic, which in turn
/// keeps the discrete-event simulator reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// Row boundaries: node `u`'s neighbours live at `offsets[u]..offsets[u+1]`.
    /// Always `n + 1` entries with `offsets[0] == 0` and `offsets[n] == 2·|E|`.
    offsets: Vec<usize>,
    /// Neighbour identities, sorted within each row. Length `2·|E|`.
    targets: Vec<NodeId>,
    /// Edge identifier of each `(row node, target)` incidence, parallel to
    /// `targets`. Length `2·|E|`.
    edge_ids: Vec<EdgeId>,
    /// Edge table: `edges[e] = (u, v)` with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            edge_ids: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identities `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Iterator over all edges together with their stable identifiers.
    pub fn edges_with_ids(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i), u, v))
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The CSR row bounds of node `u`.
    #[inline]
    fn row(&self, u: NodeId) -> std::ops::Range<usize> {
        self.offsets[u.index()]..self.offsets[u.index() + 1]
    }

    /// Sorted neighbours of `u` as a borrowable slice. This is the zero-copy
    /// view the executor backends hand to protocol factories: it lives as
    /// long as the graph, so a shared `Arc<Graph>` serves every run without
    /// per-run adjacency re-materialisation.
    #[inline]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.row(u)]
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbor_slice(u).iter().copied()
    }

    /// Sorted neighbours of `u` together with the connecting edge identifiers.
    pub fn neighbors_with_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let row = self.row(u);
        self.targets[row.clone()]
            .iter()
            .copied()
            .zip(self.edge_ids[row].iter().copied())
    }

    /// Degree of `u` in the graph (number of incident links).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.row(u).len()
    }

    /// Maximum degree over all nodes, `0` for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(NodeId(u)))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes, `0` for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(NodeId(u)))
            .min()
            .unwrap_or(0)
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// The identifier of the edge `(u, v)` if it exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        let row = self.row(u);
        self.targets[row.clone()]
            .binary_search(&v)
            .ok()
            .map(|pos| self.edge_ids[row.start + pos])
    }

    /// Checks that `u` is a valid node of this graph.
    pub fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count(),
            })
        }
    }

    /// Sum of all degrees; always `2·|E|`.
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Returns the complement set of edges (pairs of distinct nodes that are
    /// *not* linked). Used by tests and by crafted worst-case generators.
    pub fn non_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in 0..self.node_count() {
            for v in (u + 1)..self.node_count() {
                if !self.has_edge(NodeId(u), NodeId(v)) {
                    out.push((NodeId(u), NodeId(v)));
                }
            }
        }
        out
    }

    /// Builds the subgraph induced by `keep` (nodes are re-indexed densely in
    /// ascending order of their original identity). Returns the subgraph and
    /// the mapping `new index -> old identity`.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>) {
        let old_of_new: Vec<NodeId> = keep.iter().copied().collect();
        let mut new_of_old = vec![usize::MAX; self.node_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new;
        }
        let mut builder = GraphBuilder::new(old_of_new.len());
        for &(u, v) in &self.edges {
            if keep.contains(&u) && keep.contains(&v) {
                builder
                    .add_edge(NodeId(new_of_old[u.index()]), NodeId(new_of_old[v.index()]))
                    .expect("induced edges are valid and unique");
            }
        }
        (builder.build(), old_of_new)
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder enforces the model's structural constraints (no self loops, no
/// parallel edges, identifiers in range) and assembles the CSR arrays directly
/// on [`GraphBuilder::build`] — no intermediate per-node vectors.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes of the graph being built.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the undirected edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Errors on out-of-range endpoints, self loops and duplicates.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.n,
            });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.edges.insert(key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        Ok(())
    }

    /// Adds the edge if it is not already present; ignores duplicates but still
    /// rejects self loops and out-of-range endpoints.
    pub fn add_edge_idempotent(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        if self.has_edge(u, v) {
            // Still validate endpoints so silent no-ops cannot hide bugs.
            if u.index() >= self.n || v.index() >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: if u.index() >= self.n { u } else { v },
                    node_count: self.n,
                });
            }
            return Ok(false);
        }
        self.add_edge(u, v)?;
        Ok(true)
    }

    /// Finalises the graph, assembling the CSR arrays in two passes: a degree
    /// count, then a single placement sweep over the lexicographically sorted
    /// edge set.
    ///
    /// Each row comes out sorted without a per-row sort: for row `w`, the
    /// neighbours `x < w` arrive from edges `(x, w)` in increasing `x` (every
    /// such edge precedes any `(w, ·)` edge lexicographically), and the
    /// neighbours `y > w` arrive from edges `(w, y)` in increasing `y`.
    pub fn build(self) -> Graph {
        let n = self.n;
        let m = self.edges.len();
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![NodeId(0); 2 * m];
        let mut edge_ids = vec![EdgeId(0); 2 * m];
        let mut cursor = offsets.clone();
        let mut edges = Vec::with_capacity(m);
        for (i, (u, v)) in self.edges.into_iter().enumerate() {
            let cu = cursor[u.index()];
            targets[cu] = v;
            edge_ids[cu] = EdgeId(i);
            cursor[u.index()] += 1;
            let cv = cursor[v.index()];
            targets[cv] = u;
            edge_ids[cv] = EdgeId(i);
            cursor[v.index()] += 1;
            edges.push((u, v));
        }
        Graph {
            offsets,
            targets,
            edge_ids,
            edges,
        }
    }
}

/// Builds a graph directly from an edge list over `n` nodes.
///
/// Convenience for tests and examples; duplicate edges and self loops are
/// rejected exactly as by [`GraphBuilder::add_edge`].
pub fn graph_from_edges(n: usize, edge_list: &[(usize, usize)]) -> Result<Graph> {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edge_list {
        b.add_edge(NodeId(u), NodeId(v))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_sum(), 0);
    }

    #[test]
    fn builder_rejects_self_loops() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn builder_rejects_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            b.add_edge(NodeId(1), NodeId(0)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn idempotent_insert_reports_novelty() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_idempotent(NodeId(0), NodeId(1)).unwrap());
        assert!(!b.add_edge_idempotent(NodeId(1), NodeId(0)).unwrap());
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = graph_from_edges(4, &[(0, 3), (0, 1), (2, 0), (1, 3)]).unwrap();
        let n0: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(n0, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.degree(NodeId(2)), 1);
        assert!(g.has_edge(NodeId(3), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn neighbor_slices_match_the_iterator_view() {
        let g = graph_from_edges(5, &[(0, 1), (0, 4), (1, 2), (2, 3), (3, 4), (1, 4)]).unwrap();
        for u in g.nodes() {
            let from_iter: Vec<NodeId> = g.neighbors(u).collect();
            assert_eq!(g.neighbor_slice(u), from_iter.as_slice());
            assert_eq!(g.neighbor_slice(u).len(), g.degree(u));
            assert!(g.neighbor_slice(u).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn edge_ids_are_stable_and_consistent() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        for (id, u, v) in g.edges_with_ids() {
            assert_eq!(g.endpoints(id), (u, v));
            assert_eq!(g.edge_id(u, v), Some(id));
            assert_eq!(g.edge_id(v, u), Some(id));
        }
    }

    #[test]
    fn neighbors_with_edges_agrees_with_edge_id() {
        let g = graph_from_edges(5, &[(0, 2), (2, 4), (1, 2), (0, 4)]).unwrap();
        for u in g.nodes() {
            for (v, e) in g.neighbors_with_edges(u) {
                assert_eq!(g.edge_id(u, v), Some(e));
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
    }

    #[test]
    fn non_edges_complement_edges() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let non = g.non_edges();
        assert_eq!(non.len(), 6 - 3);
        for &(u, v) in &non {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let keep: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let (sub, mapping) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(mapping, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn check_node_bounds() {
        let g = Graph::empty(2);
        assert!(g.check_node(NodeId(1)).is_ok());
        assert!(g.check_node(NodeId(2)).is_err());
    }
}
