//! Classic sequential graph algorithms.
//!
//! These are the centralized helpers the substrates and the verification layer
//! rely on: traversal, connectivity, components, diameter, articulation points
//! and spanning-tree extraction. The distributed counterparts live in
//! `mdst-spanning`; the functions here are the ground truth they are tested
//! against.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::tree::RootedTree;
use crate::Result;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable nodes get `None`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    if source.index() >= g.node_count() {
        return dist;
    }
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have a distance");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes in BFS order from `source` (only the reachable ones).
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.node_count()];
    if source.index() >= g.node_count() {
        return order;
    }
    seen[source.index()] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Nodes in (iterative, neighbour-sorted) DFS preorder from `source`.
pub fn dfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.node_count()];
    if source.index() >= g.node_count() {
        return order;
    }
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u.index()] {
            continue;
        }
        seen[u.index()] = true;
        order.push(u);
        // Push neighbours in reverse so the smallest identity is visited first.
        let mut nb: Vec<NodeId> = g.neighbors(u).collect();
        nb.reverse();
        for v in nb {
            if !seen[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_order(g, NodeId(0)).len() == g.node_count()
}

/// Connected components; each component is a sorted list of nodes and the
/// components are sorted by their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut comp = vec![usize::MAX; g.node_count()];
    let mut components = Vec::new();
    for start in 0..g.node_count() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([NodeId::new(start)]);
        comp[start] = id;
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for v in g.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Eccentricity of `source` (greatest BFS distance to any reachable node).
pub fn eccentricity(g: &Graph, source: NodeId) -> usize {
    bfs_distances(g, source)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Diameter of a connected graph (error when disconnected).
pub fn diameter(g: &Graph) -> Result<usize> {
    if g.node_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !is_connected(g) {
        return Err(GraphError::Disconnected);
    }
    Ok(g.nodes().map(|u| eccentricity(g, u)).max().unwrap_or(0))
}

/// Articulation points (cut vertices) of the graph, sorted by identity.
///
/// A node `v` is an articulation point when removing it disconnects its
/// component. The MDegST optimum must contain every edge incident to bridges,
/// so articulation structure drives the lower bounds in `mdst-core::bounds`.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut tin = vec![0usize; n];
    let mut low = vec![0usize; n];
    let mut is_art = vec![false; n];
    let mut timer = 0usize;

    // Iterative Tarjan-style DFS to avoid recursion-depth limits on long paths.
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        parent: Option<usize>,
        next_neighbor: usize,
        child_count: usize,
    }

    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![Frame {
            node: start,
            parent: None,
            next_neighbor: 0,
            child_count: 0,
        }];
        visited[start] = true;
        tin[start] = timer;
        low[start] = timer;
        timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            let neighbors: Vec<NodeId> = g.neighbors(NodeId::new(u)).collect();
            if frame.next_neighbor < neighbors.len() {
                let v = neighbors[frame.next_neighbor].index();
                frame.next_neighbor += 1;
                if Some(v) == frame.parent {
                    continue;
                }
                if visited[v] {
                    low[u] = low[u].min(tin[v]);
                } else {
                    visited[v] = true;
                    tin[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    frame.child_count += 1;
                    stack.push(Frame {
                        node: v,
                        parent: Some(u),
                        next_neighbor: 0,
                        child_count: 0,
                    });
                }
            } else {
                // Finished u: propagate low-link to the parent frame.
                let finished = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node;
                    low[p] = low[p].min(low[finished.node]);
                    if low[finished.node] >= tin[p] && parent_frame.parent.is_some() {
                        is_art[p] = true;
                    }
                } else {
                    // finished is a DFS root.
                    if finished.child_count >= 2 {
                        is_art[finished.node] = true;
                    }
                }
                // Root articulation rule handled above; nothing else to do.
                if let Some(parent_frame) = stack.last() {
                    if parent_frame.parent.is_none() {
                        // parent is a DFS root; its articulation status depends on
                        // child_count which is tracked in its own frame.
                    }
                }
            }
        }
    }
    (0..n).filter(|&u| is_art[u]).map(NodeId::new).collect()
}

/// Bridges of the graph (edges whose removal disconnects their component),
/// returned as `(u, v)` with `u < v`, sorted.
pub fn bridges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut tin = vec![0usize; n];
    let mut low = vec![0usize; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        parent_edge: Option<(usize, usize)>,
        next_neighbor: usize,
    }

    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        tin[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            node: start,
            parent_edge: None,
            next_neighbor: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            let neighbors: Vec<NodeId> = g.neighbors(NodeId::new(u)).collect();
            if frame.next_neighbor < neighbors.len() {
                let v = neighbors[frame.next_neighbor].index();
                frame.next_neighbor += 1;
                if frame.parent_edge.map(|(p, _)| p) == Some(v) {
                    continue;
                }
                if visited[v] {
                    low[u] = low[u].min(tin[v]);
                } else {
                    visited[v] = true;
                    tin[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent_edge: Some((u, v)),
                        next_neighbor: 0,
                    });
                }
            } else {
                let finished = *frame;
                stack.pop();
                if let Some((p, c)) = finished.parent_edge {
                    low[p] = low[p].min(low[c]);
                    if low[c] > tin[p] {
                        let (a, b) = if p < c { (p, c) } else { (c, p) };
                        out.push((NodeId::new(a), NodeId::new(b)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Extracts a BFS spanning tree of a connected graph rooted at `root`.
pub fn bfs_tree(g: &Graph, root: NodeId) -> Result<RootedTree> {
    spanning_tree_from_order(g, root, |g, root| {
        let mut parent = vec![None; g.node_count()];
        let mut seen = vec![false; g.node_count()];
        seen[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    })
}

/// Extracts a DFS spanning tree of a connected graph rooted at `root`.
pub fn dfs_tree(g: &Graph, root: NodeId) -> Result<RootedTree> {
    spanning_tree_from_order(g, root, |g, root| {
        let mut parent = vec![None; g.node_count()];
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(u) = stack.pop() {
            let mut nb: Vec<NodeId> = g.neighbors(u).collect();
            nb.reverse();
            for v in nb {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent[v.index()] = Some(u);
                    stack.push(v);
                }
            }
        }
        parent
    })
}

/// Extracts a uniformly shuffled random spanning tree of a connected graph
/// (randomised Kruskal: edges are shuffled and inserted when they join two
/// different components).
pub fn random_spanning_tree(g: &Graph, root: NodeId, seed: u64) -> Result<RootedTree> {
    g.check_node(root)?;
    if !is_connected(g) {
        return Err(GraphError::Disconnected);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    edges.shuffle(&mut rng);
    let mut dsu = DisjointSet::new(g.node_count());
    let mut tree_edges = Vec::with_capacity(g.node_count().saturating_sub(1));
    for (u, v) in edges {
        if dsu.union(u.index(), v.index()) {
            tree_edges.push((u, v));
        }
    }
    RootedTree::from_edges(g.node_count(), root, &tree_edges)
}

/// Extracts the spanning tree that greedily maximises the degree of `root`
/// (attach every neighbour of the highest-degree node first). Used to seed
/// deliberately bad initial trees for experiment E7.
pub fn greedy_high_degree_tree(g: &Graph, root: NodeId) -> Result<RootedTree> {
    g.check_node(root)?;
    if !is_connected(g) {
        return Err(GraphError::Disconnected);
    }
    let mut parent = vec![None; g.node_count()];
    let mut in_tree = vec![false; g.node_count()];
    in_tree[root.index()] = true;
    // Repeatedly take the in-tree node with the most not-yet-attached
    // neighbours and attach all of them (a star-greedy construction that tends
    // to produce high-degree hubs).
    loop {
        let mut best: Option<(usize, NodeId)> = None;
        for u in g.nodes() {
            if !in_tree[u.index()] {
                continue;
            }
            let gain = g.neighbors(u).filter(|v| !in_tree[v.index()]).count();
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, u));
            }
        }
        let Some((_, hub)) = best else { break };
        let to_attach: Vec<NodeId> = g.neighbors(hub).filter(|v| !in_tree[v.index()]).collect();
        for v in to_attach {
            in_tree[v.index()] = true;
            parent[v.index()] = Some(hub);
        }
    }
    if in_tree.iter().any(|&b| !b) {
        return Err(GraphError::Disconnected);
    }
    RootedTree::from_parents(root, parent)
}

fn spanning_tree_from_order(
    g: &Graph,
    root: NodeId,
    builder: impl Fn(&Graph, NodeId) -> Vec<Option<NodeId>>,
) -> Result<RootedTree> {
    g.check_node(root)?;
    if g.node_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !is_connected(g) {
        return Err(GraphError::Disconnected);
    }
    let parent = builder(g, root);
    RootedTree::from_parents(root, parent)
}

/// Simple union–find used by the random spanning-tree extraction.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of the set containing `x` (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::graph_from_edges;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_unreachable() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn connectivity_and_components() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(3), NodeId(4)]);
        assert!(is_connected(&generators::cycle(6).unwrap()));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(6).unwrap()).unwrap(), 5);
        assert_eq!(diameter(&generators::cycle(6).unwrap()).unwrap(), 3);
        assert_eq!(diameter(&generators::complete(6).unwrap()).unwrap(), 1);
        assert_eq!(diameter(&generators::star(6).unwrap()).unwrap(), 2);
        assert!(diameter(&Graph::empty(3)).is_err());
    }

    #[test]
    fn dfs_and_bfs_visit_everything_once() {
        let g = generators::grid(3, 3).unwrap();
        let bfs = bfs_order(&g, NodeId(0));
        let dfs = dfs_order(&g, NodeId(0));
        assert_eq!(bfs.len(), 9);
        assert_eq!(dfs.len(), 9);
        let mut b = bfs.clone();
        b.sort_unstable();
        b.dedup();
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn articulation_points_of_path_are_interior() {
        let g = generators::path(5).unwrap();
        let arts = articulation_points(&g);
        assert_eq!(arts, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn articulation_points_of_cycle_and_clique_are_empty() {
        assert!(articulation_points(&generators::cycle(7).unwrap()).is_empty());
        assert!(articulation_points(&generators::complete(5).unwrap()).is_empty());
    }

    #[test]
    fn articulation_point_of_two_triangles() {
        // Two triangles sharing node 2.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        assert_eq!(articulation_points(&g), vec![NodeId(2)]);
    }

    #[test]
    fn bridges_of_path_are_all_edges() {
        let g = generators::path(4).unwrap();
        assert_eq!(
            bridges(&g),
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3))
            ]
        );
        assert!(bridges(&generators::cycle(4).unwrap()).is_empty());
    }

    #[test]
    fn bfs_tree_is_shortest_path_tree() {
        let g = generators::grid(3, 3).unwrap();
        let t = bfs_tree(&g, NodeId(0)).unwrap();
        assert!(t.is_spanning_tree_of(&g));
        let dist = bfs_distances(&g, NodeId(0));
        for u in g.nodes() {
            assert_eq!(t.depth(u), dist[u.index()].unwrap());
        }
    }

    #[test]
    fn dfs_tree_spans() {
        let g = generators::hypercube(3).unwrap();
        let t = dfs_tree(&g, NodeId(0)).unwrap();
        assert!(t.is_spanning_tree_of(&g));
        assert_eq!(t.node_count(), 8);
    }

    #[test]
    fn random_spanning_tree_is_valid_and_seeded() {
        let g = generators::gnp_connected(20, 0.3, 5).unwrap();
        let a = random_spanning_tree(&g, NodeId(0), 11).unwrap();
        let b = random_spanning_tree(&g, NodeId(0), 11).unwrap();
        assert_eq!(a, b);
        assert!(a.is_spanning_tree_of(&g));
    }

    #[test]
    fn spanning_tree_extraction_rejects_disconnected() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(bfs_tree(&g, NodeId(0)).is_err());
        assert!(dfs_tree(&g, NodeId(0)).is_err());
        assert!(random_spanning_tree(&g, NodeId(0), 1).is_err());
        assert!(greedy_high_degree_tree(&g, NodeId(0)).is_err());
    }

    #[test]
    fn greedy_tree_makes_high_degree_hub_on_complete_graph() {
        let g = generators::complete(8).unwrap();
        let t = greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert!(t.is_spanning_tree_of(&g));
        assert_eq!(t.max_degree(), 7, "greedy construction should build a star");
    }

    #[test]
    fn disjoint_set_union_find() {
        let mut dsu = DisjointSet::new(5);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert!(dsu.same(0, 2));
        assert!(!dsu.same(0, 4));
    }
}
