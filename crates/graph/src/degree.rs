//! Degree statistics helpers used when reporting experiment tables.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::tree::RootedTree;
use serde::{Deserialize, Serialize};

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of nodes the statistics cover.
    pub node_count: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of nodes attaining the maximum degree.
    pub max_count: usize,
    /// Number of leaves (degree-1 nodes).
    pub leaf_count: usize,
}

impl DegreeStats {
    /// Statistics of an explicit degree sequence.
    pub fn from_degrees(degrees: &[usize]) -> Self {
        let n = degrees.len();
        if n == 0 {
            return DegreeStats {
                node_count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                max_count: 0,
                leaf_count: 0,
            };
        }
        let min = *degrees.iter().min().unwrap();
        let max = *degrees.iter().max().unwrap();
        let sum: usize = degrees.iter().sum();
        DegreeStats {
            node_count: n,
            min,
            max,
            mean: sum as f64 / n as f64,
            max_count: degrees.iter().filter(|&&d| d == max).count(),
            leaf_count: degrees.iter().filter(|&&d| d == 1).count(),
        }
    }

    /// Degree statistics of a graph.
    pub fn of_graph(g: &Graph) -> Self {
        let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        Self::from_degrees(&degrees)
    }

    /// Tree-degree statistics of a rooted tree.
    pub fn of_tree(t: &RootedTree) -> Self {
        let degrees: Vec<usize> = (0..t.node_count())
            .map(|u| t.degree(NodeId::new(u)))
            .collect();
        Self::from_degrees(&degrees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.node_count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn star_graph_stats() {
        let g = generators::star(6).unwrap();
        let s = DegreeStats::of_graph(&g);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max_count, 1);
        assert_eq!(s.leaf_count, 5);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tree_stats_match_graph_stats_of_same_structure() {
        let g = generators::path(7).unwrap();
        let t = crate::algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let sg = DegreeStats::of_graph(&g);
        let st = DegreeStats::of_tree(&t);
        assert_eq!(sg, st);
    }
}
