//! # mdst-graph
//!
//! Graph and rooted-tree data structures used throughout the reproduction of
//! Blin & Butelle, *"The First Approximated Distributed Algorithm for the Minimum
//! Degree Spanning Tree Problem on General Graphs"*.
//!
//! The crate provides:
//!
//! * [`Graph`] — a simple undirected graph stored as adjacency lists with stable
//!   edge identifiers, the shape the paper's network model assumes
//!   (point-to-point bidirectional links, no self loops, no multi-edges).
//! * [`RootedTree`] — a rooted spanning tree represented with parent pointers and
//!   children sets, the structure the distributed algorithm maintains and
//!   rewires round after round.
//! * [`generators`] — deterministic and seeded random graph families used by the
//!   experiment harness (complete graphs for the Korach–Moran–Zaks comparison,
//!   Erdős–Rényi graphs for the complexity sweeps, crafted worst cases …).
//! * [`algorithms`] — the classic sequential graph algorithms the substrates and
//!   the verification layer need (BFS/DFS, connectivity, components, diameter,
//!   articulation points, spanning-tree extraction).
//! * [`degree`] — degree statistics helpers used when reporting experiment
//!   tables.
//! * [`dot`] — Graphviz DOT export for debugging and for rendering the paper's
//!   two illustrative figures.
//!
//! Everything in this crate is purely sequential and deterministic; the
//! distributed machinery lives in `mdst-netsim` and `mdst-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod degree;
pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod node;
pub mod tree;

pub use error::GraphError;
pub use graph::{EdgeId, Graph, GraphBuilder, StreamingBuilder};
pub use node::NodeId;
pub use tree::RootedTree;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
