//! Graph families used by the experiments.
//!
//! The paper evaluates nothing empirically, so the experiment harness needs
//! its own workloads. The families below cover the cases the paper reasons
//! about analytically:
//!
//! * [`complete`] graphs — the Korach–Moran–Zaks lower-bound comparison (E6);
//! * [`gnp`] Erdős–Rényi graphs — the message/time scaling sweeps (E1/E2);
//! * [`star_with_leaf_edges`] — the worst case the complexity analysis cites
//!   (initial spanning tree of degree `n − 1` that can be improved down to a
//!   small degree);
//! * structured topologies (grid, hypercube, wheel, cycle, caterpillar,
//!   barbell, lollipop, complete bipartite, Petersen) — the topology sweep of
//!   example `topology_sweep` and experiment E7;
//! * [`random_connected`] — property tests on arbitrary connected graphs.
//!
//! Every random generator takes an explicit seed so experiment tables are
//! reproducible run to run.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::node::NodeId;
use crate::Result;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Result<Graph> {
    require(n >= 1, "complete graph needs at least one node")?;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
    }
    Ok(b.build())
}

/// The path `P_n` (`0 – 1 – … – n−1`).
pub fn path(n: usize) -> Result<Graph> {
    require(n >= 1, "path needs at least one node")?;
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(NodeId::new(u - 1), NodeId::new(u))?;
    }
    Ok(b.build())
}

/// The cycle `C_n` (requires `n ≥ 3`).
pub fn cycle(n: usize) -> Result<Graph> {
    require(n >= 3, "cycle needs at least three nodes")?;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(NodeId::new(u), NodeId::new((u + 1) % n))?;
    }
    Ok(b.build())
}

/// The star `S_{n−1}`: node 0 linked to every other node.
pub fn star(n: usize) -> Result<Graph> {
    require(n >= 2, "star needs at least two nodes")?;
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(NodeId(0), NodeId::new(u))?;
    }
    Ok(b.build())
}

/// The wheel `W_n`: a cycle on nodes `1..n` plus a hub (node 0) linked to all.
pub fn wheel(n: usize) -> Result<Graph> {
    require(n >= 4, "wheel needs at least four nodes")?;
    let mut b = GraphBuilder::new(n);
    let rim = n - 1;
    for i in 0..rim {
        let u = 1 + i;
        let v = 1 + (i + 1) % rim;
        b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))?;
        b.add_edge(NodeId(0), NodeId::new(u))?;
    }
    Ok(b.build())
}

/// The star on `n` nodes augmented with a cycle through the leaves.
///
/// This is the canonical worst case for the algorithm's round count: any
/// spanning-tree construction that picks the star (degree `n − 1`) forces the
/// improvement loop to run roughly `n` rounds before reaching the
/// Hamiltonian-path-like optimum of degree 2.
pub fn star_with_leaf_edges(n: usize) -> Result<Graph> {
    require(n >= 4, "star with leaf edges needs at least four nodes")?;
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(NodeId(0), NodeId::new(u))?;
    }
    for u in 1..n - 1 {
        b.add_edge(NodeId::new(u), NodeId::new(u + 1))?;
    }
    Ok(b.build())
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Result<Graph> {
    require(rows >= 1 && cols >= 1, "grid needs positive dimensions")?;
    let idx = |r: usize, c: usize| NodeId::new(r * cols + c);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1))?;
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c))?;
            }
        }
    }
    Ok(b.build())
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: usize) -> Result<Graph> {
    require(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20",
    )?;
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    Ok(b.build())
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b_: usize) -> Result<Graph> {
    require(a >= 1 && b_ >= 1, "both sides of K_{a,b} must be non-empty")?;
    let mut b = GraphBuilder::new(a + b_);
    for u in 0..a {
        for v in 0..b_ {
            b.add_edge(NodeId::new(u), NodeId::new(a + v))?;
        }
    }
    Ok(b.build())
}

/// The Petersen graph (10 nodes, 15 edges, 3-regular).
pub fn petersen() -> Result<Graph> {
    let mut b = GraphBuilder::new(10);
    for u in 0..5 {
        // Outer pentagon.
        b.add_edge(NodeId(u), NodeId((u + 1) % 5))?;
        // Spokes.
        b.add_edge(NodeId(u), NodeId(u + 5))?;
        // Inner pentagram.
        b.add_edge(NodeId(5 + u), NodeId(5 + (u + 2) % 5))?;
    }
    Ok(b.build())
}

/// A complete binary tree on `n` nodes (heap indexing) with `extra` additional
/// random non-tree edges, seeded.
pub fn binary_tree_plus(n: usize, extra: usize, seed: u64) -> Result<Graph> {
    require(n >= 1, "binary tree needs at least one node")?;
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(NodeId::new(u), NodeId::new((u - 1) / 2))?;
    }
    add_random_extra_edges(&mut b, extra, seed)?;
    Ok(b.build())
}

/// A caterpillar: a spine path of `spine` nodes, each spine node carrying
/// `legs` pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph> {
    require(spine >= 1, "caterpillar needs a non-empty spine")?;
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(NodeId::new(s - 1), NodeId::new(s))?;
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(NodeId::new(s), NodeId::new(spine + s * legs + l))?;
        }
    }
    Ok(b.build())
}

/// A barbell: two cliques of size `k` joined by a path of `bridge` nodes.
pub fn barbell(k: usize, bridge: usize) -> Result<Graph> {
    require(k >= 2, "barbell cliques need at least two nodes")?;
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(NodeId::new(u), NodeId::new(v))?;
            b.add_edge(NodeId::new(k + bridge + u), NodeId::new(k + bridge + v))?;
        }
    }
    // Path through the bridge nodes, attached to one node of each clique.
    let mut prev = NodeId::new(k - 1);
    for i in 0..bridge {
        let cur = NodeId::new(k + i);
        b.add_edge(prev, cur)?;
        prev = cur;
    }
    b.add_edge(prev, NodeId::new(k + bridge))?;
    Ok(b.build())
}

/// A lollipop: a clique of size `k` with a path of `tail` nodes hanging off it.
pub fn lollipop(k: usize, tail: usize) -> Result<Graph> {
    require(k >= 2, "lollipop clique needs at least two nodes")?;
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
    }
    let mut prev = NodeId::new(k - 1);
    for i in 0..tail {
        let cur = NodeId::new(k + i);
        b.add_edge(prev, cur)?;
        prev = cur;
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, p)`: every pair is linked independently with probability
/// `p`. The result may be disconnected; use [`gnp_connected`] when the
/// experiment needs a connected network.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph> {
    require(n >= 1, "G(n,p) needs at least one node")?;
    require(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]",
    )?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: a uniform random
/// spanning tree (random Prüfer-like attachment) is inserted first and the
/// remaining pairs are sampled with probability `p`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Result<Graph> {
    require(n >= 1, "G(n,p) needs at least one node")?;
    require(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]",
    )?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    insert_random_spanning_tree(&mut b, &mut rng)?;
    for u in 0..n {
        for v in (u + 1)..n {
            if !b.has_edge(NodeId::new(u), NodeId::new(v)) && rng.gen::<f64>() < p {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    Ok(b.build())
}

/// A random geometric graph: `n` points in the unit square, linked when their
/// Euclidean distance is below `radius`, made connected by adding a random
/// spanning tree of the points in left-to-right order.
pub fn random_geometric_connected(n: usize, radius: f64, seed: u64) -> Result<Graph> {
    require(n >= 1, "geometric graph needs at least one node")?;
    require(radius > 0.0, "radius must be positive")?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if (dx * dx + dy * dy).sqrt() <= radius {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    // Connect by chaining points in x order (a plausible backbone).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &c| points[a].0.partial_cmp(&points[c].0).unwrap());
    for w in order.windows(2) {
        b.add_edge_idempotent(NodeId::new(w[0]), NodeId::new(w[1]))?;
    }
    Ok(b.build())
}

/// A random connected graph: a random spanning tree plus `extra` additional
/// random edges (deduplicated, so the result has at most `n − 1 + extra`
/// edges).
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Result<Graph> {
    require(n >= 1, "random connected graph needs at least one node")?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    insert_random_spanning_tree(&mut b, &mut rng)?;
    add_random_extra_edges(&mut b, extra, rng.gen())?;
    Ok(b.build())
}

/// A random graph whose *every* spanning tree has high degree: a "broom"
/// family where one cut vertex must carry many subtrees. Used by the
/// approximation-quality experiment to exercise instances with Δ* well above 2.
pub fn high_optimum(branches: usize, branch_len: usize) -> Result<Graph> {
    require(branches >= 2, "high_optimum needs at least two branches")?;
    require(branch_len >= 1, "branches must be non-empty")?;
    let n = 1 + branches * branch_len;
    let mut b = GraphBuilder::new(n);
    for br in 0..branches {
        let base = 1 + br * branch_len;
        b.add_edge(NodeId(0), NodeId::new(base))?;
        for i in 1..branch_len {
            b.add_edge(NodeId::new(base + i - 1), NodeId::new(base + i))?;
        }
    }
    Ok(b.build())
}

fn require(cond: bool, msg: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter(msg.to_string()))
    }
}

/// Inserts a uniform-ish random spanning tree into `b`: nodes are shuffled and
/// each node (after the first) attaches to a uniformly random earlier node.
fn insert_random_spanning_tree(b: &mut GraphBuilder, rng: &mut SmallRng) -> Result<()> {
    let n = b.node_count();
    if n <= 1 {
        return Ok(());
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge_idempotent(NodeId::new(order[i]), NodeId::new(order[j]))?;
    }
    Ok(())
}

/// Adds up to `extra` random non-tree edges (sampling with rejection, bounded
/// attempts so dense graphs cannot loop forever).
fn add_random_extra_edges(b: &mut GraphBuilder, extra: usize, seed: u64) -> Result<()> {
    let n = b.node_count();
    if n < 2 {
        return Ok(());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_edges = n * (n - 1) / 2;
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && b.edge_count() < max_edges && attempts < 20 * extra + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))? {
            added += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5).unwrap();
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.max_degree(), 2);
        assert_eq!(p.min_degree(), 1);
        let c = cycle(5).unwrap();
        assert_eq!(c.edge_count(), 5);
        assert_eq!(c.max_degree(), 2);
        assert_eq!(c.min_degree(), 2);
    }

    #[test]
    fn star_and_wheel_shapes() {
        let s = star(7).unwrap();
        assert_eq!(s.degree(NodeId(0)), 6);
        assert_eq!(s.edge_count(), 6);
        let w = wheel(7).unwrap();
        assert_eq!(w.degree(NodeId(0)), 6);
        assert_eq!(w.edge_count(), 12);
        for u in 1..7 {
            assert_eq!(w.degree(NodeId(u)), 3);
        }
    }

    #[test]
    fn star_with_leaf_edges_is_connected_and_has_ham_path() {
        let g = star_with_leaf_edges(8).unwrap();
        assert!(algorithms::is_connected(&g));
        assert_eq!(g.degree(NodeId(0)), 7);
        // Leaves 1..6 form a path, so a spanning tree of degree 2 exists.
        assert!(g.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(algorithms::is_connected(&g));
    }

    #[test]
    fn hypercube_is_regular() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(algorithms::is_connected(&g));
    }

    #[test]
    fn petersen_is_three_regular() {
        let g = petersen().unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 3);
        }
        assert!(algorithms::is_connected(&g));
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(4, 3).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15);
        assert!(algorithms::is_connected(&g));
        assert_eq!(g.degree(NodeId(1)), 2 + 3);
    }

    #[test]
    fn barbell_and_lollipop_connected() {
        let b = barbell(4, 2).unwrap();
        assert!(algorithms::is_connected(&b));
        assert_eq!(b.node_count(), 10);
        let l = lollipop(5, 3).unwrap();
        assert!(algorithms::is_connected(&l));
        assert_eq!(l.node_count(), 8);
        assert_eq!(l.degree(NodeId(7)), 1);
    }

    #[test]
    fn gnp_is_seed_deterministic() {
        let a = gnp(30, 0.2, 42).unwrap();
        let b = gnp(30, 0.2, 42).unwrap();
        let c = gnp(30, 0.2, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extreme_probabilities() {
        assert_eq!(gnp(10, 0.0, 1).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).unwrap().edge_count(), 45);
        assert!(gnp(10, 1.5, 1).is_err());
    }

    #[test]
    fn gnp_connected_is_connected_even_for_tiny_p() {
        for seed in 0..5 {
            let g = gnp_connected(40, 0.01, seed).unwrap();
            assert!(algorithms::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn random_connected_has_requested_size() {
        let g = random_connected(25, 30, 7).unwrap();
        assert!(algorithms::is_connected(&g));
        assert!(g.edge_count() >= 24);
        assert!(g.edge_count() <= 24 + 30);
    }

    #[test]
    fn random_geometric_is_connected() {
        for seed in 0..3 {
            let g = random_geometric_connected(30, 0.2, seed).unwrap();
            assert!(algorithms::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn binary_tree_plus_contains_tree() {
        let g = binary_tree_plus(15, 5, 3).unwrap();
        assert!(algorithms::is_connected(&g));
        assert!(g.edge_count() >= 14);
    }

    #[test]
    fn high_optimum_center_is_cut_vertex() {
        let g = high_optimum(5, 3).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(algorithms::is_connected(&g));
        assert_eq!(g.degree(NodeId(0)), 5);
        // Every spanning tree must use all five centre edges (they are bridges),
        // so the optimum degree is exactly 5.
        let arts = algorithms::articulation_points(&g);
        assert!(arts.contains(&NodeId(0)));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(cycle(2).is_err());
        assert!(star(1).is_err());
        assert!(wheel(3).is_err());
        assert!(hypercube(0).is_err());
        assert!(complete(0).is_err());
        assert!(gnp(0, 0.5, 1).is_err());
        assert!(high_optimum(1, 2).is_err());
        assert!(random_geometric_connected(5, 0.0, 1).is_err());
    }
}
