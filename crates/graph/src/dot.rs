//! Graphviz DOT export.
//!
//! Used for debugging protocol runs and for rendering the reproduction of the
//! paper's Figures 1 and 2 (tree edges are drawn solid, non-tree graph edges
//! dashed, the improving edge highlighted).

use crate::graph::Graph;
use crate::node::NodeId;
use crate::tree::RootedTree;
use std::fmt::Write as _;

/// Renders the graph alone.
pub fn graph_to_dot(g: &Graph) -> String {
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    for u in g.nodes() {
        let _ = writeln!(out, "  {};", u.index());
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Renders the graph with a spanning tree overlaid: tree edges solid and bold,
/// the remaining graph edges dashed, the root drawn as a double circle and
/// `highlight` edges (if any) drawn in a distinct style.
pub fn overlay_to_dot(g: &Graph, t: &RootedTree, highlight: &[(NodeId, NodeId)]) -> String {
    let is_highlighted = |u: NodeId, v: NodeId| {
        highlight
            .iter()
            .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
    };
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    let _ = writeln!(out, "  {} [shape=doublecircle];", t.root().index());
    for (u, v) in g.edges() {
        let style = if is_highlighted(u, v) {
            "[style=bold, color=red, penwidth=2]"
        } else if t.has_edge(u, v) {
            "[style=solid, penwidth=2]"
        } else {
            "[style=dashed, color=gray]"
        };
        let _ = writeln!(out, "  {} -- {} {};", u.index(), v.index(), style);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs_tree;
    use crate::generators;

    #[test]
    fn graph_dot_contains_all_edges() {
        let g = generators::cycle(4).unwrap();
        let dot = graph_to_dot(&g);
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("0 -- 3"));
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn overlay_marks_tree_and_highlight_edges() {
        let g = generators::complete(4).unwrap();
        let t = bfs_tree(&g, NodeId(0)).unwrap();
        let dot = overlay_to_dot(&g, &t, &[(NodeId(1), NodeId(2))]);
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("penwidth=2"));
    }
}
