//! Rooted spanning trees.
//!
//! The distributed algorithm maintains a rooted spanning tree: every node knows
//! its parent and its children, the root has no parent. A round of the
//! algorithm moves the root (path reversal), cuts the root's subtrees into
//! fragments and finally performs one edge exchange. [`RootedTree`] is the
//! centralized mirror of that structure; it is used to seed runs, to snapshot
//! the distributed state for verification and by the sequential baselines.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// A rooted tree over the node set `0..n`, stored as a parent array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[u] = Some(p)` for every non-root node, `None` for the root.
    parent: Vec<Option<NodeId>>,
    /// Children lists, kept sorted for deterministic iteration.
    children: Vec<Vec<NodeId>>,
}

impl RootedTree {
    /// Builds a rooted tree from a parent array.
    ///
    /// `parent[u]` must be `None` exactly for `root`, every other node must
    /// reach the root by following parents (no cycles, no disconnection).
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Result<Self> {
        let n = parent.len();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if root.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                node_count: n,
            });
        }
        if parent[root.index()].is_some() {
            return Err(GraphError::NotASpanningTree(format!(
                "root {root} has a parent"
            )));
        }
        let mut children = vec![Vec::new(); n];
        for (u, entry) in parent.iter().enumerate() {
            if let Some(p) = *entry {
                if p.index() >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: p,
                        node_count: n,
                    });
                }
                if p.index() == u {
                    return Err(GraphError::SelfLoop(NodeId::new(u)));
                }
                children[p.index()].push(NodeId::new(u));
            } else if u != root.index() {
                return Err(GraphError::NotASpanningTree(format!(
                    "node v{u} has no parent but is not the root"
                )));
            }
        }
        for list in &mut children {
            list.sort_unstable();
        }
        let tree = RootedTree {
            root,
            parent,
            children,
        };
        // Reject cycles / unreachable nodes: a BFS from the root must visit all.
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([root]);
        seen[root.index()] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &c in tree.children(u) {
                if seen[c.index()] {
                    return Err(GraphError::NotASpanningTree(format!(
                        "node {c} reached twice (cycle)"
                    )));
                }
                seen[c.index()] = true;
                count += 1;
                queue.push_back(c);
            }
        }
        if count != n {
            return Err(GraphError::NotASpanningTree(format!(
                "only {count} of {n} nodes reachable from the root"
            )));
        }
        Ok(tree)
    }

    /// Builds a rooted tree from an undirected edge list by orienting every
    /// edge away from `root` (BFS order). The edge list must form a tree on
    /// all `n` nodes.
    pub fn from_edges(n: usize, root: NodeId, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if edges.len() != n - 1 {
            return Err(GraphError::NotASpanningTree(format!(
                "a spanning tree on {n} nodes needs {} edges, got {}",
                n - 1,
                edges.len()
            )));
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u.index() >= n || v.index() >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: if u.index() >= n { u } else { v },
                    node_count: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
        if root.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                node_count: n,
            });
        }
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent[v.index()] = Some(u);
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        if count != n {
            return Err(GraphError::NotASpanningTree(format!(
                "edge list is disconnected: {count} of {n} nodes reachable"
            )));
        }
        Self::from_parents(root, parent)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The current root.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `u`, `None` for the root.
    #[inline]
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// Children of `u`, sorted by identity.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// Tree degree of `u`: number of tree edges incident to `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.children[u.index()].len() + usize::from(self.parent[u.index()].is_some())
    }

    /// Maximum tree degree (the quantity the algorithm minimises).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(NodeId::new(u)))
            .max()
            .unwrap_or(0)
    }

    /// All nodes whose tree degree equals the maximum, sorted by identity.
    pub fn max_degree_nodes(&self) -> Vec<NodeId> {
        let k = self.max_degree();
        (0..self.node_count())
            .map(NodeId::new)
            .filter(|&u| self.degree(u) == k)
            .collect()
    }

    /// The maximum-degree node of minimum identity (the node `p` the paper
    /// moves the root to). `None` only for the empty tree.
    pub fn max_degree_min_id(&self) -> Option<NodeId> {
        self.max_degree_nodes().into_iter().next()
    }

    /// Histogram of tree degrees: `hist[d]` = number of nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for u in 0..self.node_count() {
            hist[self.degree(NodeId::new(u))] += 1;
        }
        hist
    }

    /// Iterator over the `n − 1` undirected tree edges as `(child, parent)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count()).filter_map(move |u| self.parent[u].map(|p| (NodeId::new(u), p)))
    }

    /// Whether the undirected edge `(u, v)` is a tree edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.parent(u) == Some(v) || self.parent(v) == Some(u)
    }

    /// Whether every tree edge is an edge of `g` and the tree spans `g`.
    pub fn is_spanning_tree_of(&self, g: &Graph) -> bool {
        if self.node_count() != g.node_count() {
            return false;
        }
        self.edges().all(|(u, v)| g.has_edge(u, v))
    }

    /// Validates that this tree is a spanning tree of `g`, with a descriptive
    /// error when it is not.
    pub fn validate_against(&self, g: &Graph) -> Result<()> {
        if self.node_count() != g.node_count() {
            return Err(GraphError::NotASpanningTree(format!(
                "tree has {} nodes, graph has {}",
                self.node_count(),
                g.node_count()
            )));
        }
        for (u, v) in self.edges() {
            if !g.has_edge(u, v) {
                return Err(GraphError::NotASpanningTree(format!(
                    "tree edge ({u}, {v}) is not an edge of the graph"
                )));
            }
        }
        Ok(())
    }

    /// Nodes of the subtree rooted at `u` (including `u`), in BFS order.
    pub fn subtree(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            out.push(x);
            queue.extend(self.children(x).iter().copied());
        }
        out
    }

    /// Depth of `u` (number of tree edges from the root).
    pub fn depth(&self, u: NodeId) -> usize {
        let mut d = 0;
        let mut x = u;
        while let Some(p) = self.parent(x) {
            d += 1;
            x = p;
        }
        d
    }

    /// Height of the tree: maximum depth over all nodes.
    pub fn height(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.depth(NodeId::new(u)))
            .max()
            .unwrap_or(0)
    }

    /// The path from `u` up to the root, starting at `u` and ending at the root.
    pub fn path_to_root(&self, u: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut x = u;
        while let Some(p) = self.parent(x) {
            path.push(p);
            x = p;
        }
        path
    }

    /// The unique tree path between `u` and `v` (inclusive of both endpoints).
    pub fn path_between(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let up = self.path_to_root(u);
        let vp = self.path_to_root(v);
        let in_up: BTreeSet<NodeId> = up.iter().copied().collect();
        // Lowest common ancestor = first node of v's root path that also lies
        // on u's root path.
        let lca = *vp
            .iter()
            .find(|x| in_up.contains(x))
            .expect("both paths end at the root, so the intersection is non-empty");
        let mut path: Vec<NodeId> = up.iter().copied().take_while(|&x| x != lca).collect();
        path.push(lca);
        let tail: Vec<NodeId> = vp.iter().copied().take_while(|&x| x != lca).collect();
        path.extend(tail.into_iter().rev());
        path
    }

    /// Re-roots the tree at `new_root` by reversing the parent pointers along
    /// the path from the old root to `new_root` (the "path reversal" of
    /// §3.2.2 MoveRoot).
    pub fn reroot(&mut self, new_root: NodeId) -> Result<()> {
        if new_root.index() >= self.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: new_root,
                node_count: self.node_count(),
            });
        }
        if new_root == self.root {
            return Ok(());
        }
        // Walk up from new_root and flip every edge on the way.
        let path = self.path_to_root(new_root);
        for pair in path.windows(2) {
            let (child, par) = (pair[0], pair[1]);
            // par loses child `child`; child gains child `par`.
            self.children[par.index()].retain(|&c| c != child);
            self.children[child.index()].push(par);
            self.children[child.index()].sort_unstable();
            self.parent[par.index()] = Some(child);
        }
        self.parent[new_root.index()] = None;
        self.root = new_root;
        Ok(())
    }

    /// Performs the paper's edge exchange: removes the tree edge between
    /// `cut_parent` and its child `cut_child`, and adds the non-tree edge
    /// `(u, v)` where `u` lies in the subtree that was cut off (the fragment
    /// rooted at `cut_child`) and `v` lies in the rest of the tree.
    ///
    /// After the exchange `cut_parent`'s degree has dropped by one and the
    /// structure is again a spanning tree rooted at the original root (which
    /// must not be inside the cut fragment unless it is re-attached through
    /// `u`; the distributed algorithm always calls this with the root at
    /// `cut_parent`, which keeps the invariant trivially).
    pub fn exchange(
        &mut self,
        cut_parent: NodeId,
        cut_child: NodeId,
        u: NodeId,
        v: NodeId,
    ) -> Result<()> {
        if self.parent(cut_child) != Some(cut_parent) {
            return Err(GraphError::MissingEdge(cut_parent, cut_child));
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let fragment: BTreeSet<NodeId> = self.subtree(cut_child).into_iter().collect();
        let (inside, outside) = if fragment.contains(&u) && !fragment.contains(&v) {
            (u, v)
        } else if fragment.contains(&v) && !fragment.contains(&u) {
            (v, u)
        } else {
            return Err(GraphError::NotASpanningTree(format!(
                "replacement edge ({u}, {v}) does not cross the cut below {cut_child}"
            )));
        };
        // Detach the fragment.
        self.children[cut_parent.index()].retain(|&c| c != cut_child);
        self.parent[cut_child.index()] = None;
        // Re-root the fragment at `inside` so it can hang off `outside`.
        // (A local re-rooting restricted to the fragment: walk from `inside`
        // up to `cut_child` and flip.)
        let mut path = vec![inside];
        let mut x = inside;
        while let Some(p) = self.parent(x) {
            path.push(p);
            x = p;
        }
        debug_assert_eq!(*path.last().unwrap(), cut_child);
        for pair in path.windows(2) {
            let (child, par) = (pair[0], pair[1]);
            self.children[par.index()].retain(|&c| c != child);
            self.children[child.index()].push(par);
            self.children[child.index()].sort_unstable();
            self.parent[par.index()] = Some(child);
        }
        self.parent[inside.index()] = Some(outside);
        self.children[outside.index()].push(inside);
        self.children[outside.index()].sort_unstable();
        Ok(())
    }

    /// Converts the tree into an undirected [`Graph`] on the same node set.
    pub fn to_graph(&self) -> Graph {
        let mut b = crate::graph::GraphBuilder::new(self.node_count());
        for (u, v) in self.edges() {
            b.add_edge(u, v)
                .expect("tree edges are simple and in range");
        }
        b.build()
    }

    /// The fragments obtained by removing node `p` from the tree: one set of
    /// nodes per neighbour of `p` in the tree (children subtrees plus, if `p`
    /// is not the root, the rest of the tree seen through `p`'s parent).
    ///
    /// Each fragment is keyed by the neighbour of `p` it contains.
    pub fn fragments_around(&self, p: NodeId) -> Vec<(NodeId, BTreeSet<NodeId>)> {
        let mut fragments = Vec::new();
        for &c in self.children(p) {
            fragments.push((c, self.subtree(c).into_iter().collect()));
        }
        if let Some(par) = self.parent(p) {
            let below: BTreeSet<NodeId> = self.subtree(p).into_iter().collect();
            let rest: BTreeSet<NodeId> = (0..self.node_count())
                .map(NodeId::new)
                .filter(|x| !below.contains(x))
                .collect();
            fragments.push((par, rest));
        }
        fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn chain(n: usize) -> RootedTree {
        let parents = (0..n)
            .map(|u| {
                if u == 0 {
                    None
                } else {
                    Some(NodeId::new(u - 1))
                }
            })
            .collect();
        RootedTree::from_parents(NodeId(0), parents).unwrap()
    }

    #[test]
    fn chain_degrees_and_height() {
        let t = chain(5);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert_eq!(t.height(), 4);
        assert_eq!(t.max_degree_min_id(), Some(NodeId(1)));
    }

    #[test]
    fn star_has_degree_n_minus_one() {
        let parents = (0..6)
            .map(|u| if u == 0 { None } else { Some(NodeId(0)) })
            .collect();
        let t = RootedTree::from_parents(NodeId(0), parents).unwrap();
        assert_eq!(t.max_degree(), 5);
        assert_eq!(t.max_degree_nodes(), vec![NodeId(0)]);
        assert_eq!(t.degree_histogram(), vec![0, 5, 0, 0, 0, 1]);
    }

    #[test]
    fn from_parents_rejects_cycles() {
        // 0 <- 1 <- 2 and 1 <- 0 forms a cycle away from root 2.
        let parents = vec![Some(NodeId(1)), Some(NodeId(0)), None];
        // Node 2 is the root but nodes 0 and 1 form a 2-cycle unreachable from it.
        let err = RootedTree::from_parents(NodeId(2), parents).unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn from_parents_rejects_multiple_roots() {
        let parents = vec![None, None, Some(NodeId(0))];
        let err = RootedTree::from_parents(NodeId(0), parents).unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn from_edges_orients_away_from_root() {
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(1), NodeId(3)),
        ];
        let t = RootedTree::from_edges(4, NodeId(2), &edges).unwrap();
        assert_eq!(t.root(), NodeId(2));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(0)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn from_edges_rejects_wrong_edge_count() {
        let err = RootedTree::from_edges(3, NodeId(0), &[(NodeId(0), NodeId(1))]).unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn reroot_preserves_edge_set() {
        let mut t = chain(6);
        let before: BTreeSet<(NodeId, NodeId)> = t
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        t.reroot(NodeId(4)).unwrap();
        assert_eq!(t.root(), NodeId(4));
        assert!(t.parent(NodeId(4)).is_none());
        let after: BTreeSet<(NodeId, NodeId)> = t
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        assert_eq!(before, after);
        // Still a valid tree (constructor invariants re-checked).
        let rebuilt =
            RootedTree::from_parents(t.root(), (0..6).map(|u| t.parent(NodeId(u))).collect());
        assert!(rebuilt.is_ok());
    }

    #[test]
    fn path_between_goes_through_lca() {
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(2)),
            (NodeId(1), NodeId(3)),
            (NodeId(2), NodeId(4)),
        ];
        let t = RootedTree::from_edges(5, NodeId(0), &edges).unwrap();
        assert_eq!(
            t.path_between(NodeId(3), NodeId(4)),
            vec![NodeId(3), NodeId(1), NodeId(0), NodeId(2), NodeId(4)]
        );
        assert_eq!(t.path_between(NodeId(3), NodeId(3)), vec![NodeId(3)]);
    }

    #[test]
    fn exchange_reduces_center_degree() {
        // Star centred at 0 over 5 nodes plus graph edge (1,2) available.
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        let parents = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
        ];
        let mut t = RootedTree::from_parents(NodeId(0), parents).unwrap();
        assert_eq!(t.degree(NodeId(0)), 4);
        t.exchange(NodeId(0), NodeId(2), NodeId(1), NodeId(2))
            .unwrap();
        assert_eq!(t.degree(NodeId(0)), 3);
        assert!(t.is_spanning_tree_of(&g));
        assert!(t.has_edge(NodeId(1), NodeId(2)));
        assert!(!t.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn exchange_rejects_non_crossing_edge() {
        let parents = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(1)),
        ];
        let mut t = RootedTree::from_parents(NodeId(0), parents).unwrap();
        // Edge (3,4) lies entirely inside the fragment below node 1.
        let err = t
            .exchange(NodeId(0), NodeId(1), NodeId(3), NodeId(4))
            .unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn fragments_around_cover_all_other_nodes() {
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(1), NodeId(3)),
            (NodeId(3), NodeId(4)),
        ];
        let t = RootedTree::from_edges(5, NodeId(0), &edges).unwrap();
        let frags = t.fragments_around(NodeId(1));
        assert_eq!(frags.len(), 3);
        let total: usize = frags.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 4);
        for (_, s) in &frags {
            assert!(!s.contains(&NodeId(1)));
        }
    }

    #[test]
    fn validate_against_detects_foreign_edges() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let parents = vec![None, Some(NodeId(0)), Some(NodeId(0))];
        let t = RootedTree::from_parents(NodeId(0), parents).unwrap();
        // Edge (0,2) is not in g.
        assert!(t.validate_against(&g).is_err());
    }

    #[test]
    fn to_graph_round_trips_edges() {
        let t = chain(4);
        let g = t.to_graph();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(3)));
    }
}
