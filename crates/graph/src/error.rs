//! Error type shared by the graph crate.

use crate::node::NodeId;
use std::fmt;

/// Errors produced while building or manipulating graphs and trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending identifier.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge `(u, u)` was requested; the model forbids self loops.
    SelfLoop(NodeId),
    /// An edge was inserted twice; the model forbids parallel edges.
    DuplicateEdge(NodeId, NodeId),
    /// The referenced edge does not exist.
    MissingEdge(NodeId, NodeId),
    /// The operation requires a connected graph but the input is disconnected.
    Disconnected,
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A structure that must be a spanning tree is not one.
    NotASpanningTree(String),
    /// A generator was asked for parameters outside its valid domain.
    InvalidParameter(String),
    /// The graph exceeds what the compact 32-bit CSR layout can address.
    TooLarge {
        /// What overflowed (`"nodes"`, `"edges"`, `"incidence slots"`).
        what: &'static str,
        /// The offending count.
        count: u64,
        /// The layout's limit for that quantity.
        limit: u64,
    },
    /// The two passes of a streaming build disagreed (or the phase protocol
    /// was violated): the counted and placed incidences do not line up.
    StreamingMismatch(String),
    /// A directed adjacency stream mentioned `(u, v)` without the reciprocal
    /// `(v, u)`; undirected graphs require symmetric mentions.
    AsymmetricAdjacency(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::SelfLoop(u) => write!(f, "self loop on {u} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::NotASpanningTree(why) => write!(f, "not a spanning tree: {why}"),
            GraphError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
            GraphError::TooLarge { what, count, limit } => write!(
                f,
                "graph too large for the 32-bit CSR layout: {count} {what} (limit {limit})"
            ),
            GraphError::StreamingMismatch(why) => {
                write!(f, "streaming build passes disagree: {why}")
            }
            GraphError::AsymmetricAdjacency(u, v) => write!(
                f,
                "adjacency stream mentions ({u}, {v}) but not the reciprocal ({v}, {u})"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 4,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));
        assert!(GraphError::SelfLoop(NodeId(1))
            .to_string()
            .contains("self loop"));
        assert!(GraphError::Disconnected.to_string().contains("connected"));
    }
}
