//! Node identifiers.
//!
//! The paper assumes *named* networks: every processor carries a distinct
//! identity and ties (e.g. between several maximum-degree nodes) are broken by
//! taking the minimum identity. [`NodeId`] is that identity. It is a dense
//! index into the graph's node table, which keeps the simulator's routing
//! tables simple, while the ordering of the underlying integer provides the
//! total order the protocol needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a node (processor) in the network.
///
/// Identities are dense indices `0..n`, totally ordered; the distributed
/// algorithm only ever uses the ordering (minimum-identity tie breaking) and
/// equality, never arithmetic on identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_underlying_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(10) > NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }

    #[test]
    fn conversions_round_trip() {
        let id: NodeId = 7usize.into();
        assert_eq!(id.index(), 7);
        let back: usize = id.into();
        assert_eq!(back, 7);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(12).to_string(), "v12");
    }
}
