//! Node identifiers.
//!
//! The paper assumes *named* networks: every processor carries a distinct
//! identity and ties (e.g. between several maximum-degree nodes) are broken by
//! taking the minimum identity. [`NodeId`] is that identity. It is a dense
//! index into the graph's node table, which keeps the simulator's routing
//! tables simple, while the ordering of the underlying integer provides the
//! total order the protocol needs.
//!
//! The identity is deliberately 32 bits wide: node identities appear in every
//! CSR target slot, every in-flight message envelope and every parent pointer,
//! so halving the identity width halves the dominant arrays of a run. The
//! dense-range invariant makes `u32` lossless for any graph this workspace can
//! hold (a graph would need more than 4 × 10⁹ nodes to overflow, two orders of
//! magnitude past the million-node scale target).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a node (processor) in the network.
///
/// Identities are dense indices `0..n`, totally ordered; the distributed
/// algorithm only ever uses the ordering (minimum-identity tie breaking) and
/// equality, never arithmetic on identities. Stored as `u32` so identity
/// arrays (CSR targets, mailboxes, parent tables) stay at four bytes per
/// entry; use [`NodeId::new`] to construct one from a `usize` index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Constructs an identity from a dense `usize` index.
    ///
    /// The dense-range invariant (identities are `0..n` with `n` bounded by
    /// the graph builders) keeps the narrowing cast lossless; a debug assert
    /// guards the invariant during development.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "node index {index} overflows u32"
        );
        NodeId(index as u32)
    }

    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::new(value)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_underlying_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(10) > NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }

    #[test]
    fn conversions_round_trip() {
        let id: NodeId = 7usize.into();
        assert_eq!(id.index(), 7);
        let back: usize = id.into();
        assert_eq!(back, 7);
        assert_eq!(NodeId::new(9), NodeId(9));
    }

    #[test]
    fn identity_is_four_bytes() {
        // The whole point of the diet: identities are half the former width.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(12).to_string(), "v12");
    }
}
