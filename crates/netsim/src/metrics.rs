//! Complexity accounting.
//!
//! [`Metrics`] records exactly the quantities §4.2 of the paper analyses:
//!
//! * **message complexity** — total number of messages exchanged, also broken
//!   down per message kind (the paper's per-step table: SearchDegree,
//!   MoveRoot, Cut, BFS, BFSBack, Update, Child, Stop);
//! * **bit complexity** — total and maximum encoded message size, to check the
//!   `O(log n)` bits-per-message claim;
//! * **time complexity** — the length of the longest causal dependency chain
//!   (every hop counted as one unit, matching the paper's definition), *and*
//!   the simulated clock at quiescence under the configured delay model;
//! * per-node send/receive counts, used by the broadcast-load example to show
//!   why a low-degree tree matters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated measurements of one protocol execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total number of messages delivered.
    pub messages_total: u64,
    /// Messages delivered, per message kind.
    pub messages_by_kind: BTreeMap<String, u64>,
    /// Sum of encoded message sizes, in bits.
    pub bits_total: u64,
    /// Largest single encoded message, in bits.
    pub bits_max: u64,
    /// Length of the longest causal chain of messages (the paper's time
    /// complexity, independent of the delay model).
    pub causal_time: u64,
    /// Value of the simulated clock when the network became quiescent
    /// (depends on the delay model; equals `causal_time` under unit delays
    /// when every node starts at time zero).
    pub quiescence_time: u64,
    /// Messages sent per node.
    pub sent_per_node: Vec<u64>,
    /// Messages received per node.
    pub received_per_node: Vec<u64>,
    /// Messages lost to fault injection (random loss, cut links, and sends to
    /// crashed nodes). Always zero under a benign fault plan.
    pub dropped_messages: u64,
    /// Nodes that crash-stopped during the run.
    pub crashed_nodes: u64,
}

impl Metrics {
    /// Creates an empty metrics record for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            sent_per_node: vec![0; n],
            received_per_node: vec![0; n],
            ..Default::default()
        }
    }

    /// Records the delivery of one message.
    pub fn record_delivery(
        &mut self,
        from: usize,
        to: usize,
        kind: &str,
        bits: usize,
        causal_depth: u64,
        delivery_time: u64,
    ) {
        self.messages_total += 1;
        // Allocate the kind's key only on first sight — the borrowed lookup
        // keeps the per-message hot path free of `String` allocations (a
        // protocol has a handful of kinds but sends millions of messages).
        if let Some(count) = self.messages_by_kind.get_mut(kind) {
            *count += 1;
        } else {
            self.messages_by_kind.insert(kind.to_string(), 1);
        }
        self.bits_total += bits as u64;
        self.bits_max = self.bits_max.max(bits as u64);
        self.causal_time = self.causal_time.max(causal_depth);
        self.quiescence_time = self.quiescence_time.max(delivery_time);
        if let Some(s) = self.sent_per_node.get_mut(from) {
            *s += 1;
        }
        if let Some(r) = self.received_per_node.get_mut(to) {
            *r += 1;
        }
    }

    /// Records one delivered message of a batch whose endpoint columns are
    /// counted separately: everything [`Metrics::record_delivery`] does
    /// *except* the total and the per-node send/receive counts — those come
    /// from [`Metrics::record_sent_batch`] / [`Metrics::record_received_batch`],
    /// once per scheduling quantum instead of once per message. The split
    /// keeps the batched pool's per-message hot path down to the columns
    /// that genuinely vary per message (kind, bits, causal depth). The
    /// causal depth doubles as the delivery clock, exactly as the pool
    /// passes it to [`Metrics::record_delivery`] — the pool has no
    /// simulated clock of its own.
    pub fn record_payload(&mut self, kind: &str, bits: usize, causal_depth: u64) {
        if let Some(count) = self.messages_by_kind.get_mut(kind) {
            *count += 1;
        } else {
            self.messages_by_kind.insert(kind.to_string(), 1);
        }
        self.bits_total += bits as u64;
        self.bits_max = self.bits_max.max(bits as u64);
        self.causal_time = self.causal_time.max(causal_depth);
        self.quiescence_time = self.quiescence_time.max(causal_depth);
    }

    /// Counts `count` messages leaving node `from` — the send half of the
    /// batched accounting split (see [`Metrics::record_payload`]). The
    /// *sending* worker charges its own flush in one add, so no delivering
    /// worker ever touches the sender's random-index column.
    pub fn record_sent_batch(&mut self, from: usize, count: u64) {
        if let Some(s) = self.sent_per_node.get_mut(from) {
            *s += count;
        }
    }

    /// Counts `count` messages received by node `to` and folds them into the
    /// delivered total — the receive half of the batched accounting split
    /// (see [`Metrics::record_payload`]).
    pub fn record_received_batch(&mut self, to: usize, count: u64) {
        self.messages_total += count;
        if let Some(r) = self.received_per_node.get_mut(to) {
            *r += count;
        }
    }

    /// Records the loss of one message (fault injection).
    pub fn record_drop(&mut self) {
        self.dropped_messages += 1;
    }

    /// Records the crash-stop of one node (fault injection).
    pub fn record_crash(&mut self) {
        self.crashed_nodes += 1;
    }

    /// Records that the simulated clock reached `time` while the network was
    /// still active (used for start events, which are not deliveries but do
    /// advance the quiescence clock — see `Simulator::step`).
    pub fn record_activity(&mut self, time: u64) {
        self.quiescence_time = self.quiescence_time.max(time);
    }

    /// Number of messages of the given kind.
    pub fn count_of(&self, kind: &str) -> u64 {
        self.messages_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Mean encoded message size in bits (0 when no messages were exchanged).
    pub fn bits_mean(&self) -> f64 {
        if self.messages_total == 0 {
            0.0
        } else {
            self.bits_total as f64 / self.messages_total as f64
        }
    }

    /// The heaviest receiver: `(node index, messages received)`.
    pub fn max_received(&self) -> Option<(usize, u64)> {
        self.received_per_node
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }

    /// Merges another metrics record into this one (used by the threaded
    /// runtime to aggregate per-thread counters). Per-node vectors must have
    /// the same length.
    pub fn merge(&mut self, other: &Metrics) {
        self.messages_total += other.messages_total;
        for (k, v) in &other.messages_by_kind {
            *self.messages_by_kind.entry(k.clone()).or_insert(0) += v;
        }
        self.bits_total += other.bits_total;
        self.bits_max = self.bits_max.max(other.bits_max);
        self.causal_time = self.causal_time.max(other.causal_time);
        self.quiescence_time = self.quiescence_time.max(other.quiescence_time);
        for (a, b) in self.sent_per_node.iter_mut().zip(&other.sent_per_node) {
            *a += b;
        }
        for (a, b) in self
            .received_per_node
            .iter_mut()
            .zip(&other.received_per_node)
        {
            *a += b;
        }
        self.dropped_messages += other.dropped_messages;
        self.crashed_nodes += other.crashed_nodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_delivery_accumulates_all_dimensions() {
        let mut m = Metrics::new(3);
        m.record_delivery(0, 1, "BFS", 20, 1, 1);
        m.record_delivery(1, 2, "BFS", 24, 2, 2);
        m.record_delivery(2, 0, "BFSBack", 16, 3, 5);
        assert_eq!(m.messages_total, 3);
        assert_eq!(m.count_of("BFS"), 2);
        assert_eq!(m.count_of("BFSBack"), 1);
        assert_eq!(m.count_of("Update"), 0);
        assert_eq!(m.bits_total, 60);
        assert_eq!(m.bits_max, 24);
        assert!((m.bits_mean() - 20.0).abs() < 1e-9);
        assert_eq!(m.causal_time, 3);
        assert_eq!(m.quiescence_time, 5);
        assert_eq!(m.sent_per_node, vec![1, 1, 1]);
        assert_eq!(m.received_per_node, vec![1, 1, 1]);
    }

    #[test]
    fn empty_metrics_have_zero_mean() {
        let m = Metrics::new(2);
        assert_eq!(m.bits_mean(), 0.0);
        assert_eq!(
            m.max_received(),
            Some((1, 0)).map(|_| (0, 0)).or(Some((0, 0)))
        );
    }

    #[test]
    fn max_received_prefers_lowest_index_on_ties() {
        let mut m = Metrics::new(3);
        m.record_delivery(0, 1, "X", 1, 1, 1);
        m.record_delivery(0, 2, "X", 1, 1, 1);
        assert_eq!(m.max_received(), Some((1, 1)));
    }

    #[test]
    fn merge_adds_counts_and_maxes() {
        let mut a = Metrics::new(2);
        a.record_delivery(0, 1, "X", 10, 2, 3);
        a.record_drop();
        let mut b = Metrics::new(2);
        b.record_delivery(1, 0, "Y", 30, 5, 4);
        b.record_drop();
        b.record_crash();
        a.merge(&b);
        assert_eq!(a.messages_total, 2);
        assert_eq!(a.count_of("Y"), 1);
        assert_eq!(a.bits_max, 30);
        assert_eq!(a.causal_time, 5);
        assert_eq!(a.quiescence_time, 4);
        assert_eq!(a.sent_per_node, vec![1, 1]);
        assert_eq!(a.dropped_messages, 2);
        assert_eq!(a.crashed_nodes, 1);
    }

    #[test]
    fn activity_advances_the_quiescence_clock_without_a_delivery() {
        let mut m = Metrics::new(2);
        m.record_delivery(0, 1, "X", 8, 1, 4);
        m.record_activity(9);
        assert_eq!(m.quiescence_time, 9);
        m.record_activity(2);
        assert_eq!(m.quiescence_time, 9, "activity never rewinds the clock");
        assert_eq!(m.messages_total, 1);
    }
}
