//! Work-stealing pool runtime: thousands of nodes on a fixed worker pool.
//!
//! The thread-per-node [`crate::threaded::ThreadedRuntime`] demonstrates the
//! protocols under genuine OS nondeterminism, but one thread per node caps it
//! far below the `n ≥ 10⁴` regime where the paper's `O(Δ* + log n)` degree
//! bound becomes interesting. This runtime multiplexes every node over a
//! fixed pool of workers instead, around a **batched message fabric**:
//!
//! * **per-node mailboxes** — each node owns a mutex-guarded cell holding its
//!   protocol state and a FIFO mailbox of in-flight envelopes. A link `{u,v}`
//!   stays FIFO because `u`'s handler appends to `v`'s mailbox in send order
//!   and the mailbox drains in order.
//! * **quantum = drain batch** — a scheduled node processes its pending
//!   wake-up plus up to [`PoolConfig::batch`] mailbox messages per quantum,
//!   so one flooded hub cannot monopolise a worker while other nodes starve.
//!   Envelopes are consumed straight out of the mailbox's `VecDeque` (whose
//!   capacity stays with the cell), so steady-state quanta allocate nothing.
//! * **bucketed send coalescing** — every send a quantum produces is routed,
//!   at `send` time, into a worker-local bucket per neighbour slot: the
//!   binary search that validates neighbourship anyway *is* the routing
//!   step, so grouping by destination costs no sort and no extra pass. The
//!   buckets are flushed *after* the source cell unlocks (never two cell
//!   locks at once): walking the slots in order takes **one**
//!   destination-cell lock per non-empty bucket and appends the link's
//!   whole message group in handler send order — per-link FIFO for free.
//!   The quantum's sends are added to the in-flight counter with **one**
//!   atomic RMW before any message becomes visible, instead of one RMW per
//!   message, and a flush that wakes exactly one destination hands it back
//!   as the worker's immediate continuation, skipping the run queue.
//! * **striped run queues with stealing** — each worker owns a deque of
//!   runnable node ids; it pops locally from the front and, when empty,
//!   steals from the back of a sibling's queue. A node is enqueued at most
//!   once (a `scheduled` flag in its cell), so the queues stay small and a
//!   node's handlers never run on two workers at once. All of a flush's
//!   newly runnable destinations are enqueued under one queue lock.
//! * **quiescence via in-flight counters** — a shared counter tracks every
//!   queued-or-processing unit of work (initial wake-ups plus undelivered
//!   messages). Senders increment *before* any message of the flush becomes
//!   visible and the processing worker decrements only after the handler's
//!   own sends are counted, so the counter reaching zero really means the
//!   network is quiescent, never a transient gap. The counter uses
//!   relaxed/acquire-release orderings; the happens-before argument lives on
//!   the increment site in `process_node_batched`.
//! * **per-node memory diet** — the runtime is monomorphised over a
//!   compile-time `TraceMode`: on untraced runs the per-envelope message
//!   identity and the per-cell link sequence counters are zero-sized *types*,
//!   not zeroed fields, so the no-trace hot path never stores or copies
//!   trace bookkeeping at all. Run queues and wake lists hold `u32` node ids
//!   (the graph caps node ids at 2³²), and drained mailbox buffers are
//!   recycled through a worker-local `MailboxPool` bucketed by capacity
//!   class, so retained mailbox capacity scales with the active frontier
//!   instead of parking one high-water buffer in every one of a million
//!   cells.
//!
//! The runtime reports the same [`Metrics`] as the other backends (message
//! counts, bits, causal depth) plus the wall-clock duration and honors the
//! `max_events` cap ([`ExecStatus::EventLimitExceeded`]). Like the threaded
//! runtime it cannot honor simulated delays or fault plans; the
//! [`crate::exec::PoolExecutor`] front door rejects such configurations.

use crate::cancel::CancelToken;
use crate::exec::ExecStatus;
use crate::message::NetMessage;
use crate::metrics::Metrics;
use crate::protocol::{Context, Protocol};
use crate::sim::{SimError, StartModel};
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};
use mdst_graph::{Graph, NodeId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pool runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Worker threads; `0` means one per available CPU, capped at 64. Always
    /// clamped to at most one worker per node.
    pub workers: usize,
    /// Cap on processed work units (wake-ups plus deliveries); exceeding it
    /// aborts the run with [`ExecStatus::EventLimitExceeded`].
    pub max_events: u64,
    /// Which nodes wake up spontaneously. [`StartModel::Simultaneous`] wakes
    /// everyone; [`StartModel::Selected`] wakes the listed nodes and lets
    /// messages wake the rest. [`StartModel::Staggered`] needs a simulated
    /// clock and is rejected by the executor front door.
    pub start: StartModel,
    /// Whether to record an auditable message trace. Each worker keeps a
    /// local event buffer stamped from one atomic global counter; the buffers
    /// are merged into [`PoolRun::trace`] at quiescence.
    pub record_trace: bool,
    /// Messages drained from a mailbox per scheduling quantum; `0` means the
    /// default of [`PoolRuntime::DEFAULT_BATCH`]. Larger batches amortise the
    /// per-quantum locking over more messages; smaller batches interleave
    /// nodes more fairly. Resolved by [`PoolRuntime::effective_batch`].
    pub batch: usize,
    /// Whether to coalesce the quantum's sends into grouped per-destination
    /// flushes (the default). `false` selects the legacy pre-batching path —
    /// one destination-cell lock, one sequentially consistent in-flight RMW
    /// and one run-queue push *per message* — kept only so the `message_fabric`
    /// bench can A/B the fabric on a single build. Results are equivalent
    /// either way; only the locking rhythm differs.
    pub coalesce: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            max_events: crate::sim::SimConfig::default().max_events,
            start: StartModel::Simultaneous,
            record_trace: false,
            batch: 0,
            coalesce: true,
        }
    }
}

/// Result of a pool execution.
pub struct PoolRun<P> {
    /// Final protocol state of every node, indexed by identity.
    pub nodes: Vec<P>,
    /// Aggregated metrics (message counts, bits, causal depth).
    pub metrics: Metrics,
    /// Whether the run quiesced or hit the event cap.
    pub status: ExecStatus,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock duration from the first wake-up to quiescence.
    pub wall_time: Duration,
    /// Recorded trace: the per-worker event buffers merged at quiescence and
    /// sorted by the atomic global stamp. The disabled recorder unless
    /// [`PoolConfig::record_trace`] was set.
    pub trace: TraceRecorder,
}

/// Compile-time selector for the pool's trace bookkeeping. The runtime is
/// monomorphised twice: [`Traced`] carries a `(msg_id, link_seq)` identity in
/// every envelope and a per-link sequence counter vector in every cell, while
/// [`Untraced`] replaces both with zero-sized types — the no-trace path does
/// not merely skip the bookkeeping, it never stores, copies, or branches on
/// it (every trace site tests [`TraceMode::ENABLED`], a constant, first).
trait TraceMode: Send + Sync + 'static {
    /// Per-envelope trace identity: `(msg_id, link_seq)` or nothing.
    type Meta: Copy + Default + Send;
    /// Per-cell sender-side link sequence counters, indexed by the target's
    /// slot in the sorted CSR neighbour row: a lazily-sized vector or
    /// nothing.
    type LinkSeqs: Default + Send;
    /// `true` exactly when [`Shared::trace`] is populated.
    const ENABLED: bool;
    fn meta(msg_id: u64, link_seq: u64) -> Self::Meta;
    fn msg_id(meta: Self::Meta) -> u64;
    fn link_seq(meta: Self::Meta) -> u64;
    /// Hands out the next sequence number on `slot`, lazily sizing the
    /// counter vector to `degree` on the cell's first traced send. Only
    /// called while the processing worker owns the cell exclusively (the
    /// `scheduled` flag), so the send order on each link maps one-to-one
    /// onto consecutive sequence numbers.
    fn next_link_seq(seqs: &mut Self::LinkSeqs, slot: usize, degree: usize) -> u64;
}

/// The no-trace instantiation: all trace bookkeeping is zero-sized.
enum Untraced {}

impl TraceMode for Untraced {
    type Meta = ();
    type LinkSeqs = ();
    const ENABLED: bool = false;
    fn meta(_: u64, _: u64) -> Self::Meta {}
    fn msg_id(_: Self::Meta) -> u64 {
        0
    }
    fn link_seq(_: Self::Meta) -> u64 {
        0
    }
    fn next_link_seq(_: &mut Self::LinkSeqs, _: usize, _: usize) -> u64 {
        0
    }
}

/// The traced instantiation: envelopes carry their identity, cells their
/// per-link counters (dense by neighbour slot, unlike the `HashMap` this
/// replaced — no per-send entry churn).
enum Traced {}

/// Trace identity of one in-flight message (see [`TraceEvent::msg_id`]).
#[derive(Copy, Clone, Default)]
struct MsgIdentity {
    msg_id: u64,
    link_seq: u64,
}

impl TraceMode for Traced {
    type Meta = MsgIdentity;
    type LinkSeqs = Vec<u64>;
    const ENABLED: bool = true;
    fn meta(msg_id: u64, link_seq: u64) -> Self::Meta {
        MsgIdentity { msg_id, link_seq }
    }
    fn msg_id(meta: Self::Meta) -> u64 {
        meta.msg_id
    }
    fn link_seq(meta: Self::Meta) -> u64 {
        meta.link_seq
    }
    fn next_link_seq(seqs: &mut Self::LinkSeqs, slot: usize, degree: usize) -> u64 {
        if seqs.is_empty() {
            seqs.resize(degree, 0);
        }
        let seq = seqs[slot];
        seqs[slot] += 1;
        seq
    }
}

/// A message in flight between two nodes. The trace identity is a zero-sized
/// blank on untraced runs (see [`TraceMode`]), shrinking the envelope by 16
/// bytes exactly where a million-node flood holds millions of them.
struct Envelope<M, T: TraceMode> {
    from: NodeId,
    msg: M,
    causal_depth: u64,
    meta: T::Meta,
}

/// The mutex-guarded per-node state.
struct NodeCell<P: Protocol, T: TraceMode> {
    protocol: P,
    mailbox: VecDeque<Envelope<P::Message, T>>,
    /// Whether the node currently sits in some run queue or is being
    /// processed. Guarantees single-worker ownership of the protocol state.
    scheduled: bool,
    /// Whether an initial wake-up is still owed (carries one in-flight unit).
    pending_start: bool,
    /// Whether `on_start` has run (a message wakes a node that has not
    /// spontaneously started, same convention as the simulator).
    started: bool,
    /// Sender-side trace sequence counters (see [`TraceMode::next_link_seq`]);
    /// zero-sized on untraced runs.
    link_seq: T::LinkSeqs,
}

/// Counters shared by every worker of one traced run: the global event stamp
/// (total recording order across workers) and the message-id allocator.
struct TraceShared {
    stamp: AtomicU64,
    next_msg_id: AtomicU64,
}

struct Shared<P: Protocol, T: TraceMode> {
    cells: Vec<Mutex<NodeCell<P, T>>>,
    /// Striped run queues of runnable node ids — `u32`, half the queue
    /// traffic of `usize` ids (the graph caps node ids at 2³²).
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Shared topology; workers borrow neighbour slices from its CSR rows,
    /// so the pool allocates no per-run adjacency at all.
    graph: Arc<Graph>,
    /// Queued-or-processing work units; zero means quiescent forever.
    in_flight: AtomicI64,
    processed: AtomicU64,
    aborted: AtomicBool,
    /// Cooperative cancellation flag, polled by every worker at the top of
    /// its scheduling loop. A raised token also raises `aborted`, reusing
    /// the event-cap drain-out path; `cancelled` remembers which it was.
    cancel: CancelToken,
    cancelled: AtomicBool,
    max_events: u64,
    n: usize,
    /// Resolved drain-batch size (never zero).
    batch: usize,
    /// `false` selects the legacy per-message flush path (bench baseline).
    coalesce: bool,
    /// Present exactly when the run records a trace.
    trace: Option<TraceShared>,
}

/// Context handed to a protocol while one worker processes its node: sends
/// are buffered and delivered after the handler returns (and after the cell
/// lock is released, so delivery never holds two cell locks at once).
struct PoolCtx<'a, M> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    outbox: &'a mut Vec<(NodeId, M, u64)>,
    current_depth: u64,
}

impl<M: NetMessage> Context<M> for PoolCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        self.outbox.push((to, msg, self.current_depth + 1));
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// Context of the batched fabric: each send is routed straight into the
/// per-neighbour bucket the flush later drains, reusing the slot that the
/// neighbourship check computes anyway — so grouping by destination costs
/// nothing beyond the validation the legacy path already paid, and the flush
/// needs no sort.
struct BatchedCtx<'a, M, T: TraceMode> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    buckets: &'a mut [Vec<Buffered<M, T>>],
    current_depth: u64,
}

impl<M: NetMessage, T: TraceMode> Context<M> for BatchedCtx<'_, M, T> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        // The neighbourship check *is* the routing step: the binary search
        // that validates the destination also yields its bucket slot.
        let slot = self.neighbors.binary_search(&to);
        assert!(
            slot.is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        // The assert above makes the fallback unreachable.
        self.buckets[slot.unwrap_or(0)].push(Buffered {
            msg,
            causal_depth: self.current_depth + 1,
            meta: T::Meta::default(),
        });
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// Runs protocols on a fixed work-stealing worker pool. See the module docs.
pub struct PoolRuntime;

impl PoolRuntime {
    /// Default mailbox drain batch per scheduling quantum ([`PoolConfig::batch`]
    /// `== 0`). Bounded so one flooded hub cannot monopolise a worker while
    /// other nodes starve.
    pub const DEFAULT_BATCH: usize = 64;

    /// Resolved drain-batch size: `0` means [`Self::DEFAULT_BATCH`].
    pub fn effective_batch(requested: usize) -> usize {
        if requested == 0 {
            Self::DEFAULT_BATCH
        } else {
            requested
        }
    }

    /// Resolved worker count for a pool over `n` nodes.
    pub fn effective_workers(requested: usize, n: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let w = if requested == 0 {
            hw.min(64)
        } else {
            requested
        };
        w.clamp(1, n.max(1))
    }

    /// Executes the protocol on `graph` until quiescence (or the event cap)
    /// and returns the final node states plus metrics. The factory receives
    /// each node's identity and sorted neighbour list.
    ///
    /// The start model is validated against the graph up front, exactly like
    /// [`crate::sim::Simulator::new`]: an empty or out-of-range
    /// [`StartModel::Selected`] list and the clock-dependent
    /// [`StartModel::Staggered`] return [`SimError::InvalidConfig`] instead
    /// of panicking (or silently succeeding) inside a worker.
    pub fn run<P, F>(
        graph: &Arc<Graph>,
        factory: F,
        config: &PoolConfig,
    ) -> Result<PoolRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        Self::run_with_cancel(graph, factory, config, &CancelToken::new())
    }

    /// Like [`PoolRuntime::run`], observing `cancel` cooperatively: every
    /// worker polls the token at the top of its scheduling loop and a raised
    /// token drains the pool exactly like an event-cap abort, reported as
    /// [`ExecStatus::Cancelled`] with the partial states and metrics.
    pub fn run_with_cancel<P, F>(
        graph: &Arc<Graph>,
        factory: F,
        config: &PoolConfig,
        cancel: &CancelToken,
    ) -> Result<PoolRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        // Monomorphise the whole runtime over the trace switch: the untraced
        // instantiation carries no trace bookkeeping in its envelopes or
        // cells (see [`TraceMode`]).
        if config.record_trace {
            Self::run_mode::<P, F, Traced>(graph, factory, config, cancel)
        } else {
            Self::run_mode::<P, F, Untraced>(graph, factory, config, cancel)
        }
    }

    fn run_mode<P, F, T>(
        graph: &Arc<Graph>,
        mut factory: F,
        config: &PoolConfig,
        cancel: &CancelToken,
    ) -> Result<PoolRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
        T: TraceMode,
    {
        let n = graph.node_count();
        let workers = Self::effective_workers(config.workers, n);
        let starters: Vec<usize> = match &config.start {
            StartModel::Selected(list) => {
                if list.is_empty() {
                    return Err(SimError::InvalidConfig(
                        "StartModel::Selected with an empty list: no node would ever \
                         wake up, the run would be a silent no-op"
                            .to_string(),
                    ));
                }
                for &node in list {
                    if node.index() >= n {
                        return Err(SimError::InvalidConfig(format!(
                            "StartModel::Selected references node {node} but the \
                             graph has {n} nodes"
                        )));
                    }
                }
                let mut ids: Vec<usize> = list.iter().map(|u| u.index()).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
            StartModel::Staggered { .. } => {
                return Err(SimError::InvalidConfig(
                    "the pool runtime has no simulated clock and cannot honor \
                     StartModel::Staggered; use the simulator"
                        .to_string(),
                ));
            }
            StartModel::Simultaneous => (0..n).collect(),
        };
        let cells: Vec<Mutex<NodeCell<P, T>>> = (0..n)
            .map(|u| {
                Mutex::new(NodeCell {
                    protocol: factory(NodeId::new(u), graph.neighbor_slice(NodeId::new(u))),
                    mailbox: VecDeque::new(),
                    scheduled: false,
                    pending_start: false,
                    started: false,
                    link_seq: T::LinkSeqs::default(),
                })
            })
            .collect();
        for &u in &starters {
            let mut cell = lock_ignore_poison(&cells[u]);
            cell.pending_start = true;
            cell.scheduled = true;
        }
        let mut queues: Vec<Mutex<VecDeque<u32>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, &u) in starters.iter().enumerate() {
            queues[i % workers]
                .get_mut()
                .expect("queue poisoned")
                .push_back(u as u32);
        }
        let shared = Shared {
            cells,
            queues,
            graph: Arc::clone(graph),
            in_flight: AtomicI64::new(starters.len() as i64),
            processed: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            cancel: cancel.clone(),
            cancelled: AtomicBool::new(false),
            max_events: config.max_events,
            n,
            batch: Self::effective_batch(config.batch),
            coalesce: config.coalesce,
            trace: config.record_trace.then(|| TraceShared {
                stamp: AtomicU64::new(0),
                next_msg_id: AtomicU64::new(1),
            }),
        };

        let started_at = Instant::now();
        let mut per_worker: Vec<(Metrics, Vec<TraceEvent>)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let shared = &shared;
                handles.push(scope.spawn(move || worker_loop(w, workers, shared)));
            }
            for handle in handles {
                match handle.join() {
                    Ok(m) => per_worker.push(m),
                    // Re-raise a protocol panic under its original message
                    // (all siblings have already exited via the abort flag).
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let wall_time = started_at.elapsed();

        let mut metrics = Metrics::new(n);
        let mut merged_events: Vec<TraceEvent> = Vec::new();
        for (m, events) in per_worker {
            metrics.merge(&m);
            merged_events.extend(events);
        }
        let trace = if config.record_trace {
            // The global stamp is unique per event, so sorting by it totally
            // orders the merged worker buffers by real recording order.
            merged_events.sort_unstable_by_key(|e| e.time);
            TraceRecorder::from_events(merged_events)
        } else {
            TraceRecorder::disabled()
        };
        // Like the threaded runtime, there is no simulated clock: the
        // quiescence clock is reported as the maximum causal depth.
        metrics.quiescence_time = metrics.causal_time;
        let status = if shared.cancelled.load(Ordering::SeqCst) {
            ExecStatus::Cancelled
        } else if shared.aborted.load(Ordering::SeqCst) {
            ExecStatus::EventLimitExceeded
        } else {
            ExecStatus::Quiesced
        };
        let nodes: Vec<P> = shared
            .cells
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .protocol
            })
            .collect();
        Ok(PoolRun {
            nodes,
            metrics,
            status,
            workers,
            wall_time,
            trace,
        })
    }
}

/// Acquires a mutex, recovering the data on poisoning: when a sibling worker
/// panicked mid-quantum the pool is aborting anyway, and the recovering
/// workers only need the lock to drain out, not for consistency.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Flips the abort flag when dropped during a panic, so a protocol panic on
/// one worker releases the siblings instead of leaving them waiting for an
/// `in_flight` count that will never reach zero.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// One buffered send sitting in a destination bucket: the payload, its
/// causal depth, and the trace identity assigned just before the flush
/// (zero-sized on untraced runs).
struct Buffered<M, T: TraceMode> {
    msg: M,
    causal_depth: u64,
    meta: T::Meta,
}

/// Mailbox capacity classes `2⁰ ..= 2^(MAILBOX_CLASSES−1)`; larger drained
/// buffers go back to the allocator instead of the pool.
const MAILBOX_CLASSES: usize = 17;

/// Drained buffers kept per class per worker; beyond that, the allocator
/// takes them back.
const MAILBOX_POOL_PER_CLASS: usize = 32;

/// Worker-local pool of drained mailbox buffers, bucketed by power-of-two
/// capacity class (≈ the receiver's degree class under flooding: a mailbox's
/// high-water mark tracks how many neighbours talk to the node per wave).
/// Settling a fully drained node donates its buffer here instead of letting
/// the capacity rot in the cell forever; waking an empty mailbox takes one
/// back, sized to the incoming burst. Retained mailbox capacity then scales
/// with the active frontier, not the node count — the difference between a
/// million idle high-water deques and a few dozen live ones.
struct MailboxPool<E> {
    classes: Vec<Vec<VecDeque<E>>>,
}

impl<E> MailboxPool<E> {
    fn new() -> Self {
        MailboxPool {
            classes: (0..MAILBOX_CLASSES).map(|_| Vec::new()).collect(),
        }
    }

    /// Class of a capacity: `floor(log2(cap))`, so class `c` holds buffers
    /// of capacity `2^c .. 2^(c+1)`.
    fn class_of(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// Returns a drained buffer to the pool (or to the allocator, when the
    /// class bucket is full or the buffer is outsized).
    fn donate(&mut self, deque: VecDeque<E>) {
        debug_assert!(deque.is_empty(), "only drained mailboxes are donated");
        let cap = deque.capacity();
        if cap == 0 {
            return;
        }
        if let Some(bucket) = self.classes.get_mut(Self::class_of(cap)) {
            if bucket.len() < MAILBOX_POOL_PER_CLASS {
                bucket.push(deque);
            }
        }
    }

    /// Takes a buffer of capacity ≥ `at_least` if the pool has one (scanning
    /// upward from the smallest sufficient class), else an unallocated deque
    /// that will size itself on first push.
    fn take(&mut self, at_least: usize) -> VecDeque<E> {
        // Smallest class whose *every* member has capacity ≥ `at_least`:
        // ceil(log2(at_least)).
        let from = if at_least <= 1 {
            0
        } else {
            Self::class_of(at_least - 1) + 1
        };
        for class in from.min(MAILBOX_CLASSES)..MAILBOX_CLASSES {
            if let Some(deque) = self.classes[class].pop() {
                return deque;
            }
        }
        VecDeque::new()
    }
}

/// Worker-local buffers recycled across scheduling quanta, so the steady
/// state of a long run allocates nothing per quantum: the destination
/// buckets and the wake list all reuse the capacity high-watermark of
/// earlier quanta.
struct Scratch<P: Protocol, T: TraceMode> {
    /// Per-neighbour-slot send buckets: `buckets[slot]` holds this quantum's
    /// messages down link `slot`, in handler send order. Routing happens at
    /// `send` time (the neighbourship binary search yields the slot), so the
    /// flush never sorts — it walks the slots in order, one destination lock
    /// per non-empty bucket. Grown to the widest degree seen, never shrunk;
    /// the flush drains every bucket, so they are always empty between
    /// quanta.
    buckets: Vec<Vec<Buffered<P::Message, T>>>,
    /// Destinations that became runnable during the flush.
    wake: Vec<u32>,
    /// Processed units owed to `in_flight` by the current continuation
    /// chain: one Release decrement per chain instead of one per quantum.
    /// Deferral is always safe — the counter stays an over-approximation
    /// until the flush, so the idle zero-test can only fire late, never
    /// early.
    in_flight_debt: i64,
    /// Processed units not yet folded into the shared counter (flushed
    /// every [`PROCESSED_STRIDE`] units and at every chain end).
    processed_local: u64,
    /// Recycled mailbox buffers, bucketed by capacity class (see
    /// [`MailboxPool`]).
    mailboxes: MailboxPool<Envelope<P::Message, T>>,
}

impl<P: Protocol, T: TraceMode> Scratch<P, T> {
    fn new() -> Self {
        Scratch {
            buckets: Vec::new(),
            wake: Vec::new(),
            in_flight_debt: 0,
            processed_local: 0,
            mailboxes: MailboxPool::new(),
        }
    }
}

fn worker_loop<P: Protocol, T: TraceMode>(
    w: usize,
    workers: usize,
    shared: &Shared<P, T>,
) -> (Metrics, Vec<TraceEvent>) {
    let _abort_guard = AbortOnPanic(&shared.aborted);
    let mut metrics = Metrics::new(shared.n);
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut scratch = Scratch::new();
    let mut idle_spins = 0u32;
    loop {
        if shared.cancel.is_cancelled() {
            shared.cancelled.store(true, Ordering::SeqCst);
            shared.aborted.store(true, Ordering::SeqCst);
        }
        if shared.aborted.load(Ordering::SeqCst) {
            break;
        }
        let next = pop_local(w, shared).or_else(|| steal(w, workers, shared));
        match next {
            Some(u) => {
                idle_spins = 0;
                // Chain continuation: a batched quantum hands back one node
                // its flush just made runnable and the worker runs it
                // immediately — the common wave pattern (one message in, one
                // message out) never round-trips through the run queue.
                let mut next = Some(u);
                while let Some(u) = next {
                    if shared.aborted.load(Ordering::SeqCst) {
                        break;
                    }
                    next = process_node(u, w, shared, &mut metrics, &mut events, &mut scratch);
                }
                // Settle the chain's deferred accounting: one Release
                // decrement for the whole chain (see `Scratch::in_flight_debt`)
                // and any processed units below the flush stride.
                if scratch.in_flight_debt != 0 {
                    shared
                        .in_flight
                        .fetch_sub(scratch.in_flight_debt, Ordering::Release);
                    scratch.in_flight_debt = 0;
                }
                flush_processed(shared, &mut scratch.processed_local);
            }
            None => {
                // Acquire pairs with the Release decrement in `process_node`:
                // a zero read happens-after every worker's final decrement,
                // and the counter is monotone at zero (see the increment
                // site), so breaking here never abandons live work.
                if shared.in_flight.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Another worker still holds work; back off politely. The
                // yield-then-sleep ladder keeps latency low without burning
                // a core per idle worker on big pools.
                idle_spins += 1;
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
    (metrics, events)
}

fn pop_local<P: Protocol, T: TraceMode>(w: usize, shared: &Shared<P, T>) -> Option<u32> {
    let mut queue = lock_ignore_poison(&shared.queues[w]);
    let popped = queue.pop_front();
    // Batched fabric: start pulling the *next* runnable node's cell line
    // while the popped one is processed — a whole quantum of latency to
    // hide the miss behind (node indices are effectively random, so the
    // line is almost always cold).
    if shared.coalesce {
        if let Some(&front) = queue.front() {
            std::hint::black_box(shared.cells[front as usize].is_poisoned());
        }
    }
    popped
}

/// Steals from the back of a sibling queue, scanning siblings round-robin
/// from the worker's own position so thieves spread out.
fn steal<P: Protocol, T: TraceMode>(
    w: usize,
    workers: usize,
    shared: &Shared<P, T>,
) -> Option<u32> {
    for offset in 1..workers {
        let victim = (w + offset) % workers;
        if let Some(u) = lock_ignore_poison(&shared.queues[victim]).pop_back() {
            return Some(u);
        }
    }
    None
}

/// Processes one scheduling quantum of node `u`: the pending wake-up (if
/// any) plus up to [`PoolConfig::batch`] mailbox messages, then flushes the
/// buffered sends and settles the node's `scheduled` flag. Returns one node
/// the flush made runnable, for immediate local continuation (batched
/// fabric only — the legacy path always schedules through the queue).
fn process_node<P: Protocol, T: TraceMode>(
    u: u32,
    w: usize,
    shared: &Shared<P, T>,
    metrics: &mut Metrics,
    events: &mut Vec<TraceEvent>,
    scratch: &mut Scratch<P, T>,
) -> Option<u32> {
    if shared.coalesce {
        process_node_batched(u, w, shared, metrics, events, scratch)
    } else {
        process_node_legacy(u, w, shared, metrics, events);
        None
    }
}

/// The legacy pre-batching quantum, kept as the `message_fabric` bench
/// baseline (`PoolConfig::coalesce = false`) and faithful to the original
/// rhythm: fresh buffers every quantum, and one sequentially consistent
/// in-flight RMW, one destination-cell lock and one run-queue push *per
/// message*. Results are identical to the batched path either way.
fn process_node_legacy<P: Protocol, T: TraceMode>(
    u: u32,
    w: usize,
    shared: &Shared<P, T>,
    metrics: &mut Metrics,
    events: &mut Vec<TraceEvent>,
) {
    let node = u as usize;
    let mut outbox: Vec<(NodeId, P::Message, u64)> = Vec::new();
    let neighbors = shared.graph.neighbor_slice(NodeId(u));
    let (units, send_ids) = {
        let mut cell = lock_ignore_poison(&shared.cells[node]);
        let start_unit = cell.pending_start;
        cell.pending_start = false;
        let batch: Vec<Envelope<P::Message, T>> = {
            let take = cell.mailbox.len().min(shared.batch);
            cell.mailbox.drain(..take).collect()
        };
        let wake = !cell.started && (start_unit || !batch.is_empty());
        if wake {
            cell.started = true;
            let wake_depth = if start_unit {
                0
            } else {
                batch.first().map(|e| e.causal_depth).unwrap_or(0)
            };
            let mut ctx = PoolCtx {
                id: NodeId(u),
                neighbors,
                network_size: shared.n,
                outbox: &mut outbox,
                current_depth: wake_depth,
            };
            cell.protocol.on_start(&mut ctx);
        }
        for envelope in batch.iter() {
            metrics.record_delivery(
                envelope.from.index(),
                node,
                envelope.msg.kind(),
                envelope.msg.encoded_bits(),
                envelope.causal_depth,
                envelope.causal_depth,
            );
            if T::ENABLED {
                if let Some(tracing) = &shared.trace {
                    events.push(TraceEvent {
                        time: tracing.stamp.fetch_add(1, Ordering::SeqCst),
                        kind: TraceEventKind::Deliver,
                        from: envelope.from,
                        to: NodeId(u),
                        message_kind: envelope.msg.kind().into(),
                        msg_id: T::msg_id(envelope.meta),
                        seq: T::link_seq(envelope.meta),
                    });
                }
            }
        }
        let batch_len = batch.len();
        for envelope in batch {
            let mut ctx = PoolCtx {
                id: NodeId(u),
                neighbors,
                network_size: shared.n,
                outbox: &mut outbox,
                current_depth: envelope.causal_depth,
            };
            cell.protocol
                .on_message(envelope.from, envelope.msg, &mut ctx);
        }
        let send_ids: Vec<(u64, u64)> = match &shared.trace {
            Some(tracing) if T::ENABLED => {
                let cell = &mut *cell;
                outbox
                    .iter()
                    .map(|(to, msg, _)| {
                        let msg_id = tracing.next_msg_id.fetch_add(1, Ordering::SeqCst);
                        // One neighbour lookup per message — the pre-batching
                        // rhythm this baseline preserves. `send` already
                        // asserted neighbourship; the fallback is unreachable.
                        let slot = neighbors.binary_search(to).unwrap_or(0);
                        let link_seq = T::next_link_seq(&mut cell.link_seq, slot, neighbors.len());
                        events.push(TraceEvent {
                            time: tracing.stamp.fetch_add(1, Ordering::SeqCst),
                            kind: TraceEventKind::Send,
                            from: NodeId(u),
                            to: *to,
                            message_kind: msg.kind().into(),
                            msg_id,
                            seq: link_seq,
                        });
                        (msg_id, link_seq)
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        (start_unit as i64 + batch_len as i64, send_ids)
    };
    for (i, (to, msg, causal_depth)) in outbox.into_iter().enumerate() {
        let meta = send_ids
            .get(i)
            .map(|&(msg_id, link_seq)| T::meta(msg_id, link_seq))
            .unwrap_or_default();
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let needs_enqueue = {
            let mut cell = lock_ignore_poison(&shared.cells[to.index()]);
            cell.mailbox.push_back(Envelope {
                from: NodeId(u),
                msg,
                causal_depth,
                meta,
            });
            if cell.scheduled {
                false
            } else {
                cell.scheduled = true;
                true
            }
        };
        if needs_enqueue {
            lock_ignore_poison(&shared.queues[w]).push_back(to.0);
        }
    }
    // Settle the node: keep it runnable if messages arrived meanwhile.
    let requeue = {
        let mut cell = lock_ignore_poison(&shared.cells[node]);
        if cell.mailbox.is_empty() {
            cell.scheduled = false;
            false
        } else {
            true
        }
    };
    if requeue {
        lock_ignore_poison(&shared.queues[w]).push_back(u);
    }
    shared.in_flight.fetch_sub(units, Ordering::Release);
    let processed = shared.processed.fetch_add(units as u64, Ordering::SeqCst) + units as u64;
    if processed > shared.max_events {
        shared.aborted.store(true, Ordering::SeqCst);
    }
}

/// The batched quantum: drains into the recycled [`Scratch`], flushes the
/// buffered sends per destination group and settles the node. Returns one
/// continuation node when the flush produced any wake-ups.
fn process_node_batched<P: Protocol, T: TraceMode>(
    u: u32,
    w: usize,
    shared: &Shared<P, T>,
    metrics: &mut Metrics,
    events: &mut Vec<TraceEvent>,
    scratch: &mut Scratch<P, T>,
) -> Option<u32> {
    let node = u as usize;
    scratch.wake.clear();
    let neighbors = shared.graph.neighbor_slice(NodeId(u));
    if scratch.buckets.len() < neighbors.len() {
        // Grow to this node's degree, never shrink: slots beyond a later
        // node's degree sit empty and cost one `is_empty` test each.
        scratch.buckets.resize_with(neighbors.len(), Vec::new);
    }
    let units = {
        let mut cell = lock_ignore_poison(&shared.cells[node]);
        let start_unit = cell.pending_start;
        cell.pending_start = false;
        let take = cell.mailbox.len().min(shared.batch);
        // Split the cell borrow so the mailbox drain and the protocol
        // handlers can overlap: envelopes are consumed straight out of the
        // mailbox in one pass — no intermediate buffer, no second copy —
        // while the `VecDeque` keeps its capacity inside the cell, so no
        // quantum reallocates anything.
        let NodeCell {
            protocol,
            mailbox,
            started,
            ..
        } = &mut *cell;
        let wake = !*started && (start_unit || take > 0);
        if wake {
            *started = true;
            // A spontaneous wake-up starts a causal chain (depth 0). A node
            // woken by its first message instead inherits that message's
            // depth, exactly like the simulator, so wake-up sends extend the
            // chain that caused them and causal_time agrees across backends.
            let wake_depth = if start_unit {
                0
            } else {
                mailbox.front().map(|e| e.causal_depth).unwrap_or(0)
            };
            let mut ctx = BatchedCtx {
                id: NodeId(u),
                neighbors,
                network_size: shared.n,
                buckets: &mut scratch.buckets,
                current_depth: wake_depth,
            };
            protocol.on_start(&mut ctx);
        }
        // Endpoint columns are charged in batch below (`record_received_batch`
        // after the drain, `record_sent_batch` at the flush); the per-message
        // loop only records what varies per message.
        for envelope in mailbox.drain(..take) {
            metrics.record_payload(
                envelope.msg.kind(),
                envelope.msg.encoded_bits(),
                envelope.causal_depth,
            );
            if T::ENABLED {
                if let Some(tracing) = &shared.trace {
                    // The deliver stamp is drawn after the mailbox drain, which
                    // happens-after the sender's push, which happens-after the
                    // send stamp — so a message's Deliver always outranks its
                    // Send in the merged order. Handlers only append to the
                    // worker-local buckets (Send stamps are assigned after this
                    // loop), so every Deliver of the batch still stamps before
                    // any Send of the batch.
                    events.push(TraceEvent {
                        time: tracing.stamp.fetch_add(1, Ordering::SeqCst),
                        kind: TraceEventKind::Deliver,
                        from: envelope.from,
                        to: NodeId(u),
                        message_kind: envelope.msg.kind().into(),
                        msg_id: T::msg_id(envelope.meta),
                        seq: T::link_seq(envelope.meta),
                    });
                }
            }
            let mut ctx = BatchedCtx {
                id: NodeId(u),
                neighbors,
                network_size: shared.n,
                buckets: &mut scratch.buckets,
                current_depth: envelope.causal_depth,
            };
            protocol.on_message(envelope.from, envelope.msg, &mut ctx);
        }
        let batch_len = take;
        if batch_len > 0 {
            metrics.record_received_batch(node, batch_len as u64);
        }
        // Assign trace identities to this quantum's sends while the source
        // cell (and with it the per-link sequence counters) is still
        // exclusively owned, and before any mailbox push makes the messages
        // visible to other workers. Each bucket holds its link's messages in
        // handler send order, so walking the slots hands out per-link
        // sequence numbers that stay FIFO-faithful — no sort was ever
        // needed, `send` routed by slot already.
        if T::ENABLED {
            if let Some(tracing) = &shared.trace {
                let slots = &mut scratch.buckets[..neighbors.len()];
                for (slot, bucket) in slots.iter_mut().enumerate() {
                    for entry in bucket.iter_mut() {
                        let msg_id = tracing.next_msg_id.fetch_add(1, Ordering::SeqCst);
                        let link_seq = T::next_link_seq(&mut cell.link_seq, slot, neighbors.len());
                        events.push(TraceEvent {
                            time: tracing.stamp.fetch_add(1, Ordering::SeqCst),
                            kind: TraceEventKind::Send,
                            from: NodeId(u),
                            to: neighbors[slot],
                            message_kind: entry.msg.kind().into(),
                            msg_id,
                            seq: link_seq,
                        });
                        entry.meta = T::meta(msg_id, link_seq);
                    }
                }
            }
        }
        // Untraced runs settle here, before the flush and inside this same
        // guard: a mailbox residue keeps the node scheduled (it wakes
        // itself); otherwise `scheduled` drops now and a concurrent sender
        // re-enqueues the node the normal way — no lost wake-up, because
        // senders observe the flag under this very lock. Skipping the
        // post-flush relock is safe because nothing below touches the
        // source cell again: a sibling worker claiming `u` mid-flush only
        // interleaves whole mailbox appends elsewhere, a reordering the
        // delivery model already allows (the simulator's random delay
        // models reorder links too). Traced runs settle *after* the flush
        // instead — a concurrent quantum of `u` could otherwise push later
        // link sequence numbers ahead of this quantum's unflushed ones and
        // fail the auditor's per-link FIFO rule.
        if !T::ENABLED {
            if cell.mailbox.is_empty() {
                cell.scheduled = false;
                // Donate the drained buffer to the worker-local pool instead
                // of parking its high-water capacity in the cell forever; a
                // later sender takes one back sized to its burst.
                if cell.mailbox.capacity() > 0 {
                    scratch.mailboxes.donate(std::mem::take(&mut cell.mailbox));
                }
            } else {
                scratch.wake.push(u);
            }
        }
        start_unit as i64 + batch_len as i64
    };
    // Flush the buckets with the source cell unlocked (never two cell locks
    // at once — the lock order between two talking nodes would otherwise
    // deadlock). On traced runs the source stays exclusively ours via
    // `scheduled` until the post-flush settle below.
    {
        let slots = &mut scratch.buckets[..neighbors.len()];
        let total: usize = slots.iter().map(Vec::len).sum();
        if total > 0 {
            // Count the whole flush before any of its messages becomes
            // visible — one RMW per quantum instead of one per message.
            //
            // Relaxed suffices here: `in_flight` is only *read* for the
            // zero-test in `worker_loop`, and zero is reliable on its own
            // modification order. Every message's increment precedes its
            // consumer's decrement in that order (the increment precedes the
            // mailbox push in the sender's program order; the consumer's
            // decrement follows draining that push, which the dest-cell mutex
            // orders after it), and the final decrement of each quantum
            // (Release, below) follows the increments of every message that
            // quantum produced. So the counter's value only touches zero when
            // no undelivered message and no unfinished quantum exists — at
            // which point nothing can ever increment it again, because new
            // work is only created from inside quanta. A zero read is
            // therefore never transient, whatever its ordering.
            shared.in_flight.fetch_add(total as i64, Ordering::Relaxed);
            metrics.record_sent_batch(node, total as u64);
            // Warm every destination cell before taking any lock: the
            // indices are effectively random, so each bucket's first touch
            // would otherwise stall on a cold cache line inside the critical
            // section. The relaxed poison-flag load shares its line with the
            // cell's lock word, and issuing all of them back-to-back lets
            // the misses overlap instead of serialising one per bucket.
            for (slot, bucket) in slots.iter().enumerate() {
                if !bucket.is_empty() {
                    std::hint::black_box(shared.cells[neighbors[slot].index()].is_poisoned());
                }
            }
            for (slot, bucket) in slots.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let dest = neighbors[slot];
                let needs_enqueue = {
                    // One destination-cell lock per *bucket*: everything this
                    // quantum sent down the link lands under one guard.
                    let mut cell = lock_ignore_poison(&shared.cells[dest.index()]);
                    // Waking an unallocated mailbox: reuse a recycled buffer
                    // sized to this burst rather than growing a fresh one.
                    if cell.mailbox.capacity() == 0 {
                        cell.mailbox = scratch.mailboxes.take(bucket.len());
                    }
                    for entry in bucket.drain(..) {
                        cell.mailbox.push_back(Envelope {
                            from: NodeId(u),
                            msg: entry.msg,
                            causal_depth: entry.causal_depth,
                            meta: entry.meta,
                        });
                    }
                    if cell.scheduled {
                        false
                    } else {
                        cell.scheduled = true;
                        true
                    }
                };
                if needs_enqueue {
                    scratch.wake.push(dest.0);
                }
            }
        }
    }
    // Traced runs settle here, after the flush (see the pre-flush comment):
    // keep the node runnable if messages arrived meanwhile.
    if T::ENABLED {
        let mut cell = lock_ignore_poison(&shared.cells[node]);
        if cell.mailbox.is_empty() {
            cell.scheduled = false;
            if cell.mailbox.capacity() > 0 {
                scratch.mailboxes.donate(std::mem::take(&mut cell.mailbox));
            }
        } else {
            scratch.wake.push(u);
        }
    }
    // A single wake-up is the wave pattern (one message in, one message
    // out): hand it straight back as the worker's continuation — the flush
    // already owns it exclusively (`scheduled` is set and it sits in no
    // queue), skipping the queue round-trip. Several wake-ups are the flood
    // pattern instead: publish them all under one run-queue lock and let the
    // queue interleave destinations, so their mailboxes accumulate into
    // fatter quanta than chasing any one of them immediately would find.
    let next = if scratch.wake.len() == 1 {
        scratch.wake.pop()
    } else {
        None
    };
    if !scratch.wake.is_empty() {
        lock_ignore_poison(&shared.queues[w]).extend(scratch.wake.drain(..));
    }
    // Only now give the processed units back — every send above is already
    // counted (and the continuation's mailbox still holds its counted
    // messages), so the counter never dips to zero early. The give-back is
    // deferred to the chain's single Release `fetch_sub` in `worker_loop`:
    // deferral only keeps `in_flight` elevated longer, which can delay the
    // idle zero-test but never satisfy it spuriously.
    scratch.in_flight_debt += units;
    scratch.processed_local += units as u64;
    if scratch.processed_local >= PROCESSED_STRIDE {
        flush_processed(shared, &mut scratch.processed_local);
    }
    next
}

/// How many locally-counted processed units a worker accumulates before
/// folding them into the shared `processed` counter. The event cap must
/// still fire *inside* a continuation chain — a ping-pong pair is one
/// endless chain, so a chain-end-only flush would never run — hence the
/// small bound: the cap overshoots by at most `PROCESSED_STRIDE` units per
/// worker instead of firing on the exact unit, which the cap (a safety
/// valve, not an accounting figure) tolerates.
const PROCESSED_STRIDE: u64 = 64;

/// Folds a worker's locally-accumulated processed units into the shared
/// counter and trips the abort flag when the event cap is crossed. Relaxed
/// suffices for the counter: it is monotone and only compared against a
/// threshold, and the `aborted` flag carries its own SeqCst ordering.
fn flush_processed<P: Protocol, T: TraceMode>(shared: &Shared<P, T>, local: &mut u64) {
    if *local == 0 {
        return;
    }
    let processed = shared.processed.fetch_add(*local, Ordering::Relaxed) + *local;
    *local = 0;
    if processed > shared.max_events {
        shared.aborted.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};
    use crate::testutil::{flood, Token};
    use mdst_graph::generators;

    #[test]
    fn flood_terminates_and_reaches_everyone() {
        let g = Arc::new(generators::gnp_connected(60, 0.1, 4).unwrap());
        let run = PoolRuntime::run(&g, flood, &PoolConfig::default()).unwrap();
        assert_eq!(run.status, ExecStatus::Quiesced);
        assert_eq!(run.nodes.len(), 60);
        assert!(run.nodes.iter().all(|p| p.seen));
        assert!(run.metrics.messages_total >= 59);
    }

    #[test]
    fn message_totals_match_the_simulator_for_deterministic_protocols() {
        let g = Arc::new(generators::path(16).unwrap());
        let run = PoolRuntime::run(&g, flood, &PoolConfig::default()).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), flood).unwrap();
        sim.run().unwrap();
        assert_eq!(run.metrics.messages_total, sim.metrics().messages_total);
        assert_eq!(run.metrics.causal_time, sim.metrics().causal_time);
        assert_eq!(run.metrics.bits_total, sim.metrics().bits_total);
        let sent: u64 = run.metrics.sent_per_node.iter().sum();
        let received: u64 = run.metrics.received_per_node.iter().sum();
        assert_eq!(sent, run.metrics.messages_total);
        assert_eq!(received, run.metrics.messages_total);
    }

    #[test]
    fn single_worker_pool_is_effectively_sequential_and_correct() {
        let g = Arc::new(generators::complete(9).unwrap());
        let run = PoolRuntime::run(
            &g,
            flood,
            &PoolConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.workers, 1);
        assert!(run.nodes.iter().all(|p| p.seen));
    }

    #[test]
    fn worker_count_is_clamped_to_the_node_count() {
        let g = Arc::new(generators::path(3).unwrap());
        let run = PoolRuntime::run(
            &g,
            flood,
            &PoolConfig {
                workers: 512,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.workers, 3);
    }

    #[test]
    fn selected_start_wakes_only_the_initiators() {
        struct Counter {
            started_spontaneously: bool,
        }
        #[derive(Debug, Clone)]
        struct Ping;
        impl NetMessage for Ping {
            fn kind(&self) -> &'static str {
                "Ping"
            }
            fn encoded_bits(&self) -> usize {
                8
            }
        }
        impl Protocol for Counter {
            type Message = Ping;
            fn on_start(&mut self, _ctx: &mut dyn Context<Ping>) {
                self.started_spontaneously = true;
            }
            fn on_message(&mut self, _: NodeId, _: Ping, _: &mut dyn Context<Ping>) {}
        }
        let g = Arc::new(generators::path(5).unwrap());
        let run = PoolRuntime::run(
            &g,
            |_, _| Counter {
                started_spontaneously: false,
            },
            &PoolConfig {
                start: StartModel::Selected(vec![NodeId(2)]),
                ..Default::default()
            },
        )
        .unwrap();
        // A silent protocol: only the selected node ever runs on_start.
        let started: Vec<bool> = run.nodes.iter().map(|p| p.started_spontaneously).collect();
        assert_eq!(started, vec![false, false, true, false, false]);
        assert_eq!(run.metrics.messages_total, 0);
    }

    #[test]
    fn invalid_start_models_are_rejected_at_construction() {
        let g = Arc::new(generators::path(4).unwrap());
        let cases = [
            StartModel::Selected(Vec::new()),
            StartModel::Selected(vec![NodeId(0), NodeId(9)]),
            StartModel::Staggered {
                max_offset: 10,
                seed: 1,
            },
        ];
        for start in cases {
            let err = PoolRuntime::run(
                &g,
                flood,
                &PoolConfig {
                    start: start.clone(),
                    ..Default::default()
                },
            )
            .err()
            .unwrap_or_else(|| panic!("{start:?} must be rejected"));
            assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn message_wakeups_inherit_the_waking_message_depth_like_the_simulator() {
        // Every node announces to all neighbours from on_start. Under a
        // single-initiator start the announcement wave's causal chain grows
        // one hop per node, and the pool must account it exactly like the
        // simulator: a wake-up send extends the chain that caused it.
        struct Announce;
        impl Protocol for Announce {
            type Message = Token;
            fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
                let targets: Vec<NodeId> = ctx.neighbors().to_vec();
                let n = ctx.network_size();
                for t in targets {
                    ctx.send(t, Token { n });
                }
            }
            fn on_message(&mut self, _: NodeId, _: Token, _: &mut dyn Context<Token>) {}
        }
        let g = Arc::new(generators::path(6).unwrap());
        let start = StartModel::Selected(vec![NodeId(0)]);
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                start: start.clone(),
                ..Default::default()
            },
            |_, _| Announce,
        )
        .unwrap();
        sim.run().unwrap();
        let pool = PoolRuntime::run(
            &g,
            |_, _| Announce,
            &PoolConfig {
                start,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pool.metrics.messages_total, sim.metrics().messages_total);
        assert_eq!(
            pool.metrics.causal_time,
            sim.metrics().causal_time,
            "wake-up sends must extend the waking message's causal chain"
        );
    }

    #[test]
    fn event_cap_aborts_instead_of_hanging() {
        // A ping-pong pair that never terminates: the cap must fire.
        struct PingPong;
        #[derive(Debug, Clone)]
        struct Ball;
        impl NetMessage for Ball {
            fn kind(&self) -> &'static str {
                "Ball"
            }
            fn encoded_bits(&self) -> usize {
                8
            }
        }
        impl Protocol for PingPong {
            type Message = Ball;
            fn on_start(&mut self, ctx: &mut dyn Context<Ball>) {
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(1), Ball);
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: Ball, ctx: &mut dyn Context<Ball>) {
                ctx.send(from, Ball);
            }
        }
        let g = Arc::new(generators::path(2).unwrap());
        let run = PoolRuntime::run(
            &g,
            |_, _| PingPong,
            &PoolConfig {
                max_events: 500,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.status, ExecStatus::EventLimitExceeded);
    }

    #[test]
    fn fifo_is_preserved_per_link() {
        #[derive(Debug, Clone)]
        struct Numbered(u64);
        impl NetMessage for Numbered {
            fn kind(&self) -> &'static str {
                "Numbered"
            }
            fn encoded_bits(&self) -> usize {
                64
            }
        }
        enum Role {
            Sender,
            Receiver(Vec<u64>),
        }
        struct FifoProbe(Role);
        impl Protocol for FifoProbe {
            type Message = Numbered;
            fn on_start(&mut self, ctx: &mut dyn Context<Numbered>) {
                if let Role::Sender = self.0 {
                    if ctx.id() == NodeId(0) {
                        for i in 0..500 {
                            ctx.send(NodeId(1), Numbered(i));
                        }
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, msg: Numbered, _: &mut dyn Context<Numbered>) {
                if let Role::Receiver(got) = &mut self.0 {
                    got.push(msg.0);
                }
            }
        }
        let g = Arc::new(generators::path(2).unwrap());
        let run = PoolRuntime::run(
            &g,
            |id, _| {
                if id == NodeId(0) {
                    FifoProbe(Role::Sender)
                } else {
                    FifoProbe(Role::Receiver(Vec::new()))
                }
            },
            &PoolConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let Role::Receiver(got) = &run.nodes[1].0 else {
            panic!("node 1 is the receiver");
        };
        let expected: Vec<u64> = (0..500).collect();
        assert_eq!(got, &expected, "per-link FIFO order must survive stealing");
    }

    #[test]
    fn traced_run_merges_per_worker_buffers_in_stamp_order() {
        use crate::trace::TraceEventKind;
        use std::collections::{HashMap, HashSet};
        let g = Arc::new(generators::gnp_connected(40, 0.15, 11).unwrap());
        let run = PoolRuntime::run(
            &g,
            flood,
            &PoolConfig {
                workers: 4,
                record_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(run.trace.is_enabled());
        let events = run.trace.events();
        let sends = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Send)
            .count();
        let delivers = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Deliver)
            .count();
        assert_eq!(sends, delivers, "reliable network: every send delivered");
        assert_eq!(delivers as u64, run.metrics.messages_total);
        // Unique stamps, send-before-deliver, and per-link FIFO by seq.
        let mut sent: HashSet<u64> = HashSet::new();
        let mut last_seq: HashMap<(usize, usize), u64> = HashMap::new();
        for pair in events.windows(2) {
            assert!(pair[0].time < pair[1].time, "stamps must be unique");
        }
        for event in events {
            match event.kind {
                TraceEventKind::Send => {
                    assert!(sent.insert(event.msg_id), "msg ids are unique");
                }
                TraceEventKind::Deliver => {
                    assert!(sent.contains(&event.msg_id), "deliver after send");
                    let link = (event.from.index(), event.to.index());
                    if let Some(&prev) = last_seq.get(&link) {
                        assert!(event.seq > prev, "per-link FIFO inversion");
                    }
                    last_seq.insert(link, event.seq);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn untraced_run_returns_the_disabled_recorder() {
        let g = Arc::new(generators::path(4).unwrap());
        let run = PoolRuntime::run(&g, flood, &PoolConfig::default()).unwrap();
        assert!(!run.trace.is_enabled());
        assert!(run.trace.events().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn sending_to_a_non_neighbour_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Message = Token;
            fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
                ctx.send(NodeId(2), Token { n: 3 });
            }
            fn on_message(&mut self, _: NodeId, _: Token, _: &mut dyn Context<Token>) {}
        }
        let g = Arc::new(generators::path(3).unwrap());
        // Node 0's only neighbour is node 1; the send panics on a worker and
        // the scope propagates it.
        let _ = PoolRuntime::run(&g, |_, _| Bad, &PoolConfig::default()).unwrap();
    }
}
