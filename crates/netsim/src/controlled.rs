//! Step-controlled execution: the runtime hook behind the `mdst-check`
//! model checker.
//!
//! The discrete-event [`crate::sim::Simulator`] owns its schedule (a
//! time-ordered event queue); a model checker needs the opposite: the
//! network holds still and an *external* scheduler asks "which events are
//! enabled right now?" and picks exactly one to apply. [`ControlledNet`]
//! is that runtime. It keeps the same network model as the simulator —
//! bidirectional FIFO links, atomic message handlers, crash-stop faults,
//! messages to a crashed node silently lost — but exposes the enabled-event
//! set ([`ControlledNet::enabled_events`] / [`ControlledNet::fault_events`])
//! and applies one chosen [`ControlledEvent`] at a time, so a driver can
//! branch over *every* delivery interleaving rather than sample one.
//!
//! Two properties make exhaustive exploration practical:
//!
//! * the net is [`Clone`] (for `P: Clone`), so a DFS can snapshot a state
//!   before branching; and
//! * [`ControlledNet::fingerprint`] hashes the complete behavioural state
//!   (node automata, started/crashed flags, per-link FIFO queues) into a
//!   128-bit canonical fingerprint (for `P: Hash`), so revisited states can
//!   be pruned soundly.
//!
//! The event vocabulary is serializable, which is what makes recorded
//! counterexample schedules replayable artifacts.

use crate::message::NetMessage;
use crate::protocol::{Context, Protocol};
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};
use mdst_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One schedulable event of a step-controlled execution.
///
/// `Start` and `Deliver` are the normal protocol events; `Crash` and
/// `Drop` are the optional fault branches (crash-stop a node, lose the
/// head-of-queue message of one link). The enum is serializable so recorded
/// schedules (counterexamples) survive a round trip through JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ControlledEvent {
    /// Wake node up (calls `Protocol::on_start`).
    Start {
        /// The node to start.
        node: NodeId,
    },
    /// Deliver the head-of-queue message of the FIFO link `from → to`.
    Deliver {
        /// Sending endpoint of the link.
        from: NodeId,
        /// Receiving endpoint of the link.
        to: NodeId,
    },
    /// Crash-stop a node: its state freezes, queued and future messages to
    /// it are lost, messages it already sent stay in flight.
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Lose the head-of-queue message of the FIFO link `from → to`
    /// (single-message loss).
    Drop {
        /// Sending endpoint of the link.
        from: NodeId,
        /// Receiving endpoint of the link.
        to: NodeId,
    },
}

impl fmt::Display for ControlledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlledEvent::Start { node } => write!(f, "start {node}"),
            ControlledEvent::Deliver { from, to } => write!(f, "deliver {from}->{to}"),
            ControlledEvent::Crash { node } => write!(f, "crash {node}"),
            ControlledEvent::Drop { from, to } => write!(f, "drop {from}->{to}"),
        }
    }
}

/// Error applying a [`ControlledEvent`] that is not enabled in the current
/// state (replaying a stale or corrupted schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotEnabled {
    /// The rejected event.
    pub event: ControlledEvent,
    /// Why it is not enabled.
    pub reason: String,
}

impl fmt::Display for NotEnabled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event `{}` is not enabled: {}", self.event, self.reason)
    }
}

impl std::error::Error for NotEnabled {}

/// How nodes wake up in a controlled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartDiscipline {
    /// Every node's `on_start` runs during construction, in id order, before
    /// any delivery. Sound whenever spontaneous wake-ups commute (e.g. the
    /// MDegST improvement, where only the initial root acts on start), and
    /// it avoids branching over 2^n no-op start orders.
    #[default]
    Eager,
    /// Starts are explicit [`ControlledEvent::Start`] events the scheduler
    /// interleaves with deliveries — the fully general (and far more
    /// expensive) discipline, for protocols whose wake-up order matters.
    /// A message arriving at a never-started node still triggers `on_start`
    /// first, matching the simulator's convention.
    Lazy,
}

struct CtlCtx<'a, M> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    outbox: Vec<(NodeId, M)>,
}

impl<M: crate::message::NetMessage> Context<M> for CtlCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        self.outbox.push((to, msg));
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// One in-flight message with its trace identity. The ids are sentinel
/// zeros when the net is not recording a trace, so untraced explorations
/// carry no extra bookkeeping beyond two dead `u64`s per message.
#[derive(Debug, Clone)]
struct Flight<M> {
    msg: M,
    msg_id: u64,
    seq: u64,
}

/// A step-controlled network execution. See the module documentation.
pub struct ControlledNet<P: Protocol> {
    graph: Arc<Graph>,
    nodes: Vec<P>,
    started: Vec<bool>,
    crashed: Vec<bool>,
    /// Per-directed-link FIFO queues; only non-empty queues are present, so
    /// the map itself is part of the canonical state.
    queues: BTreeMap<(NodeId, NodeId), VecDeque<Flight<P::Message>>>,
    discipline: StartDiscipline,
    delivered: u64,
    dropped: u64,
    trace: TraceRecorder,
    /// Logical clock for trace stamps: bumped once per recorded event, so a
    /// controlled trace is totally ordered by the order events were applied.
    clock: u64,
    next_msg_id: u64,
    link_seq: BTreeMap<(NodeId, NodeId), u64>,
}

impl<P: Protocol + Clone> Clone for ControlledNet<P>
where
    P::Message: Clone,
{
    fn clone(&self) -> Self {
        ControlledNet {
            graph: Arc::clone(&self.graph),
            nodes: self.nodes.clone(),
            started: self.started.clone(),
            crashed: self.crashed.clone(),
            queues: self.queues.clone(),
            discipline: self.discipline,
            delivered: self.delivered,
            dropped: self.dropped,
            trace: self.trace.clone(),
            clock: self.clock,
            next_msg_id: self.next_msg_id,
            link_seq: self.link_seq.clone(),
        }
    }
}

impl<P: Protocol> ControlledNet<P> {
    /// Creates a controlled execution of one protocol instance per node.
    /// Under [`StartDiscipline::Eager`] every node is started immediately
    /// (in id order); under [`StartDiscipline::Lazy`] starts become
    /// schedulable events.
    pub fn new(
        graph: &Arc<Graph>,
        discipline: StartDiscipline,
        factory: impl FnMut(NodeId, &[NodeId]) -> P,
    ) -> Self {
        Self::new_traced(graph, discipline, false, factory)
    }

    /// Like [`ControlledNet::new`], optionally recording an auditable
    /// execution trace. When `record_trace` is set every send, delivery,
    /// drop and crash applied through the net is stamped (logical clock,
    /// run-unique message id, per-directed-link sequence number) exactly
    /// like the other backends, so a scheduler-driven interleaving can be
    /// fed to the `mdst-analysis` happens-before auditor.
    pub fn new_traced(
        graph: &Arc<Graph>,
        discipline: StartDiscipline,
        record_trace: bool,
        mut factory: impl FnMut(NodeId, &[NodeId]) -> P,
    ) -> Self {
        let n = graph.node_count();
        let nodes = (0..n)
            .map(|u| factory(NodeId::new(u), graph.neighbor_slice(NodeId::new(u))))
            .collect();
        let mut net = ControlledNet {
            graph: Arc::clone(graph),
            nodes,
            started: vec![false; n],
            crashed: vec![false; n],
            queues: BTreeMap::new(),
            discipline,
            delivered: 0,
            dropped: 0,
            trace: if record_trace {
                TraceRecorder::enabled()
            } else {
                TraceRecorder::disabled()
            },
            clock: 0,
            next_msg_id: 1,
            link_seq: BTreeMap::new(),
        };
        if discipline == StartDiscipline::Eager {
            for u in 0..n {
                net.start_node(NodeId::new(u));
            }
        }
        net
    }

    /// The execution trace recorded so far (disabled unless the net was
    /// built with [`ControlledNet::new_traced`]).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Consumes the net and returns the recorded trace.
    pub fn into_trace(self) -> TraceRecorder {
        self.trace
    }

    /// Draws the next logical stamp and records one trace event (no-op when
    /// the recorder is disabled; the clock still has to advance only when
    /// recording, so gate the call on [`TraceRecorder::is_enabled`]).
    fn record(
        &mut self,
        kind: TraceEventKind,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        ids: (u64, u64),
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        let time = self.clock;
        self.clock += 1;
        self.trace.record(TraceEvent {
            time,
            kind,
            from,
            to,
            message_kind: label.into(),
            msg_id: ids.0,
            seq: ids.1,
        });
    }

    /// The shared topology.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The node automata (crashed nodes keep their frozen state).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Which nodes have crash-stopped.
    pub fn crashed(&self) -> &[bool] {
        &self.crashed
    }

    /// Which nodes have started.
    pub fn started(&self) -> &[bool] {
        &self.started
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages lost so far (explicit drops, crash purges and sends to
    /// already-crashed nodes).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of in-flight messages across all links.
    pub fn in_flight(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// The protocol events enabled in this state, in a deterministic order:
    /// pending starts (lazy discipline only, by node id), then one delivery
    /// per non-empty link (head of the FIFO queue, by `(from, to)`).
    pub fn enabled_events(&self) -> Vec<ControlledEvent> {
        let mut events = Vec::new();
        if self.discipline == StartDiscipline::Lazy {
            for u in 0..self.nodes.len() {
                if !self.started[u] && !self.crashed[u] {
                    events.push(ControlledEvent::Start {
                        node: NodeId::new(u),
                    });
                }
            }
        }
        for &(from, to) in self.queues.keys() {
            events.push(ControlledEvent::Deliver { from, to });
        }
        events
    }

    /// The fault branches available in this state, in a deterministic
    /// order: crash any live node (by id), then lose any head-of-queue
    /// message (by link). The caller decides whether its fault budget
    /// admits them; the net itself never injects faults.
    pub fn fault_events(&self) -> Vec<ControlledEvent> {
        let mut events = Vec::new();
        for u in 0..self.nodes.len() {
            if !self.crashed[u] {
                events.push(ControlledEvent::Crash {
                    node: NodeId::new(u),
                });
            }
        }
        for &(from, to) in self.queues.keys() {
            events.push(ControlledEvent::Drop { from, to });
        }
        events
    }

    /// Whether no protocol event is enabled (the network is quiescent).
    pub fn is_quiescent(&self) -> bool {
        self.enabled_events().is_empty()
    }

    /// Whether every non-crashed node reports local termination.
    pub fn all_live_terminated(&self) -> bool {
        self.nodes
            .iter()
            .zip(&self.crashed)
            .all(|(p, &dead)| dead || p.is_terminated())
    }

    /// Applies one event, which must be enabled in the current state.
    pub fn apply(&mut self, event: ControlledEvent) -> Result<(), NotEnabled> {
        let fail = |reason: &str| NotEnabled {
            event,
            reason: reason.to_string(),
        };
        match event {
            ControlledEvent::Start { node } => {
                if self.discipline != StartDiscipline::Lazy {
                    return Err(fail("starts are implicit under the eager discipline"));
                }
                let u = node.index();
                if u >= self.nodes.len() {
                    return Err(fail("no such node"));
                }
                if self.started[u] {
                    return Err(fail("already started"));
                }
                if self.crashed[u] {
                    return Err(fail("node has crashed"));
                }
                self.start_node(node);
                Ok(())
            }
            ControlledEvent::Deliver { from, to } => {
                let flight = self
                    .queues
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .ok_or_else(|| fail("no message in flight on this link"))?;
                if self.queues[&(from, to)].is_empty() {
                    self.queues.remove(&(from, to));
                }
                self.delivered += 1;
                let Flight { msg, msg_id, seq } = flight;
                self.record(TraceEventKind::Deliver, from, to, msg.kind(), (msg_id, seq));
                // A message reaching a never-started node wakes it first,
                // matching the simulator's convention.
                if !self.started[to.index()] {
                    self.start_node(to);
                }
                let mut ctx = CtlCtx {
                    id: to,
                    neighbors: self.graph.neighbor_slice(to),
                    network_size: self.nodes.len(),
                    outbox: Vec::new(),
                };
                self.nodes[to.index()].on_message(from, msg, &mut ctx);
                let outbox = ctx.outbox;
                self.enqueue_outbox(to, outbox);
                Ok(())
            }
            ControlledEvent::Crash { node } => {
                let u = node.index();
                if u >= self.nodes.len() {
                    return Err(fail("no such node"));
                }
                if self.crashed[u] {
                    return Err(fail("already crashed"));
                }
                self.crashed[u] = true;
                self.record(TraceEventKind::Crash, node, node, "crash", (0, 0));
                // Messages to a corpse can never be observed: purge them now
                // so they do not inflate the state space. Messages *from* the
                // node stay in flight (they were sent before the crash).
                let doomed: Vec<(NodeId, NodeId)> = self
                    .queues
                    .keys()
                    .filter(|&&(_, to)| to == node)
                    .copied()
                    .collect();
                for key in doomed {
                    if let Some(q) = self.queues.remove(&key) {
                        self.dropped += q.len() as u64;
                        for flight in q {
                            self.record(
                                TraceEventKind::Drop,
                                key.0,
                                key.1,
                                flight.msg.kind(),
                                (flight.msg_id, flight.seq),
                            );
                        }
                    }
                }
                Ok(())
            }
            ControlledEvent::Drop { from, to } => {
                let flight = self
                    .queues
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .ok_or_else(|| fail("no message in flight on this link"))?;
                if self.queues[&(from, to)].is_empty() {
                    self.queues.remove(&(from, to));
                }
                self.dropped += 1;
                self.record(
                    TraceEventKind::Drop,
                    from,
                    to,
                    flight.msg.kind(),
                    (flight.msg_id, flight.seq),
                );
                Ok(())
            }
        }
    }

    fn start_node(&mut self, node: NodeId) {
        let u = node.index();
        debug_assert!(!self.started[u] && !self.crashed[u]);
        self.started[u] = true;
        let mut ctx = CtlCtx {
            id: node,
            neighbors: self.graph.neighbor_slice(node),
            network_size: self.nodes.len(),
            outbox: Vec::new(),
        };
        self.nodes[u].on_start(&mut ctx);
        let outbox = ctx.outbox;
        self.enqueue_outbox(node, outbox);
    }

    fn enqueue_outbox(&mut self, from: NodeId, outbox: Vec<(NodeId, P::Message)>) {
        for (to, msg) in outbox {
            let (msg_id, seq) = if self.trace.is_enabled() {
                let id = self.next_msg_id;
                self.next_msg_id += 1;
                let slot = self.link_seq.entry((from, to)).or_insert(0);
                let seq = *slot;
                *slot += 1;
                (id, seq)
            } else {
                (0, 0)
            };
            self.record(TraceEventKind::Send, from, to, msg.kind(), (msg_id, seq));
            if self.crashed[to.index()] {
                self.dropped += 1;
                self.record(TraceEventKind::Drop, from, to, msg.kind(), (msg_id, seq));
                continue;
            }
            self.queues
                .entry((from, to))
                .or_default()
                .push_back(Flight { msg, msg_id, seq });
        }
    }
}

impl<P: Protocol + Hash> ControlledNet<P>
where
    P::Message: Hash,
{
    /// Canonical 128-bit fingerprint of the behavioural state: node automata,
    /// started/crashed flags and the per-link in-flight queues. Two states
    /// with equal fingerprints behave identically on every future schedule
    /// (up to hash collisions, which the 128-bit width makes negligible at
    /// model-checking scale), so a checker may prune revisits on it. The
    /// delivery/drop counters are deliberately excluded — they do not affect
    /// future behaviour.
    pub fn fingerprint(&self) -> u128 {
        let mut lo = std::collections::hash_map::DefaultHasher::new();
        let mut hi = std::collections::hash_map::DefaultHasher::new();
        // Distinct prefixes decorrelate the two 64-bit halves.
        lo.write_u8(0x1d);
        hi.write_u8(0xb2);
        for h in [&mut lo, &mut hi] {
            self.started.hash(h);
            self.crashed.hash(h);
            self.nodes.len().hash(h);
            for node in &self.nodes {
                node.hash(h);
            }
            self.queues.len().hash(h);
            for ((from, to), q) in &self.queues {
                from.hash(h);
                to.hash(h);
                q.len().hash(h);
                // Only the message content is behavioural state; the trace
                // identities (msg_id/seq) differ between schedules that reach
                // the same state and must not split the fingerprint.
                for flight in q {
                    flight.msg.hash(h);
                }
            }
        }
        ((lo.finish() as u128) << 64) | hi.finish() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits::message_bits;
    use crate::message::NetMessage;
    use mdst_graph::generators;

    /// Token-passing toy protocol: node 0 emits a token on start; every
    /// receiver forwards it to its successor (mod n) until it has gone
    /// around once.
    #[derive(Debug, Clone, Hash, PartialEq, Eq)]
    struct Token(u32);

    impl NetMessage for Token {
        fn kind(&self) -> &'static str {
            "Token"
        }
        fn encoded_bits(&self) -> usize {
            message_bits(8, 1)
        }
    }

    #[derive(Debug, Clone, Hash)]
    struct Ring {
        id: NodeId,
        n: usize,
        seen: bool,
    }

    impl Ring {
        fn next(&self) -> NodeId {
            NodeId::new((self.id.index() + 1) % self.n)
        }
    }

    impl Protocol for Ring {
        type Message = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            if self.id == NodeId(0) {
                let next = self.next();
                ctx.send(next, Token(0));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            self.seen = true;
            if self.next() != NodeId(0) || msg.0 == 0 {
                // Forward until the token returns to its origin's successor.
                if msg.0 + 1 < self.n as u32 {
                    let next = self.next();
                    ctx.send(next, Token(msg.0 + 1));
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.seen
        }
    }

    fn ring(n: usize) -> (Arc<Graph>, ControlledNet<Ring>) {
        let graph = Arc::new(generators::cycle(n).unwrap());
        let net = ControlledNet::new(&graph, StartDiscipline::Eager, |id, _| Ring {
            id,
            n,
            seen: false,
        });
        (graph, net)
    }

    #[test]
    fn eager_start_enqueues_the_initiators_messages() {
        let (_, net) = ring(4);
        assert_eq!(net.in_flight(), 1);
        let events = net.enabled_events();
        assert_eq!(
            events,
            vec![ControlledEvent::Deliver {
                from: NodeId(0),
                to: NodeId(1)
            }]
        );
        assert!(!net.is_quiescent());
    }

    #[test]
    fn token_ring_quiesces_under_the_only_schedule() {
        let (_, mut net) = ring(4);
        let mut steps = 0;
        while let Some(&event) = net.enabled_events().first() {
            net.apply(event).unwrap();
            steps += 1;
            assert!(steps < 10, "ring must quiesce");
        }
        assert!(net.is_quiescent());
        assert_eq!(net.delivered(), 3);
        assert!(net.nodes().iter().skip(1).all(|p| p.seen));
    }

    #[test]
    fn lazy_discipline_exposes_starts_as_events() {
        let graph = Arc::new(generators::cycle(3).unwrap());
        let mut net = ControlledNet::new(&graph, StartDiscipline::Lazy, |id, _| Ring {
            id,
            n: 3,
            seen: false,
        });
        let events = net.enabled_events();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0], ControlledEvent::Start { node } if node == NodeId(0)));
        // Starting node 1 first is a no-op; node 0 then emits the token.
        net.apply(ControlledEvent::Start { node: NodeId(1) })
            .unwrap();
        assert_eq!(net.in_flight(), 0);
        net.apply(ControlledEvent::Start { node: NodeId(0) })
            .unwrap();
        assert_eq!(net.in_flight(), 1);
        // A delivery to the never-started node 2 wakes it implicitly... but
        // first the token must reach it; deliver 0->1 then 1->2.
        net.apply(ControlledEvent::Deliver {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        net.apply(ControlledEvent::Deliver {
            from: NodeId(1),
            to: NodeId(2),
        })
        .unwrap();
        assert!(net.started()[2], "delivery wakes a never-started node");
        // Replaying a consumed start is rejected.
        let err = net
            .apply(ControlledEvent::Start { node: NodeId(0) })
            .unwrap_err();
        assert!(err.to_string().contains("already started"));
    }

    #[test]
    fn fifo_order_is_preserved_per_link() {
        // A protocol that sends two tokens over the same link must see them
        // delivered in order.
        #[derive(Debug, Clone, Hash)]
        struct Burst {
            id: NodeId,
            got: Vec<u32>,
        }
        impl Protocol for Burst {
            type Message = Token;
            fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
                if self.id == NodeId(0) {
                    ctx.send(NodeId(1), Token(1));
                    ctx.send(NodeId(1), Token(2));
                }
            }
            fn on_message(&mut self, _f: NodeId, msg: Token, _c: &mut dyn Context<Token>) {
                self.got.push(msg.0);
            }
        }
        let graph = Arc::new(generators::path(2).unwrap());
        let mut net = ControlledNet::new(&graph, StartDiscipline::Eager, |id, _| Burst {
            id,
            got: Vec::new(),
        });
        assert_eq!(net.in_flight(), 2);
        // Only one delivery event is enabled for the link: its queue head.
        assert_eq!(net.enabled_events().len(), 1);
        let d = ControlledEvent::Deliver {
            from: NodeId(0),
            to: NodeId(1),
        };
        net.apply(d).unwrap();
        net.apply(d).unwrap();
        assert_eq!(net.nodes()[1].got, vec![1, 2]);
        let err = net.apply(d).unwrap_err();
        assert!(err.to_string().contains("no message in flight"));
    }

    #[test]
    fn crash_purges_incoming_queues_and_swallows_future_sends() {
        let (_, mut net) = ring(4);
        assert_eq!(net.in_flight(), 1);
        net.apply(ControlledEvent::Crash { node: NodeId(1) })
            .unwrap();
        assert_eq!(net.in_flight(), 0, "queued message to the corpse purged");
        assert_eq!(net.dropped(), 1);
        assert!(net.is_quiescent());
        assert!(!net.all_live_terminated(), "live nodes never saw the token");
        // Crashing twice is rejected.
        assert!(net
            .apply(ControlledEvent::Crash { node: NodeId(1) })
            .is_err());
    }

    #[test]
    fn drop_loses_exactly_the_head_of_one_link() {
        let (_, mut net) = ring(5);
        net.apply(ControlledEvent::Drop {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        assert_eq!(net.dropped(), 1);
        assert!(net.is_quiescent(), "the token is gone; nothing else moves");
    }

    #[test]
    fn fingerprints_agree_on_confluent_states_and_differ_otherwise() {
        // Two independent in-flight messages: delivering them in either
        // order reaches the same state, and the fingerprints agree.
        #[derive(Debug, Clone, Hash)]
        struct TwoWay {
            id: NodeId,
            got: u32,
        }
        impl Protocol for TwoWay {
            type Message = Token;
            fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
                if self.id == NodeId(1) {
                    ctx.send(NodeId(0), Token(7));
                    ctx.send(NodeId(2), Token(9));
                }
            }
            fn on_message(&mut self, _f: NodeId, msg: Token, _c: &mut dyn Context<Token>) {
                self.got += msg.0;
            }
        }
        let graph = Arc::new(generators::path(3).unwrap());
        let make = || {
            ControlledNet::new(&graph, StartDiscipline::Eager, |id, _| TwoWay {
                id,
                got: 0,
            })
        };
        let (a_first, b_first) = (make(), make());
        let d01 = ControlledEvent::Deliver {
            from: NodeId(1),
            to: NodeId(0),
        };
        let d12 = ControlledEvent::Deliver {
            from: NodeId(1),
            to: NodeId(2),
        };
        let mut a = a_first;
        a.apply(d01).unwrap();
        let mid_a = a.fingerprint();
        a.apply(d12).unwrap();
        let mut b = b_first;
        b.apply(d12).unwrap();
        let mid_b = b.fingerprint();
        b.apply(d01).unwrap();
        assert_ne!(mid_a, mid_b, "intermediate states differ");
        assert_eq!(a.fingerprint(), b.fingerprint(), "final states coincide");
    }

    #[test]
    fn traced_controlled_run_records_identified_events() {
        let graph = Arc::new(generators::cycle(4).unwrap());
        let mut net =
            ControlledNet::new_traced(&graph, StartDiscipline::Eager, true, |id, _| Ring {
                id,
                n: 4,
                seen: false,
            });
        while let Some(&event) = net.enabled_events().first() {
            net.apply(event).unwrap();
        }
        let trace = net.into_trace();
        assert!(trace.is_enabled());
        let sends: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Send)
            .collect();
        let delivers: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Deliver)
            .collect();
        assert_eq!(sends.len(), 3);
        assert_eq!(delivers.len(), 3);
        // Every message id is unique, nonzero, and echoed by its delivery,
        // which is stamped strictly later.
        for d in &delivers {
            let s = sends.iter().find(|s| s.msg_id == d.msg_id).unwrap();
            assert!(s.msg_id > 0);
            assert!(s.time < d.time, "send happens before its delivery");
            assert_eq!(s.seq, d.seq);
            assert_eq!((s.from, s.to), (d.from, d.to));
        }
        // Stamps are unique and increasing in recorded order.
        let times: Vec<u64> = trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn untraced_net_keeps_sentinel_ids_and_a_disabled_recorder() {
        let (_, mut net) = ring(3);
        assert!(!net.trace().is_enabled());
        while let Some(&event) = net.enabled_events().first() {
            net.apply(event).unwrap();
        }
        assert!(net.trace().events().is_empty());
    }

    #[test]
    fn clone_snapshots_are_independent() {
        let (_, mut net) = ring(4);
        let snapshot = net.clone();
        let before = snapshot.fingerprint();
        net.apply(ControlledEvent::Deliver {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        assert_eq!(snapshot.fingerprint(), before, "snapshot is unaffected");
        assert_ne!(net.fingerprint(), before);
    }
}
