//! Shared test fixtures: the classic flooding broadcast used to exercise
//! every runtime. Node 0 floods a token; each node forwards it the first
//! time it sees it. Deterministic message totals on trees, termination by
//! `seen`, `O(log n)` bits per message — the smallest protocol that still
//! exercises sends, wake-ups and causal depths.

use crate::message::bits::message_bits;
use crate::message::NetMessage;
use crate::protocol::{Context, Protocol};
use mdst_graph::NodeId;

/// The flooded token, sized like an identity-carrying message.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub n: usize,
}

impl NetMessage for Token {
    fn kind(&self) -> &'static str {
        "Token"
    }
    fn encoded_bits(&self) -> usize {
        message_bits(self.n, 1)
    }
}

/// The flooding node automaton.
pub(crate) struct Flood {
    pub id: NodeId,
    pub seen: bool,
}

impl Protocol for Flood {
    type Message = Token;
    fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
        if self.id == NodeId(0) {
            self.seen = true;
            let targets: Vec<NodeId> = ctx.neighbors().to_vec();
            let n = ctx.network_size();
            for t in targets {
                ctx.send(t, Token { n });
            }
        }
    }
    fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
        if !self.seen {
            self.seen = true;
            let targets: Vec<NodeId> = ctx
                .neighbors()
                .iter()
                .copied()
                .filter(|&x| x != from)
                .collect();
            for t in targets {
                ctx.send(t, msg.clone());
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.seen
    }
}

/// Factory with the `(NodeId, &[NodeId])` shape every runtime expects.
pub(crate) fn flood(id: NodeId, _neighbors: &[NodeId]) -> Flood {
    Flood { id, seen: false }
}
