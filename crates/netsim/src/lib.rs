//! # mdst-netsim
//!
//! The asynchronous point-to-point message-passing substrate of the
//! reproduction: the network model of §2 of Blin & Butelle as an executable
//! artefact.
//!
//! The paper analyses an *event-driven* asynchronous network: processors react
//! to messages only (no timeouts, no global clock), links are bidirectional and
//! FIFO, the message complexity is the total number of messages exchanged and
//! the time complexity is the length of the longest causal chain assuming every
//! hop costs at most one time unit. This crate provides two interchangeable
//! executions of that model:
//!
//! * [`sim::Simulator`] — a deterministic discrete-event simulator with a
//!   pluggable [`delay::DelayModel`] (unit delays for the paper's time
//!   accounting, seeded random delays and adversarial per-link delays for
//!   robustness experiments). It measures exactly the quantities the paper's
//!   analysis talks about: message count per message kind, total encoded bits,
//!   and the longest causal dependency chain.
//! * [`threaded::ThreadedRuntime`] — the same [`protocol::Protocol`] state
//!   machines driven by real OS threads communicating over crossbeam channels,
//!   demonstrating that the protocol tolerates genuine nondeterministic
//!   scheduling, not just simulated asynchrony.
//! * [`pool::PoolRuntime`] — a work-stealing executor multiplexing thousands
//!   of nodes over a fixed worker pool (per-node mailboxes, run queues with
//!   stealing, quiescence via in-flight counters), for campaigns far beyond
//!   what one OS thread per node can reach.
//! * [`controlled::ControlledNet`] — a step-controlled execution that exposes
//!   the enabled-event set and applies one externally chosen event at a time,
//!   the hook the `mdst-check` model checker uses to explore *every* delivery
//!   interleaving instead of sampling one.
//!
//! Protocols are written once against the [`protocol::Protocol`] trait and run
//! unchanged on every runtime; the `mdst-spanning` and `mdst-core` crates
//! provide the actual protocols. The [`exec::Executor`] trait is the uniform
//! front door: all three backends take a graph, a protocol factory and an
//! [`exec::ExecConfig`] and produce the same [`exec::ExecRun`], so drivers
//! and campaign runners select a backend per run via [`exec::ExecutorKind`].
//!
//! The simulator additionally supports **fault injection** through
//! [`fault::FaultPlan`]: seeded per-message loss, scheduled node crashes and
//! link cuts, with drops and crashes counted in [`metrics::Metrics`] and
//! recorded in the trace. A benign (empty) plan leaves every execution
//! bit-identical to the fault-free simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod controlled;
pub mod delay;
pub mod exec;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod sim;
#[cfg(test)]
pub(crate) mod testutil;
pub mod threaded;
pub mod trace;

pub use cancel::CancelToken;
pub use controlled::{ControlledEvent, ControlledNet, NotEnabled, StartDiscipline};
pub use delay::DelayModel;
pub use exec::{
    ExecConfig, ExecRun, ExecStatus, Executor, ExecutorKind, PoolExecutor, SimExecutor,
    ThreadedExecutor, UnknownExecutor,
};
pub use fault::{CrashAt, CutAt, FaultPlan};
pub use message::NetMessage;
pub use metrics::Metrics;
pub use pool::{PoolConfig, PoolRun, PoolRuntime};
pub use protocol::{Context, Protocol};
pub use sim::{SimConfig, SimError, Simulator, StartModel};
pub use threaded::{ThreadedRun, ThreadedRuntime};
pub use trace::{KindLabel, TraceEvent, TraceEventKind, TraceRecorder};
