//! Threaded runtime: the same protocols on real OS threads.
//!
//! The discrete-event simulator is where the complexity measurements come
//! from, but a simulator can hide accidental synchrony assumptions. This
//! runtime spawns one thread per node, connects them with unbounded crossbeam
//! channels (FIFO, like the paper's links) and lets the operating system
//! schedule deliveries. Termination is detected with a conservative
//! outstanding-work counter: it counts every queued-or-being-processed message
//! (plus the initial wake-ups), so it reaches zero exactly when the network is
//! quiescent.
//!
//! The runtime reports the same [`Metrics`] as the simulator (message counts,
//! bits, causal depth) plus the wall-clock duration; the quiescence clock is
//! not meaningful here and is left at the maximum causal depth.

use crate::exec::ExecStatus;
use crate::message::NetMessage;
use crate::metrics::Metrics;
use crate::protocol::{Context, Protocol};
use crossbeam_channel::{unbounded, Receiver, Sender};
use mdst_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight between two node threads.
struct Envelope<M> {
    from: NodeId,
    msg: M,
    causal_depth: u64,
}

/// Context implementation backed by crossbeam channels.
struct ThreadCtx<'a, M> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    senders: &'a [Sender<Envelope<M>>],
    outstanding: &'a AtomicI64,
    current_depth: u64,
}

impl<M: NetMessage> Context<M> for ThreadCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        // Count the message as outstanding *before* it becomes visible to the
        // receiver so the termination detector can never observe a false zero.
        // Send/receive statistics are recorded once, by the receiving thread's
        // `record_delivery`, exactly as in the simulator.
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.senders[to.index()]
            .send(Envelope {
                from: self.id,
                msg,
                causal_depth: self.current_depth + 1,
            })
            .expect("receiver thread lives until shutdown");
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// Result of a threaded execution.
pub struct ThreadedRun<P> {
    /// Final protocol state of every node, indexed by identity.
    pub nodes: Vec<P>,
    /// Aggregated metrics (message counts, bits, causal depth).
    pub metrics: Metrics,
    /// Wall-clock duration from the first wake-up to quiescence.
    pub wall_time: Duration,
    /// Whether the run quiesced or hit the event cap (see
    /// [`ThreadedRuntime::run_capped`]).
    pub status: ExecStatus,
}

/// Runs protocols on one OS thread per node. See the module documentation.
pub struct ThreadedRuntime;

impl ThreadedRuntime {
    /// Executes the protocol on `graph` until quiescence and returns the final
    /// node states plus metrics. All nodes wake up spontaneously (the
    /// simultaneous start model); protocols that need a single initiator
    /// simply make `on_start` a no-op on the other nodes.
    pub fn run<P, F>(graph: &Arc<Graph>, factory: F) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        Self::run_capped(graph, factory, u64::MAX)
    }

    /// Like [`ThreadedRuntime::run`], but aborts once `max_events` work units
    /// (wake-ups plus deliveries) have been processed — the same livelock
    /// guard as the simulator's `max_events`, reported through
    /// [`ThreadedRun::status`] instead of an error so the partial node states
    /// and metrics survive.
    pub fn run_capped<P, F>(graph: &Arc<Graph>, mut factory: F, max_events: u64) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        let n = graph.node_count();
        let mut protocols: Vec<Option<P>> = (0..n)
            .map(|u| Some(factory(NodeId(u), graph.neighbor_slice(NodeId(u)))))
            .collect();

        let mut senders: Vec<Sender<Envelope<P::Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope<P::Message>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        // One outstanding unit per initial wake-up.
        let outstanding = Arc::new(AtomicI64::new(n as i64));
        let shutdown = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for u in 0..n {
            let rx = receivers[u].clone();
            let senders = Arc::clone(&senders);
            let outstanding = Arc::clone(&outstanding);
            let shutdown = Arc::clone(&shutdown);
            let processed = Arc::clone(&processed);
            let aborted = Arc::clone(&aborted);
            // One Arc clone per thread instead of one neighbour-vector clone:
            // each node thread borrows its CSR row from the shared graph.
            let graph = Arc::clone(graph);
            let mut protocol = protocols[u].take().expect("each node taken once");
            let handle = std::thread::spawn(move || {
                let my_neighbors = graph.neighbor_slice(NodeId(u));
                let mut metrics = Metrics::new(n);
                // Counts a processed work unit against the cap; every thread
                // observing the overflow raises the shared abort.
                let count_unit = || {
                    if processed.fetch_add(1, Ordering::SeqCst) + 1 > max_events {
                        aborted.store(true, Ordering::SeqCst);
                        shutdown.store(true, Ordering::SeqCst);
                    }
                };
                {
                    let mut ctx = ThreadCtx {
                        id: NodeId(u),
                        neighbors: my_neighbors,
                        network_size: n,
                        senders: &senders,
                        outstanding: &outstanding,
                        current_depth: 0,
                    };
                    protocol.on_start(&mut ctx);
                }
                // The wake-up itself is now fully processed.
                outstanding.fetch_sub(1, Ordering::SeqCst);
                count_unit();
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(envelope) = rx.recv_timeout(Duration::from_millis(1)) {
                        metrics.record_delivery(
                            envelope.from.index(),
                            u,
                            envelope.msg.kind(),
                            envelope.msg.encoded_bits(),
                            envelope.causal_depth,
                            envelope.causal_depth,
                        );
                        let mut ctx = ThreadCtx {
                            id: NodeId(u),
                            neighbors: my_neighbors,
                            network_size: n,
                            senders: &senders,
                            outstanding: &outstanding,
                            current_depth: envelope.causal_depth,
                        };
                        protocol.on_message(envelope.from, envelope.msg, &mut ctx);
                        outstanding.fetch_sub(1, Ordering::SeqCst);
                        count_unit();
                    }
                }
                (protocol, metrics)
            });
            handles.push(handle);
        }

        // Termination detector: once nothing is outstanding, the network is
        // quiescent forever (messages are only created while processing one).
        // The cap abort arrives through the same shutdown flag, raised by the
        // node threads themselves.
        loop {
            if outstanding.load(Ordering::SeqCst) == 0 {
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            if aborted.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let wall_time = start.elapsed();

        let mut nodes = Vec::with_capacity(n);
        let mut metrics = Metrics::new(n);
        for handle in handles {
            let (protocol, m) = handle.join().expect("node thread does not panic");
            nodes.push(protocol);
            metrics.merge(&m);
        }
        metrics.quiescence_time = metrics.causal_time;
        let status = if aborted.load(Ordering::SeqCst) {
            ExecStatus::EventLimitExceeded
        } else {
            ExecStatus::Quiesced
        };
        ThreadedRun {
            nodes,
            metrics,
            wall_time,
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits::message_bits;
    use mdst_graph::generators;

    #[derive(Debug, Clone)]
    struct Token {
        n: usize,
    }
    impl NetMessage for Token {
        fn kind(&self) -> &'static str {
            "Token"
        }
        fn encoded_bits(&self) -> usize {
            message_bits(self.n, 1)
        }
    }

    /// Same flooding protocol as in the simulator tests.
    struct Flood {
        id: NodeId,
        seen: bool,
    }
    impl Protocol for Flood {
        type Message = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            if self.id == NodeId(0) {
                self.seen = true;
                let targets: Vec<NodeId> = ctx.neighbors().to_vec();
                let n = ctx.network_size();
                for t in targets {
                    ctx.send(t, Token { n });
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            if !self.seen {
                self.seen = true;
                let targets: Vec<NodeId> = ctx
                    .neighbors()
                    .iter()
                    .copied()
                    .filter(|&x| x != from)
                    .collect();
                for t in targets {
                    ctx.send(t, msg.clone());
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn flood_terminates_and_reaches_everyone() {
        let g = Arc::new(generators::gnp_connected(30, 0.15, 4).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        assert_eq!(run.nodes.len(), 30);
        assert!(run.nodes.iter().all(|p| p.seen));
        assert!(run.metrics.messages_total >= 29);
    }

    #[test]
    fn message_totals_match_simulator_for_deterministic_protocols() {
        // Flooding on a tree sends exactly one message per edge direction away
        // from the initiator, regardless of scheduling, so the threaded count
        // must equal the simulated count.
        let g = Arc::new(generators::path(12).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        let mut sim = crate::sim::Simulator::new(&g, crate::sim::SimConfig::default(), |id, _| {
            Flood { id, seen: false }
        })
        .unwrap();
        sim.run().unwrap();
        assert_eq!(run.metrics.messages_total, sim.metrics().messages_total);
        assert_eq!(run.metrics.causal_time, sim.metrics().causal_time);
    }

    #[test]
    fn per_node_counters_are_consistent() {
        let g = Arc::new(generators::complete(6).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        let sent: u64 = run.metrics.sent_per_node.iter().sum();
        let received: u64 = run.metrics.received_per_node.iter().sum();
        assert_eq!(sent, run.metrics.messages_total);
        assert_eq!(received, run.metrics.messages_total);
    }

    #[test]
    fn empty_protocol_network_quiesces_immediately() {
        struct Silent;
        impl Protocol for Silent {
            type Message = Token;
            fn on_start(&mut self, _: &mut dyn Context<Token>) {}
            fn on_message(&mut self, _: NodeId, _: Token, _: &mut dyn Context<Token>) {}
        }
        let g = Arc::new(generators::cycle(5).unwrap());
        let run = ThreadedRuntime::run(&g, |_, _| Silent);
        assert_eq!(run.metrics.messages_total, 0);
    }
}
