//! Threaded runtime: the same protocols on real OS threads.
//!
//! The discrete-event simulator is where the complexity measurements come
//! from, but a simulator can hide accidental synchrony assumptions. This
//! runtime spawns one thread per node, connects them with unbounded crossbeam
//! channels (FIFO, like the paper's links) and lets the operating system
//! schedule deliveries. Termination is detected with a conservative
//! outstanding-work counter: it counts every queued-or-being-processed message
//! (plus the initial wake-ups), so it reaches zero exactly when the network is
//! quiescent.
//!
//! The runtime reports the same [`Metrics`] as the simulator (message counts,
//! bits, causal depth) plus the wall-clock duration; the quiescence clock is
//! not meaningful here and is left at the maximum causal depth.

use crate::cancel::CancelToken;
use crate::exec::ExecStatus;
use crate::message::NetMessage;
use crate::metrics::Metrics;
use crate::protocol::{Context, Protocol};
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};
use crossbeam_channel::{unbounded, Receiver, Sender};
use mdst_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight between two node threads. The trace identities are the
/// zero sentinels on untraced runs (see [`TraceEvent::msg_id`]).
struct Envelope<M> {
    from: NodeId,
    msg: M,
    causal_depth: u64,
    msg_id: u64,
    link_seq: u64,
}

/// Counters shared by every node thread of one traced run: the global event
/// stamp (total recording order across threads) and the message-id allocator.
struct TraceShared {
    stamp: AtomicU64,
    next_msg_id: AtomicU64,
}

/// Per-thread trace state: a thread-local event buffer (no lock is ever taken
/// to record) plus the sender-side per-link sequence counters. Since this
/// thread is the only sender on every `(self, to)` directed link, the counters
/// need no synchronisation either — only the stamp and id draws touch the
/// shared atomics.
struct ThreadTracer {
    shared: Arc<TraceShared>,
    events: Vec<TraceEvent>,
    /// Next send sequence number per target (`self → target` directed link),
    /// indexed by the target's position in this node's sorted CSR neighbour
    /// slice — a dense array instead of the per-send `HashMap` entry churn it
    /// replaced.
    link_seq: Vec<u64>,
}

impl ThreadTracer {
    fn stamp(&self) -> u64 {
        self.shared.stamp.fetch_add(1, Ordering::SeqCst)
    }
}

/// Context implementation backed by crossbeam channels.
struct ThreadCtx<'a, M> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    senders: &'a [Sender<Envelope<M>>],
    outstanding: &'a AtomicI64,
    current_depth: u64,
    tracer: Option<&'a mut ThreadTracer>,
}

impl<M: NetMessage> Context<M> for ThreadCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        let (msg_id, link_seq) = match self.tracer.as_mut() {
            Some(tracer) => {
                let msg_id = tracer.shared.next_msg_id.fetch_add(1, Ordering::SeqCst);
                // `binary_search` cannot fail: the assert above already
                // established neighbourship.
                let slot = self.neighbors.binary_search(&to).unwrap_or(0);
                if tracer.link_seq.is_empty() {
                    tracer.link_seq.resize(self.neighbors.len(), 0);
                }
                let link_seq = tracer.link_seq[slot];
                tracer.link_seq[slot] += 1;
                let time = tracer.stamp();
                tracer.events.push(TraceEvent {
                    time,
                    kind: TraceEventKind::Send,
                    from: self.id,
                    to,
                    message_kind: msg.kind().into(),
                    msg_id,
                    seq: link_seq,
                });
                (msg_id, link_seq)
            }
            None => (0, 0),
        };
        // Count the message as outstanding *before* it becomes visible to the
        // receiver so the termination detector can never observe a false zero.
        // Send/receive statistics are recorded once, by the receiving thread's
        // `record_delivery`, exactly as in the simulator.
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.senders[to.index()]
            .send(Envelope {
                from: self.id,
                msg,
                causal_depth: self.current_depth + 1,
                msg_id,
                link_seq,
            })
            .expect("receiver thread lives until shutdown");
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// Result of a threaded execution.
pub struct ThreadedRun<P> {
    /// Final protocol state of every node, indexed by identity.
    pub nodes: Vec<P>,
    /// Aggregated metrics (message counts, bits, causal depth).
    pub metrics: Metrics,
    /// Wall-clock duration from the first wake-up to quiescence.
    pub wall_time: Duration,
    /// Whether the run quiesced or hit the event cap (see
    /// [`ThreadedRuntime::run_capped`]).
    pub status: ExecStatus,
    /// Recorded trace: the per-thread event buffers merged at quiescence and
    /// sorted by the atomic global stamp. The disabled recorder unless the
    /// run was started through [`ThreadedRuntime::run_traced`] with
    /// `record_trace = true`.
    pub trace: TraceRecorder,
}

/// Runs protocols on one OS thread per node. See the module documentation.
pub struct ThreadedRuntime;

impl ThreadedRuntime {
    /// Executes the protocol on `graph` until quiescence and returns the final
    /// node states plus metrics. All nodes wake up spontaneously (the
    /// simultaneous start model); protocols that need a single initiator
    /// simply make `on_start` a no-op on the other nodes.
    pub fn run<P, F>(graph: &Arc<Graph>, factory: F) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        Self::run_capped(graph, factory, u64::MAX)
    }

    /// Like [`ThreadedRuntime::run`], but aborts once `max_events` work units
    /// (wake-ups plus deliveries) have been processed — the same livelock
    /// guard as the simulator's `max_events`, reported through
    /// [`ThreadedRun::status`] instead of an error so the partial node states
    /// and metrics survive.
    pub fn run_capped<P, F>(graph: &Arc<Graph>, factory: F, max_events: u64) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        Self::run_traced(graph, factory, max_events, false)
    }

    /// Like [`ThreadedRuntime::run_capped`], with optional trace recording.
    ///
    /// When `record_trace` is set every node thread keeps a local event
    /// buffer (recording never takes a lock); sends draw a run-unique message
    /// id and a per-link sequence number, and every event is stamped from one
    /// atomic global counter. At quiescence the buffers are merged and sorted
    /// by that stamp, so [`ThreadedRun::trace`] is totally ordered by real
    /// recording order and a message's `Send` always precedes its `Deliver`.
    pub fn run_traced<P, F>(
        graph: &Arc<Graph>,
        factory: F,
        max_events: u64,
        record_trace: bool,
    ) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        Self::run_cancellable(
            graph,
            factory,
            max_events,
            record_trace,
            &CancelToken::new(),
        )
    }

    /// Like [`ThreadedRuntime::run_traced`], observing `cancel` cooperatively:
    /// the termination detector polls the token and, once raised, flips the
    /// same shutdown flag an event-cap abort uses, so every node thread winds
    /// down at its next receive timeout and the run reports
    /// [`ExecStatus::Cancelled`] with the partial states and metrics.
    pub fn run_cancellable<P, F>(
        graph: &Arc<Graph>,
        mut factory: F,
        max_events: u64,
        record_trace: bool,
        cancel: &CancelToken,
    ) -> ThreadedRun<P>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        let n = graph.node_count();
        let trace_shared = record_trace.then(|| {
            Arc::new(TraceShared {
                stamp: AtomicU64::new(0),
                next_msg_id: AtomicU64::new(1),
            })
        });
        let mut protocols: Vec<Option<P>> = (0..n)
            .map(|u| {
                Some(factory(
                    NodeId::new(u),
                    graph.neighbor_slice(NodeId::new(u)),
                ))
            })
            .collect();

        let mut senders: Vec<Sender<Envelope<P::Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope<P::Message>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        // One outstanding unit per initial wake-up.
        let outstanding = Arc::new(AtomicI64::new(n as i64));
        let shutdown = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for u in 0..n {
            let rx = receivers[u].clone();
            let senders = Arc::clone(&senders);
            let outstanding = Arc::clone(&outstanding);
            let shutdown = Arc::clone(&shutdown);
            let processed = Arc::clone(&processed);
            let aborted = Arc::clone(&aborted);
            // One Arc clone per thread instead of one neighbour-vector clone:
            // each node thread borrows its CSR row from the shared graph.
            let graph = Arc::clone(graph);
            let trace_shared = trace_shared.clone();
            let mut protocol = protocols[u].take().expect("each node taken once");
            let handle = std::thread::spawn(move || {
                let my_neighbors = graph.neighbor_slice(NodeId::new(u));
                let mut metrics = Metrics::new(n);
                let mut tracer = trace_shared.map(|shared| ThreadTracer {
                    shared,
                    events: Vec::new(),
                    link_seq: Vec::new(),
                });
                // Counts a processed work unit against the cap; every thread
                // observing the overflow raises the shared abort.
                let count_unit = || {
                    if processed.fetch_add(1, Ordering::SeqCst) + 1 > max_events {
                        aborted.store(true, Ordering::SeqCst);
                        shutdown.store(true, Ordering::SeqCst);
                    }
                };
                {
                    let mut ctx = ThreadCtx {
                        id: NodeId::new(u),
                        neighbors: my_neighbors,
                        network_size: n,
                        senders: &senders,
                        outstanding: &outstanding,
                        current_depth: 0,
                        tracer: tracer.as_mut(),
                    };
                    protocol.on_start(&mut ctx);
                }
                // The wake-up itself is now fully processed.
                outstanding.fetch_sub(1, Ordering::SeqCst);
                count_unit();
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(envelope) = rx.recv_timeout(Duration::from_millis(1)) {
                        metrics.record_delivery(
                            envelope.from.index(),
                            u,
                            envelope.msg.kind(),
                            envelope.msg.encoded_bits(),
                            envelope.causal_depth,
                            envelope.causal_depth,
                        );
                        if let Some(tracer) = tracer.as_mut() {
                            // The stamp is drawn after the channel receive, so
                            // it is strictly greater than the send's stamp.
                            let time = tracer.stamp();
                            tracer.events.push(TraceEvent {
                                time,
                                kind: TraceEventKind::Deliver,
                                from: envelope.from,
                                to: NodeId::new(u),
                                message_kind: envelope.msg.kind().into(),
                                msg_id: envelope.msg_id,
                                seq: envelope.link_seq,
                            });
                        }
                        let mut ctx = ThreadCtx {
                            id: NodeId::new(u),
                            neighbors: my_neighbors,
                            network_size: n,
                            senders: &senders,
                            outstanding: &outstanding,
                            current_depth: envelope.causal_depth,
                            tracer: tracer.as_mut(),
                        };
                        protocol.on_message(envelope.from, envelope.msg, &mut ctx);
                        outstanding.fetch_sub(1, Ordering::SeqCst);
                        count_unit();
                    }
                }
                (protocol, metrics, tracer.map(|t| t.events))
            });
            handles.push(handle);
        }

        // Termination detector: once nothing is outstanding, the network is
        // quiescent forever (messages are only created while processing one).
        // The cap abort arrives through the same shutdown flag, raised by the
        // node threads themselves; cancellation is checked here first, so a
        // token raised before the run even starts always wins.
        let mut cancelled = false;
        loop {
            if cancel.is_cancelled() {
                cancelled = true;
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            if outstanding.load(Ordering::SeqCst) == 0 {
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            if aborted.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let wall_time = start.elapsed();

        let mut nodes = Vec::with_capacity(n);
        let mut metrics = Metrics::new(n);
        let mut merged_events: Vec<TraceEvent> = Vec::new();
        for handle in handles {
            let (protocol, m, events) = handle.join().expect("node thread does not panic");
            nodes.push(protocol);
            metrics.merge(&m);
            if let Some(events) = events {
                merged_events.extend(events);
            }
        }
        metrics.quiescence_time = metrics.causal_time;
        let status = if cancelled {
            ExecStatus::Cancelled
        } else if aborted.load(Ordering::SeqCst) {
            ExecStatus::EventLimitExceeded
        } else {
            ExecStatus::Quiesced
        };
        let trace = if record_trace {
            // The global stamp is unique per event, so sorting by it totally
            // orders the merged buffers by real recording order.
            merged_events.sort_unstable_by_key(|e| e.time);
            TraceRecorder::from_events(merged_events)
        } else {
            TraceRecorder::disabled()
        };
        ThreadedRun {
            nodes,
            metrics,
            wall_time,
            status,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits::message_bits;
    use mdst_graph::generators;

    #[derive(Debug, Clone)]
    struct Token {
        n: usize,
    }
    impl NetMessage for Token {
        fn kind(&self) -> &'static str {
            "Token"
        }
        fn encoded_bits(&self) -> usize {
            message_bits(self.n, 1)
        }
    }

    /// Same flooding protocol as in the simulator tests.
    struct Flood {
        id: NodeId,
        seen: bool,
    }
    impl Protocol for Flood {
        type Message = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            if self.id == NodeId(0) {
                self.seen = true;
                let targets: Vec<NodeId> = ctx.neighbors().to_vec();
                let n = ctx.network_size();
                for t in targets {
                    ctx.send(t, Token { n });
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            if !self.seen {
                self.seen = true;
                let targets: Vec<NodeId> = ctx
                    .neighbors()
                    .iter()
                    .copied()
                    .filter(|&x| x != from)
                    .collect();
                for t in targets {
                    ctx.send(t, msg.clone());
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn flood_terminates_and_reaches_everyone() {
        let g = Arc::new(generators::gnp_connected(30, 0.15, 4).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        assert_eq!(run.nodes.len(), 30);
        assert!(run.nodes.iter().all(|p| p.seen));
        assert!(run.metrics.messages_total >= 29);
    }

    #[test]
    fn message_totals_match_simulator_for_deterministic_protocols() {
        // Flooding on a tree sends exactly one message per edge direction away
        // from the initiator, regardless of scheduling, so the threaded count
        // must equal the simulated count.
        let g = Arc::new(generators::path(12).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        let mut sim = crate::sim::Simulator::new(&g, crate::sim::SimConfig::default(), |id, _| {
            Flood { id, seen: false }
        })
        .unwrap();
        sim.run().unwrap();
        assert_eq!(run.metrics.messages_total, sim.metrics().messages_total);
        assert_eq!(run.metrics.causal_time, sim.metrics().causal_time);
    }

    #[test]
    fn per_node_counters_are_consistent() {
        let g = Arc::new(generators::complete(6).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        let sent: u64 = run.metrics.sent_per_node.iter().sum();
        let received: u64 = run.metrics.received_per_node.iter().sum();
        assert_eq!(sent, run.metrics.messages_total);
        assert_eq!(received, run.metrics.messages_total);
    }

    #[test]
    fn traced_run_merges_per_thread_buffers_in_stamp_order() {
        use crate::trace::TraceEventKind;
        use std::collections::HashSet;
        let g = Arc::new(generators::gnp_connected(20, 0.2, 7).unwrap());
        let run =
            ThreadedRuntime::run_traced(&g, |id, _| Flood { id, seen: false }, u64::MAX, true);
        let events = run.trace.events();
        assert!(run.trace.is_enabled());
        let sends = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Send)
            .count();
        let delivers = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Deliver)
            .count();
        assert_eq!(sends, delivers, "reliable network: every send delivered");
        assert_eq!(delivers as u64, run.metrics.messages_total);
        // The merged trace is sorted by the unique global stamp, and every
        // delivery's message id was stamped as sent strictly earlier.
        let mut sent: HashSet<u64> = HashSet::new();
        for pair in events.windows(2) {
            assert!(pair[0].time < pair[1].time, "stamps must be unique");
        }
        for event in events {
            match event.kind {
                TraceEventKind::Send => {
                    assert!(sent.insert(event.msg_id), "msg ids are unique");
                }
                TraceEventKind::Deliver => {
                    assert!(sent.contains(&event.msg_id), "deliver after send");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn untraced_run_returns_the_disabled_recorder() {
        let g = Arc::new(generators::path(4).unwrap());
        let run = ThreadedRuntime::run(&g, |id, _| Flood { id, seen: false });
        assert!(!run.trace.is_enabled());
        assert!(run.trace.events().is_empty());
    }

    #[test]
    fn empty_protocol_network_quiesces_immediately() {
        struct Silent;
        impl Protocol for Silent {
            type Message = Token;
            fn on_start(&mut self, _: &mut dyn Context<Token>) {}
            fn on_message(&mut self, _: NodeId, _: Token, _: &mut dyn Context<Token>) {}
        }
        let g = Arc::new(generators::cycle(5).unwrap());
        let run = ThreadedRuntime::run(&g, |_, _| Silent);
        assert_eq!(run.metrics.messages_total, 0);
    }
}
