//! The [`Executor`] abstraction: one uniform way to run a [`Protocol`] on a
//! graph, regardless of which runtime drives it.
//!
//! The crate grew three interchangeable executions of the paper's §2 network
//! model, each with a different fidelity/throughput trade-off:
//!
//! | backend | scheduling | faults/delays | traces | scale |
//! |---|---|---|---|---|
//! | [`SimExecutor`] (discrete-event [`crate::sim::Simulator`]) | deterministic | full (`DelayModel`, `FaultPlan`) | yes (simulated clock) | ~10³ nodes comfortably |
//! | [`ThreadedExecutor`] ([`crate::threaded::ThreadedRuntime`]) | real OS threads, one per node | none (the OS *is* the adversary) | yes (atomic global stamp) | ~10² nodes (thread-per-node) |
//! | [`PoolExecutor`] ([`crate::pool::PoolRuntime`]) | work-stealing worker pool, batched message fabric | none | yes (atomic global stamp) | ~10⁵ nodes on a fixed pool |
//!
//! All three take the same inputs — a graph, a per-node protocol factory and
//! an [`ExecConfig`] — and produce the same [`ExecRun`]: final node states,
//! aggregated [`Metrics`], an optional trace, the wall-clock duration and a
//! quiescence [`ExecStatus`]. Code written against the trait (the
//! `mdst_core::driver` pipeline, the `mdst-scenario` campaign runner) is
//! backend-agnostic; campaigns pick a backend per run through
//! [`ExecutorKind`].
//!
//! Backends refuse configuration they cannot honor instead of silently
//! ignoring it: asking the threaded or pool backend for simulated delays or
//! fault injection is an [`SimError::InvalidConfig`], not a lie in the
//! report. `record_trace`, on the other hand, is honored by every backend:
//! the concurrent runtimes keep lock-free per-worker event buffers stamped
//! from one atomic counter and merge them at quiescence, so the
//! `mdst-analysis` happens-before auditor can check per-link FIFO and causal
//! delivery on the backends a model checker cannot reach.

use crate::cancel::CancelToken;
use crate::delay::DelayModel;
use crate::metrics::Metrics;
use crate::pool::{PoolConfig, PoolRuntime};
use crate::protocol::Protocol;
use crate::sim::{SimConfig, SimError, Simulator, StartModel};
use crate::threaded::ThreadedRuntime;
use crate::trace::TraceRecorder;
use mdst_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Which backend executes a run. The string forms (`"sim"`, `"threaded"`,
/// `"pool"`) are the spellings used by scenario specs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutorKind {
    /// The deterministic discrete-event simulator (full delay/fault support).
    #[default]
    Sim,
    /// One OS thread per node over FIFO channels (real nondeterminism).
    Threaded,
    /// A fixed work-stealing worker pool multiplexing all nodes.
    Pool,
}

impl ExecutorKind {
    /// Every backend, in report order.
    pub fn all() -> [ExecutorKind; 3] {
        [
            ExecutorKind::Sim,
            ExecutorKind::Threaded,
            ExecutorKind::Pool,
        ]
    }

    /// Stable lower-case label used in specs, reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ExecutorKind::Sim => "sim",
            ExecutorKind::Threaded => "threaded",
            ExecutorKind::Pool => "pool",
        }
    }

    /// Parses a spec spelling. Accepts the labels plus a few aliases
    /// (`"simulator"`, `"threads"`, `"work_stealing"`). Shorthand for the
    /// [`std::str::FromStr`] implementation with the error stringified.
    pub fn parse(name: &str) -> Result<ExecutorKind, String> {
        name.parse().map_err(|e: UnknownExecutor| e.to_string())
    }

    /// Runs `factory`-built protocols on `graph` under the backend this kind
    /// names. Equivalent to calling [`Executor::run`] on the matching unit
    /// struct; this is the dynamic-dispatch entry the campaign runner uses.
    pub fn run<P, F>(
        self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        self.run_with_cancel(graph, factory, config, &CancelToken::new())
    }

    /// Like [`ExecutorKind::run`], observing `cancel` cooperatively: when the
    /// token is raised mid-run the backend winds down at its next safe point
    /// and the returned [`ExecRun::status`] is [`ExecStatus::Cancelled`].
    pub fn run_with_cancel<P, F>(
        self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        match self {
            ExecutorKind::Sim => SimExecutor.run_with_cancel(graph, factory, config, cancel),
            ExecutorKind::Threaded => {
                ThreadedExecutor.run_with_cancel(graph, factory, config, cancel)
            }
            ExecutorKind::Pool => PoolExecutor.run_with_cancel(graph, factory, config, cancel),
        }
    }
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error of parsing an [`ExecutorKind`] from an unknown spelling. Scenario
/// specs surface this as a spec error with the scenario name attached — an
/// unknown executor name is a user mistake, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExecutor(pub String);

impl std::fmt::Display for UnknownExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown executor `{}` (known: sim, threaded, pool)",
            self.0
        )
    }
}

impl std::error::Error for UnknownExecutor {}

impl std::str::FromStr for ExecutorKind {
    type Err = UnknownExecutor;

    fn from_str(name: &str) -> Result<Self, Self::Err> {
        match name.to_ascii_lowercase().replace('-', "_").as_str() {
            "sim" | "simulator" | "discrete_event" => Ok(ExecutorKind::Sim),
            "threaded" | "threads" | "thread_per_node" => Ok(ExecutorKind::Threaded),
            "pool" | "work_stealing" | "worker_pool" => Ok(ExecutorKind::Pool),
            other => Err(UnknownExecutor(other.to_string())),
        }
    }
}

/// Backend-independent run configuration: the familiar [`SimConfig`] (every
/// backend honors `start = Simultaneous`, `max_events` and a benign fault
/// plan; only the simulator honors the rest) plus the pool's worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecConfig {
    /// The shared run configuration. See the field docs of [`SimConfig`] —
    /// and the compatibility table in the [module docs](self) for which
    /// backend honors which field.
    pub sim: SimConfig,
    /// Worker threads for the pool backend (`0` = one per available CPU,
    /// capped at 64). Ignored by the simulator (single-threaded) and the
    /// threaded runtime (structurally one thread per node).
    pub workers: usize,
    /// Mailbox messages the pool backend drains per scheduling quantum
    /// (`0` = the default, [`PoolRuntime::DEFAULT_BATCH`]). Larger batches
    /// amortise per-quantum locking; smaller batches interleave nodes more
    /// fairly. Ignored by the simulator and the threaded runtime; swept as
    /// the `batch` axis in `mdst-scenario` campaigns.
    pub batch: usize,
}

impl ExecConfig {
    /// Wraps a simulator configuration with the default worker count and
    /// drain batch.
    pub fn from_sim(sim: SimConfig) -> Self {
        ExecConfig {
            sim,
            workers: 0,
            batch: 0,
        }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStatus {
    /// The network went quiescent: no message in flight, no handler running.
    Quiesced,
    /// The event cap (`ExecConfig::sim.max_events`) was hit first; the
    /// returned node states and metrics are the partial snapshot at abort.
    EventLimitExceeded,
    /// A [`CancelToken`] was raised mid-run; the backend wound down at its
    /// next safe point and the returned node states and metrics are the
    /// partial snapshot at cancellation.
    Cancelled,
}

/// The uniform result of one execution, whichever backend produced it.
pub struct ExecRun<P> {
    /// The shared topology the run executed on — the very `Arc` the caller
    /// passed in, cloned, never a rebuilt copy. Campaign runners use pointer
    /// equality on this field to assert that no backend re-materialises
    /// adjacency per run.
    pub topology: Arc<Graph>,
    /// Final protocol state of every node, indexed by identity.
    pub nodes: Vec<P>,
    /// Aggregated metrics (message counts, bits, causal depth, faults).
    pub metrics: Metrics,
    /// Recorded trace (only when `record_trace` is set; the disabled
    /// recorder otherwise). The simulator stamps events with the simulated
    /// clock; the threaded and pool backends stamp with an atomic global
    /// counter, so every backend's trace is totally ordered and auditable.
    pub trace: TraceRecorder,
    /// Whether the run quiesced or hit the event cap.
    pub status: ExecStatus,
    /// Crash flags per node (all `false` outside the simulator, which is the
    /// only backend that injects crashes).
    pub crashed: Vec<bool>,
    /// OS threads the backend used: 1 for the simulator, `n` for the
    /// thread-per-node runtime, the pool size for the pool.
    pub workers: usize,
    /// Wall-clock duration of the execution proper (excluding protocol
    /// construction).
    pub wall_time: Duration,
}

impl<P: Protocol> ExecRun<P> {
    /// Whether every node's protocol reports local termination.
    pub fn all_terminated(&self) -> bool {
        self.nodes.iter().all(|p| p.is_terminated())
    }

    /// Whether every *live* (non-crashed) node reports local termination.
    pub fn all_live_terminated(&self) -> bool {
        self.nodes
            .iter()
            .zip(&self.crashed)
            .all(|(p, &dead)| dead || p.is_terminated())
    }
}

/// A backend able to execute protocols under the uniform surface. The trait
/// is object-unsafe (the run method is generic over the protocol); dynamic
/// backend selection goes through [`ExecutorKind::run`] instead.
pub trait Executor {
    /// Which backend this is (used for labels and error messages).
    fn kind(&self) -> ExecutorKind;

    /// Executes the protocol on `graph` until quiescence (or the event cap)
    /// and returns the uniform [`ExecRun`]. `factory` receives each node's
    /// identity and sorted neighbour list, exactly as with
    /// [`Simulator::new`]. Returns [`SimError::InvalidConfig`] when the
    /// configuration asks for something the backend cannot honor.
    fn run<P, F>(
        &self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        self.run_with_cancel(graph, factory, config, &CancelToken::new())
    }

    /// Like [`Executor::run`], polling `cancel` between work units: a raised
    /// token ends the run at the backend's next safe point with
    /// [`ExecStatus::Cancelled`] and the partial snapshot accumulated so far.
    fn run_with_cancel<P, F>(
        &self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P;
}

/// The discrete-event simulator behind the [`Executor`] surface.
pub struct SimExecutor;

impl Executor for SimExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Sim
    }

    fn run_with_cancel<P, F>(
        &self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        let mut sim = Simulator::new(graph, config.sim.clone(), factory)?;
        sim.set_cancel(cancel.clone());
        let started = std::time::Instant::now();
        let status = match sim.run() {
            Ok(()) => ExecStatus::Quiesced,
            Err(SimError::EventLimitExceeded { .. }) => ExecStatus::EventLimitExceeded,
            Err(SimError::Cancelled) => ExecStatus::Cancelled,
            Err(e) => return Err(e),
        };
        let wall_time = started.elapsed();
        let crashed = sim.crashed().to_vec();
        let (nodes, metrics, trace) = sim.into_parts();
        Ok(ExecRun {
            topology: Arc::clone(graph),
            nodes,
            metrics,
            trace,
            status,
            crashed,
            workers: 1,
            wall_time,
        })
    }
}

/// Checks the parts of an [`ExecConfig`] that only the simulator can honor,
/// shared by the threaded and pool backends. `selected_ok` is whether the
/// backend supports [`StartModel::Selected`] (the pool does; the
/// thread-per-node runtime wakes everyone by construction).
fn validate_concurrent_config(
    graph: &Graph,
    config: &ExecConfig,
    kind: ExecutorKind,
    selected_ok: bool,
) -> Result<(), SimError> {
    let label = kind.label();
    if !matches!(config.sim.delay, DelayModel::Unit) {
        return Err(SimError::InvalidConfig(format!(
            "the `{label}` executor schedules deliveries on real threads and \
             cannot honor a simulated delay model; use executor = \"sim\""
        )));
    }
    if !config.sim.faults.is_benign() {
        return Err(SimError::InvalidConfig(format!(
            "the `{label}` executor cannot inject faults (loss, crashes, \
             cuts need the simulated clock); use executor = \"sim\""
        )));
    }
    match &config.sim.start {
        StartModel::Simultaneous => Ok(()),
        StartModel::Selected(list) if selected_ok => {
            if list.is_empty() {
                return Err(SimError::InvalidConfig(
                    "StartModel::Selected with an empty list: no node would ever wake up"
                        .to_string(),
                ));
            }
            let n = graph.node_count();
            for &node in list {
                if node.index() >= n {
                    return Err(SimError::InvalidConfig(format!(
                        "StartModel::Selected references node {node} but the graph has {n} nodes"
                    )));
                }
            }
            Ok(())
        }
        other => Err(SimError::InvalidConfig(format!(
            "the `{label}` executor cannot honor the start model {other:?} \
             (no simulated clock); use executor = \"sim\""
        ))),
    }
}

/// The thread-per-node runtime behind the [`Executor`] surface.
pub struct ThreadedExecutor;

impl Executor for ThreadedExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Threaded
    }

    fn run_with_cancel<P, F>(
        &self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        validate_concurrent_config(graph, config, self.kind(), false)?;
        let run = ThreadedRuntime::run_cancellable(
            graph,
            factory,
            config.sim.max_events,
            config.sim.record_trace,
            cancel,
        );
        let n = graph.node_count();
        Ok(ExecRun {
            topology: Arc::clone(graph),
            nodes: run.nodes,
            metrics: run.metrics,
            trace: run.trace,
            status: run.status,
            crashed: vec![false; n],
            workers: n,
            wall_time: run.wall_time,
        })
    }
}

/// The work-stealing pool behind the [`Executor`] surface.
pub struct PoolExecutor;

impl Executor for PoolExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Pool
    }

    fn run_with_cancel<P, F>(
        &self,
        graph: &Arc<Graph>,
        factory: F,
        config: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<ExecRun<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &[NodeId]) -> P,
    {
        validate_concurrent_config(graph, config, self.kind(), true)?;
        let pool_config = PoolConfig {
            workers: config.workers,
            max_events: config.sim.max_events,
            start: config.sim.start.clone(),
            record_trace: config.sim.record_trace,
            batch: config.batch,
            coalesce: true,
        };
        let run = PoolRuntime::run_with_cancel(graph, factory, &pool_config, cancel)?;
        let n = graph.node_count();
        Ok(ExecRun {
            topology: Arc::clone(graph),
            nodes: run.nodes,
            metrics: run.metrics,
            trace: run.trace,
            status: run.status,
            crashed: vec![false; n],
            workers: run.workers,
            wall_time: run.wall_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::testutil::flood;
    use mdst_graph::generators;

    #[test]
    fn kind_labels_round_trip_through_parse() {
        for kind in ExecutorKind::all() {
            assert_eq!(ExecutorKind::parse(kind.label()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(ExecutorKind::parse("Work-Stealing"), Ok(ExecutorKind::Pool));
        assert!(ExecutorKind::parse("quantum").is_err());
    }

    #[test]
    fn display_and_from_str_round_trip() {
        for kind in ExecutorKind::all() {
            let spelled = kind.to_string();
            assert_eq!(spelled.parse::<ExecutorKind>(), Ok(kind), "{spelled}");
        }
        let err = "quantum".parse::<ExecutorKind>().unwrap_err();
        assert_eq!(err, UnknownExecutor("quantum".to_string()));
        assert!(err.to_string().contains("sim, threaded, pool"), "{err}");
    }

    #[test]
    fn all_backends_agree_on_deterministic_message_totals() {
        // Flooding on a tree is schedule-independent: every backend must
        // deliver exactly the same multiset of messages.
        let g = Arc::new(generators::path(10).unwrap());
        let config = ExecConfig::default();
        let mut totals = Vec::new();
        for kind in ExecutorKind::all() {
            let run = kind.run(&g, flood, &config).unwrap();
            assert_eq!(run.status, ExecStatus::Quiesced, "{kind}");
            assert!(run.all_terminated(), "{kind}");
            assert!(run.all_live_terminated(), "{kind}");
            assert!(run.crashed.iter().all(|&c| !c), "{kind}");
            totals.push((run.metrics.messages_total, run.metrics.bits_total));
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }

    #[test]
    fn concurrent_backends_reject_sim_only_configuration() {
        let g = Arc::new(generators::path(4).unwrap());
        let delayed = ExecConfig {
            sim: SimConfig {
                delay: DelayModel::UniformRandom {
                    min: 1,
                    max: 5,
                    seed: 1,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let faulty = ExecConfig {
            sim: SimConfig {
                faults: FaultPlan {
                    loss: 0.5,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        for kind in [ExecutorKind::Threaded, ExecutorKind::Pool] {
            for config in [&delayed, &faulty] {
                let err = kind.run(&g, flood, config).err().expect("must reject");
                assert!(matches!(err, SimError::InvalidConfig(_)), "{kind}: {err}");
            }
        }
        // The simulator itself accepts both.
        for config in [&delayed, &faulty] {
            ExecutorKind::Sim.run(&g, flood, config).unwrap();
        }
    }

    #[test]
    fn every_backend_records_an_auditable_trace_on_request() {
        use crate::trace::TraceEventKind;
        let g = Arc::new(generators::gnp_connected(16, 0.25, 5).unwrap());
        let traced = ExecConfig {
            sim: SimConfig {
                record_trace: true,
                ..Default::default()
            },
            ..Default::default()
        };
        for kind in ExecutorKind::all() {
            let run = kind.run(&g, flood, &traced).unwrap();
            assert!(run.trace.is_enabled(), "{kind}");
            let sends = run
                .trace
                .events()
                .iter()
                .filter(|e| e.kind == TraceEventKind::Send)
                .count();
            let delivers = run
                .trace
                .events()
                .iter()
                .filter(|e| e.kind == TraceEventKind::Deliver)
                .count();
            assert_eq!(sends, delivers, "{kind}: reliable network");
            assert_eq!(delivers as u64, run.metrics.messages_total, "{kind}");
            assert!(
                run.trace.events().iter().all(|e| e.msg_id > 0),
                "{kind}: every message event carries a real id"
            );
        }
    }

    #[test]
    fn selected_start_is_pool_but_not_threaded() {
        let g = Arc::new(generators::path(4).unwrap());
        let config = ExecConfig {
            sim: SimConfig {
                start: StartModel::Selected(vec![NodeId(0)]),
                ..Default::default()
            },
            ..Default::default()
        };
        let run = ExecutorKind::Pool.run(&g, flood, &config).unwrap();
        assert!(run.all_terminated());
        let err = ExecutorKind::Threaded
            .run(&g, flood, &config)
            .err()
            .expect("threaded wakes every node by construction");
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn event_limit_is_uniform_across_backends() {
        let g = Arc::new(generators::complete(8).unwrap());
        let config = ExecConfig {
            sim: SimConfig {
                max_events: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        for kind in ExecutorKind::all() {
            let run = kind.run(&g, flood, &config).unwrap();
            assert_eq!(run.status, ExecStatus::EventLimitExceeded, "{kind}");
        }
    }

    #[test]
    fn pre_raised_cancel_token_is_uniform_across_backends() {
        use crate::cancel::CancelToken;
        let g = Arc::new(generators::complete(8).unwrap());
        let config = ExecConfig::default();
        let token = CancelToken::new();
        token.cancel();
        for kind in ExecutorKind::all() {
            let run = kind.run_with_cancel(&g, flood, &config, &token).unwrap();
            assert_eq!(run.status, ExecStatus::Cancelled, "{kind}");
        }
        // An inert token changes nothing.
        for kind in ExecutorKind::all() {
            let run = kind
                .run_with_cancel(&g, flood, &config, &CancelToken::new())
                .unwrap();
            assert_eq!(run.status, ExecStatus::Quiesced, "{kind}");
        }
    }

    #[test]
    fn exec_run_reports_worker_counts() {
        let g = Arc::new(generators::cycle(6).unwrap());
        let sim = ExecutorKind::Sim
            .run(&g, flood, &ExecConfig::default())
            .unwrap();
        assert_eq!(sim.workers, 1);
        let thr = ExecutorKind::Threaded
            .run(&g, flood, &ExecConfig::default())
            .unwrap();
        assert_eq!(thr.workers, 6);
        let pool = ExecutorKind::Pool
            .run(
                &g,
                flood,
                &ExecConfig {
                    workers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(pool.workers, 2);
    }
}
