//! Execution traces.
//!
//! The paper's Figure 2 is a snapshot of the BFS wave spreading through the
//! fragments and discovering a "cousin" (outgoing) edge. To regenerate that
//! figure we need the actual sequence of sends and deliveries of a run; the
//! [`TraceRecorder`] captures it when enabled (it is off by default because
//! traces of large sweeps would dominate memory).

use mdst_graph::NodeId;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A message was handed to the network.
    Send,
    /// A message was delivered to its destination.
    Deliver,
    /// A message was lost (random loss, cut link, or crashed receiver).
    Drop,
    /// A node crash-stopped (`from == to == the crashed node`).
    Crash,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Sender of the message.
    pub from: NodeId,
    /// Receiver of the message.
    pub to: NodeId,
    /// Message kind label (e.g. `"BFS"`).
    pub message_kind: String,
}

/// Collects [`TraceEvent`]s during a simulated run.
#[derive(Debug, Default, Clone, Serialize)]
pub struct TraceRecorder {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder that actually records.
    pub fn enabled() -> Self {
        TraceRecorder {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A recorder that drops everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in the order they were recorded.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The recorded events whose message kind equals `kind`.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.message_kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind, label: &str) -> TraceEvent {
        TraceEvent {
            time: 1,
            kind,
            from: NodeId(0),
            to: NodeId(1),
            message_kind: label.to_string(),
        }
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let mut r = TraceRecorder::disabled();
        r.record(ev(TraceEventKind::Send, "BFS"));
        assert!(r.events().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_keeps_and_filters_events() {
        let mut r = TraceRecorder::enabled();
        r.record(ev(TraceEventKind::Send, "BFS"));
        r.record(ev(TraceEventKind::Deliver, "BFS"));
        r.record(ev(TraceEventKind::Deliver, "Update"));
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events_of_kind("BFS").count(), 2);
        assert_eq!(r.events_of_kind("Update").count(), 1);
        assert_eq!(r.events_of_kind("Cut").count(), 0);
    }
}
