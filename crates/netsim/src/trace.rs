//! Execution traces.
//!
//! The paper's Figure 2 is a snapshot of the BFS wave spreading through the
//! fragments and discovering a "cousin" (outgoing) edge. To regenerate that
//! figure we need the actual sequence of sends and deliveries of a run; the
//! [`TraceRecorder`] captures it when enabled (it is off by default because
//! traces of large sweeps would dominate memory).
//!
//! Every backend records the same event vocabulary. Each *message* carries a
//! run-unique [`TraceEvent::msg_id`] and a per-sender per-directed-link
//! sequence number [`TraceEvent::seq`], stamped at send time and echoed by the
//! matching `Deliver`/`Drop` event. Those two numbers are what make a trace
//! *auditable*: the `mdst-analysis` crate reconstructs the happens-before
//! partial order from them and statically checks per-link FIFO, causal
//! delivery and protocol-level mutual exclusion — on the discrete-event
//! simulator, where the trace is totally ordered by simulated time, and on the
//! threaded and pool backends, where each worker keeps a lock-free local
//! buffer stamped from one atomic global counter and the buffers are merged
//! into a single recorder at quiescence.

use mdst_graph::NodeId;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::sync::Arc;

/// An interned message-kind label.
///
/// Protocols name their message kinds with `&'static str` constants
/// ([`crate::message::NetMessage::kind`]), so in the overwhelmingly common
/// case a trace event can simply borrow that static name instead of cloning
/// it into a fresh `String` per event — on a traced 10⁵-node run that is
/// millions of avoided allocations. Labels that only exist at runtime (for
/// example kinds read back from a serialized trace) are shared behind an
/// `Arc<str>` so cloning an event stays allocation-free either way.
#[derive(Debug, Clone)]
pub enum KindLabel {
    /// Borrowed from the protocol's static kind table. The fast path: every
    /// live backend records kinds this way.
    Static(&'static str),
    /// A shared runtime label (deserialized traces, synthetic fixtures).
    Shared(Arc<str>),
}

impl KindLabel {
    /// The label text.
    pub fn as_str(&self) -> &str {
        match self {
            KindLabel::Static(s) => s,
            KindLabel::Shared(s) => s,
        }
    }
}

impl fmt::Display for KindLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for KindLabel {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for KindLabel {}

impl std::hash::Hash for KindLabel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialEq<str> for KindLabel {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for KindLabel {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl From<&'static str> for KindLabel {
    fn from(s: &'static str) -> Self {
        KindLabel::Static(s)
    }
}

impl From<String> for KindLabel {
    fn from(s: String) -> Self {
        KindLabel::Shared(Arc::from(s.as_str()))
    }
}

impl Serialize for KindLabel {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for KindLabel {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        v.as_str()
            .map(|s| KindLabel::Shared(Arc::from(s)))
            .ok_or_else(|| serde::Error::custom("expected string message kind"))
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A message was handed to the network.
    Send,
    /// A message was delivered to its destination.
    Deliver,
    /// A message was lost (random loss, cut link, or crashed receiver).
    Drop,
    /// A node crash-stopped (`from == to == the crashed node`).
    Crash,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened. The simulator records the simulated clock;
    /// the threaded and pool backends record a globally unique stamp drawn
    /// from one atomic counter (so the merged trace is totally ordered by
    /// real recording order, and a message's `Send` stamp is always smaller
    /// than its `Deliver` stamp).
    pub time: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Sender of the message.
    pub from: NodeId,
    /// Receiver of the message.
    pub to: NodeId,
    /// Message kind label (e.g. `"BFS"`), interned — see [`KindLabel`].
    pub message_kind: KindLabel,
    /// Run-unique message identity, assigned at send time starting from 1 and
    /// echoed by the matching `Deliver`/`Drop` event. `0` on events that carry
    /// no message ([`TraceEventKind::Crash`]).
    pub msg_id: u64,
    /// Position of this message in its directed link's send order: the k-th
    /// message the sender handed to this `(from, to)` link has `seq == k`
    /// (counting from 0). FIFO links must deliver strictly increasing `seq`
    /// per directed link; a lost message consumes its slot, so gaps are legal
    /// but inversions never are. `0` on [`TraceEventKind::Crash`] events.
    pub seq: u64,
}

/// Collects [`TraceEvent`]s during a run on any backend.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder that actually records.
    pub fn enabled() -> Self {
        TraceRecorder {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A recorder that drops everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// An enabled recorder over pre-recorded events — how the threaded and
    /// pool backends publish their merged per-worker buffers. The caller is
    /// responsible for the event order (the concurrent backends sort by the
    /// atomic global stamp in [`TraceEvent::time`]).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceRecorder {
            enabled: true,
            events,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in the order they were recorded.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The recorded events whose message kind equals `kind`.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.message_kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind, label: &'static str) -> TraceEvent {
        TraceEvent {
            time: 1,
            kind,
            from: NodeId(0),
            to: NodeId(1),
            message_kind: label.into(),
            msg_id: 1,
            seq: 0,
        }
    }

    #[test]
    fn kind_labels_compare_and_intern_across_representations() {
        let stat: KindLabel = "BFS".into();
        let shared: KindLabel = String::from("BFS").into();
        assert_eq!(stat, shared);
        assert_eq!(stat, "BFS");
        assert_eq!(shared, "BFS");
        assert_ne!(stat, KindLabel::from("Update"));
        assert_eq!(stat.to_string(), "BFS");
        // Serialization is representation-blind: both sides round-trip to the
        // same JSON string and come back as shared labels.
        let back = KindLabel::from_value(&stat.to_value()).unwrap();
        assert!(matches!(back, KindLabel::Shared(_)));
        assert_eq!(back, stat);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let mut r = TraceRecorder::disabled();
        r.record(ev(TraceEventKind::Send, "BFS"));
        assert!(r.events().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_keeps_and_filters_events() {
        let mut r = TraceRecorder::enabled();
        r.record(ev(TraceEventKind::Send, "BFS"));
        r.record(ev(TraceEventKind::Deliver, "BFS"));
        r.record(ev(TraceEventKind::Deliver, "Update"));
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events_of_kind("BFS").count(), 2);
        assert_eq!(r.events_of_kind("Update").count(), 1);
        assert_eq!(r.events_of_kind("Cut").count(), 0);
    }

    #[test]
    fn from_events_is_enabled_and_keeps_order() {
        let r = TraceRecorder::from_events(vec![
            ev(TraceEventKind::Send, "BFS"),
            ev(TraceEventKind::Deliver, "BFS"),
        ]);
        assert!(r.is_enabled());
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].kind, TraceEventKind::Send);
    }

    #[test]
    fn trace_round_trips_through_json() {
        use serde::{Deserialize, Serialize};
        let mut r = TraceRecorder::enabled();
        r.record(ev(TraceEventKind::Send, "BFS"));
        r.record(ev(TraceEventKind::Drop, "Cut"));
        let json = r.to_value().to_json_pretty();
        let back = TraceRecorder::from_value(&serde::from_json_str(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
