//! Cooperative run cancellation.
//!
//! A [`CancelToken`] is a shared flag a controller raises to ask a running
//! executor to stop at the next safe point. Cancellation is *cooperative*:
//! backends poll the token between work units (the simulator between events,
//! the threaded runtime in its termination detector, the pool in every
//! scheduling quantum), wind down exactly like an event-cap abort, and report
//! [`crate::exec::ExecStatus::Cancelled`] with the partial node states and
//! metrics accumulated so far. Nothing is killed mid-handler, so the
//! snapshot a cancelled run returns is always internally consistent.
//!
//! The token is the control half of the `scenario serve` early-abort policy:
//! a watchdog observing streamed progress raises it when a run blows its
//! predicted budget, turning telemetry into control without any backend
//! learning about budgets or wall clocks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag. All clones observe the same state;
/// once raised it never resets. The default token is inert (never raised
/// unless some clone calls [`CancelToken::cancel`]).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unraised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether some clone has raised the flag.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let other = token.clone();
        assert!(!token.is_cancelled());
        assert!(!other.is_cancelled());
        other.cancel();
        assert!(token.is_cancelled());
        other.cancel(); // idempotent
        assert!(other.is_cancelled());
    }

    #[test]
    fn default_token_is_inert() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
