//! Link delay models.
//!
//! The paper's correctness argument must hold for *any* finite message delays
//! (the algorithm is event-driven), while its time-complexity analysis assumes
//! every delay is at most one unit. The delay models below let the experiments
//! cover both readings: unit delays reproduce the analysis, seeded random and
//! adversarial per-link delays stress the asynchrony-tolerance of the
//! protocol (ablation A2).

use mdst_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How long a message spends on a link before delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum DelayModel {
    /// Every message takes exactly one time unit — the paper's accounting
    /// assumption, and the configuration under which the measured "time" is
    /// comparable to the claimed `O((k−k*)·n)`.
    #[default]
    Unit,
    /// Every message takes an independent uniformly random delay in
    /// `[min, max]` (inclusive), drawn from a deterministic stream seeded by
    /// `seed` so runs stay reproducible.
    UniformRandom {
        /// Smallest possible delay (≥ 1).
        min: u64,
        /// Largest possible delay.
        max: u64,
        /// RNG seed for the delay stream.
        seed: u64,
    },
    /// Each *directed link* has a fixed delay derived deterministically from
    /// the seed and the endpoints, between `min` and `max`. This creates a
    /// consistently skewed network (some links always slow), the classic
    /// adversarial setting for asynchronous algorithms.
    PerLinkFixed {
        /// Smallest possible delay (≥ 1).
        min: u64,
        /// Largest possible delay.
        max: u64,
        /// Seed mixed into the per-link hash.
        seed: u64,
    },
}

impl DelayModel {
    /// Checks the documented invariants of the ranged models: `min ≥ 1` and
    /// `min ≤ max`. [`Simulator::new`](crate::sim::Simulator::new) calls this,
    /// so degenerate ranges are rejected up front instead of being silently
    /// clamped deep inside the delay sampler.
    pub fn validate(&self) -> Result<(), String> {
        let (name, min, max) = match *self {
            DelayModel::Unit => return Ok(()),
            DelayModel::UniformRandom { min, max, .. } => ("uniform random", min, max),
            DelayModel::PerLinkFixed { min, max, .. } => ("per-link fixed", min, max),
        };
        if min == 0 {
            return Err(format!(
                "{name} delay model: min delay must be at least 1, got 0"
            ));
        }
        if max < min {
            return Err(format!("{name} delay model: empty range [{min}, {max}]"));
        }
        Ok(())
    }

    /// Builds a stateful sampler for this model.
    ///
    /// The sampler clamps degenerate ranges (`max < min`, `min = 0`) as a
    /// defence in depth; use [`DelayModel::validate`] to reject them with a
    /// proper error instead.
    pub fn sampler(&self) -> DelaySampler {
        match *self {
            DelayModel::Unit => DelaySampler::Unit,
            DelayModel::UniformRandom { min, max, seed } => {
                let min = min.max(1);
                DelaySampler::UniformRandom {
                    min,
                    max: max.max(min),
                    rng: SmallRng::seed_from_u64(seed),
                }
            }
            DelayModel::PerLinkFixed { min, max, seed } => {
                let min = min.max(1);
                DelaySampler::PerLinkFixed {
                    min,
                    max: max.max(min),
                    seed,
                }
            }
        }
    }
}

/// Stateful delay sampler produced by [`DelayModel::sampler`].
#[derive(Debug)]
pub enum DelaySampler {
    /// See [`DelayModel::Unit`].
    Unit,
    /// See [`DelayModel::UniformRandom`].
    UniformRandom {
        /// Smallest possible delay.
        min: u64,
        /// Largest possible delay.
        max: u64,
        /// Underlying deterministic RNG.
        rng: SmallRng,
    },
    /// See [`DelayModel::PerLinkFixed`].
    PerLinkFixed {
        /// Smallest possible delay.
        min: u64,
        /// Largest possible delay.
        max: u64,
        /// Seed mixed into the per-link hash.
        seed: u64,
    },
}

impl DelaySampler {
    /// Delay (≥ 1) of the next message sent on the directed link `from → to`.
    pub fn sample(&mut self, from: NodeId, to: NodeId) -> u64 {
        match self {
            DelaySampler::Unit => 1,
            DelaySampler::UniformRandom { min, max, rng } => rng.gen_range(*min..=*max).max(1),
            DelaySampler::PerLinkFixed { min, max, seed } => {
                // SplitMix64-style mix of (seed, from, to) so the delay is a
                // stable function of the directed link.
                let mut x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((from.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add((to.index() as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                let span = *max - *min + 1;
                (*min + x % span).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delay_is_always_one() {
        let mut s = DelayModel::Unit.sampler();
        for i in 0..10 {
            assert_eq!(s.sample(NodeId(i), NodeId(i + 1)), 1);
        }
    }

    #[test]
    fn uniform_delay_respects_bounds_and_seed() {
        let model = DelayModel::UniformRandom {
            min: 2,
            max: 7,
            seed: 3,
        };
        let mut a = model.sampler();
        let mut b = model.sampler();
        for i in 0..100 {
            let d = a.sample(NodeId(0), NodeId(1));
            assert!((2..=7).contains(&d));
            assert_eq!(
                d,
                b.sample(NodeId(0), NodeId(1)),
                "sample {i} must be reproducible"
            );
        }
    }

    #[test]
    fn per_link_delay_is_stable_per_link_but_varies_across_links() {
        let model = DelayModel::PerLinkFixed {
            min: 1,
            max: 10,
            seed: 9,
        };
        let mut s = model.sampler();
        let d01 = s.sample(NodeId(0), NodeId(1));
        assert_eq!(d01, s.sample(NodeId(0), NodeId(1)));
        // Not all links share the same delay (with overwhelming probability
        // over the fixed hash; these specific links differ for seed 9).
        let all_same = (0..20).all(|i| s.sample(NodeId(i), NodeId(i + 1)) == d01);
        assert!(!all_same);
        for i in 0..20 {
            let d = s.sample(NodeId(i), NodeId(2 * i + 1));
            assert!((1..=10).contains(&d));
        }
    }

    #[test]
    fn degenerate_ranges_are_clamped() {
        let mut s = DelayModel::UniformRandom {
            min: 5,
            max: 3,
            seed: 1,
        }
        .sampler();
        assert_eq!(s.sample(NodeId(0), NodeId(1)), 5);
        // A zero min is raised to 1 at sampler construction, for both ranged
        // models, so no delay of 0 can sneak through even without validation.
        let mut zero_uniform = DelayModel::UniformRandom {
            min: 0,
            max: 0,
            seed: 2,
        }
        .sampler();
        assert_eq!(zero_uniform.sample(NodeId(0), NodeId(1)), 1);
        let mut zero_per_link = DelayModel::PerLinkFixed {
            min: 0,
            max: 3,
            seed: 2,
        }
        .sampler();
        for i in 0..32 {
            assert!(zero_per_link.sample(NodeId(i), NodeId(i + 1)) >= 1);
        }
    }

    #[test]
    fn validate_rejects_degenerate_ranges() {
        assert!(DelayModel::Unit.validate().is_ok());
        for (min, max, ok) in [(1, 1, true), (2, 9, true), (0, 5, false), (5, 3, false)] {
            let uniform = DelayModel::UniformRandom { min, max, seed: 1 };
            let per_link = DelayModel::PerLinkFixed { min, max, seed: 1 };
            assert_eq!(uniform.validate().is_ok(), ok, "uniform [{min}, {max}]");
            assert_eq!(per_link.validate().is_ok(), ok, "per-link [{min}, {max}]");
        }
        let err = DelayModel::UniformRandom {
            min: 0,
            max: 4,
            seed: 0,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }
}
