//! Fault injection: message loss, node crashes and link cuts.
//!
//! The paper's correctness argument is event-driven and delay-oblivious, but
//! it assumes a *reliable* network: every message is eventually delivered and
//! no processor stops. A [`FaultPlan`] lets the simulator break exactly those
//! assumptions, reproducibly:
//!
//! * **message loss** — every send is dropped independently with probability
//!   [`FaultPlan::loss`], drawn from a dedicated RNG seeded by
//!   [`FaultPlan::seed`] (the delay stream is untouched, so a lossy run and
//!   its lossless twin sample identical delays for the messages that survive);
//! * **node crashes** — a [`CrashAt`] stops a node at a scheduled time: the
//!   node processes no further events and every message addressed to it is
//!   dropped (crash-stop, no recovery);
//! * **link cuts** — a [`CutAt`] severs one undirected link at a scheduled
//!   time: sends on the link at or after the cut are dropped in both
//!   directions; messages already in flight are still delivered.
//!
//! A plan with zero loss and no crashes or cuts is *benign*
//! ([`FaultPlan::is_benign`]): the simulator takes the exact same code path
//! as a run with no plan at all, so fault-free configurations stay
//! bit-identical to the pre-fault simulator. Drops and crashes are counted in
//! [`crate::metrics::Metrics`] (`dropped_messages`, `crashed_nodes`) and, when
//! tracing is on, recorded as [`crate::trace::TraceEventKind::Drop`] /
//! [`crate::trace::TraceEventKind::Crash`] events.

use mdst_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A scheduled crash-stop of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashAt {
    /// The node that crashes.
    pub node: NodeId,
    /// Simulated time of the crash. Events addressed to the node strictly
    /// after the crash is processed are dropped.
    pub at: u64,
}

/// A scheduled cut of one undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutAt {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Simulated time of the cut; sends at time `>= at` are dropped.
    pub at: u64,
}

/// The faults injected into one simulated run. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Per-send message-loss probability in `[0, 1]`.
    pub loss: f64,
    /// Seed of the loss coin stream (independent of the delay stream).
    pub seed: u64,
    /// Scheduled node crashes.
    pub crashes: Vec<CrashAt>,
    /// Scheduled link cuts.
    pub cuts: Vec<CutAt>,
}

impl FaultPlan {
    /// The empty plan: no loss, no crashes, no cuts.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing — the simulator then behaves exactly
    /// like a fault-free run (no extra RNG draws, no crash events scheduled).
    pub fn is_benign(&self) -> bool {
        self.loss == 0.0 && self.crashes.is_empty() && self.cuts.is_empty()
    }

    /// Checks the plan against the simulated graph: the loss probability must
    /// be a finite value in `[0, 1]`, crashed nodes must exist, and cut links
    /// must be actual edges.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        if !self.loss.is_finite() || !(0.0..=1.0).contains(&self.loss) {
            return Err(format!(
                "fault plan: loss probability {} is not in [0, 1]",
                self.loss
            ));
        }
        let n = graph.node_count();
        for crash in &self.crashes {
            if crash.node.index() >= n {
                return Err(format!(
                    "fault plan: crash of node {} but the graph has {n} nodes",
                    crash.node
                ));
            }
        }
        for cut in &self.cuts {
            if cut.a.index() >= n || cut.b.index() >= n {
                return Err(format!(
                    "fault plan: cut ({}, {}) references a node outside the \
                     {n}-node graph",
                    cut.a, cut.b
                ));
            }
            if cut.a == cut.b {
                return Err(format!(
                    "fault plan: cut ({}, {}) is a self loop",
                    cut.a, cut.b
                ));
            }
            if !graph.has_edge(cut.a, cut.b) {
                return Err(format!(
                    "fault plan: cut ({}, {}) is not an edge of the graph",
                    cut.a, cut.b
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn default_plan_is_benign_and_valid() {
        let g = generators::path(4).unwrap();
        let plan = FaultPlan::none();
        assert!(plan.is_benign());
        assert!(plan.validate(&g).is_ok());
    }

    #[test]
    fn any_fault_makes_the_plan_non_benign() {
        let lossy = FaultPlan {
            loss: 0.1,
            ..Default::default()
        };
        assert!(!lossy.is_benign());
        let crashy = FaultPlan {
            crashes: vec![CrashAt {
                node: NodeId(0),
                at: 3,
            }],
            ..Default::default()
        };
        assert!(!crashy.is_benign());
        let cutty = FaultPlan {
            cuts: vec![CutAt {
                a: NodeId(0),
                b: NodeId(1),
                at: 3,
            }],
            ..Default::default()
        };
        assert!(!cutty.is_benign());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let g = generators::path(4).unwrap();
        let bad_loss = FaultPlan {
            loss: 1.5,
            ..Default::default()
        };
        assert!(bad_loss.validate(&g).is_err());
        let nan_loss = FaultPlan {
            loss: f64::NAN,
            ..Default::default()
        };
        assert!(nan_loss.validate(&g).is_err());
        let bad_crash = FaultPlan {
            crashes: vec![CrashAt {
                node: NodeId(9),
                at: 1,
            }],
            ..Default::default()
        };
        assert!(bad_crash.validate(&g).is_err());
        // Path 0-1-2-3 has no edge (0, 3).
        let bad_cut = FaultPlan {
            cuts: vec![CutAt {
                a: NodeId(0),
                b: NodeId(3),
                at: 1,
            }],
            ..Default::default()
        };
        assert!(bad_cut.validate(&g).is_err());
        let self_cut = FaultPlan {
            cuts: vec![CutAt {
                a: NodeId(2),
                b: NodeId(2),
                at: 1,
            }],
            ..Default::default()
        };
        assert!(self_cut.validate(&g).is_err());
    }
}
