//! Message abstraction.
//!
//! The paper's complexity analysis distinguishes message *kinds* (SearchDegree,
//! MoveRoot, Cut, BFS, BFSBack, Update, Child, Stop) and argues that every
//! message carries `O(log n)` bits ("at most four numbers or identities by
//! message"). The [`NetMessage`] trait exposes exactly those two facets so the
//! simulator can produce the per-kind message table (experiment E3) and the
//! bit-complexity table (experiment E4) for any protocol without knowing its
//! concrete message enum.

/// Behaviour every protocol message must provide to the runtimes.
pub trait NetMessage: Clone + Send + std::fmt::Debug + 'static {
    /// Short, static name of the message kind, used to group counters
    /// (e.g. `"BFS"`, `"BFSBack"`, `"Update"`).
    fn kind(&self) -> &'static str;

    /// Number of bits a reasonable wire encoding of this message would use.
    ///
    /// Identities and degrees are counted as `ceil(log2(n))`-bit numbers by the
    /// protocols; the default helpers in [`bits`] make that convenient.
    fn encoded_bits(&self) -> usize;
}

/// Helpers for computing encoded sizes.
pub mod bits {
    /// Number of bits needed to represent one identity or degree in a network
    /// of `n` nodes (at least 1).
    pub fn id_bits(n: usize) -> usize {
        (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize
    }

    /// Size of a message carrying `fields` identities/degrees plus a small
    /// constant tag of 4 bits for the message kind.
    pub fn message_bits(n: usize, fields: usize) -> usize {
        4 + fields * id_bits(n)
    }
}

#[cfg(test)]
mod tests {
    use super::bits::*;

    #[test]
    fn id_bits_grows_logarithmically() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(16), 4);
        assert_eq!(id_bits(17), 5);
        assert_eq!(id_bits(1024), 10);
    }

    #[test]
    fn id_bits_handles_degenerate_networks() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }

    #[test]
    fn message_bits_counts_fields() {
        assert_eq!(message_bits(16, 0), 4);
        assert_eq!(message_bits(16, 4), 4 + 4 * 4);
        assert!(message_bits(1 << 20, 4) > message_bits(16, 4));
    }
}
